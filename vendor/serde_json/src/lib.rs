//! Offline stub of `serde_json`.
//!
//! With the stubbed `serde` there is no way to introspect values, so
//! [`to_string`] always returns [`Error`]; call sites in this workspace
//! treat that as "JSON unavailable" and fall back to `Debug` output.

use std::fmt;

/// Error returned by every operation of this stub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub: serialization unavailable in offline build")
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Always fails; callers fall back to their `Debug` representation.
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error)
}
