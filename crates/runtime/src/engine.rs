//! The execution engine: rule-driven processing of a topology plan.
//!
//! The engine is a deterministic, single-process substitute for the Apache
//! Storm cluster of the paper (see DESIGN.md): stores, partitions, rule
//! sets keyed by incoming edge labels, epoch-scoped state and the
//! iterative probing of Algorithm 3/4 are all executed faithfully; only
//! the physical distribution (threads/processes per worker) is collapsed
//! into one process so that experiments are reproducible on a laptop.
//! Probe cost (tuple copies sent), store memory and per-result latency —
//! the quantities the paper's evaluation reports — are tracked exactly as
//! a distributed deployment would observe them.

use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::stats_collector::StatsCollector;
use crate::store::{partition_hash, StoreInstance};
use clash_catalog::Catalog;
use clash_common::{
    arena_stats, chrome_trace_json, trace_clock_us, ClashError, Epoch, EpochConfig, Exposition,
    FxHashMap, QueryId, Result, StoreId, Timestamp, TraceEvent, TraceEventKind, TraceRing, Tuple,
    Window,
};
use clash_optimizer::{OutputAction, Rule, SendTarget, TopologyPlan};
use std::sync::Arc;
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Epoch length used for epoch-scoped state and statistics.
    pub epoch: EpochConfig,
    /// Run window expiry every N ingested tuples (`0` disables expiry).
    pub expire_every: u64,
    /// Keep emitted results in memory (useful for tests; experiments
    /// normally only count them).
    pub collect_results: bool,
    /// Parallel runtime only: number of buffered root deliveries that
    /// triggers a router flush. The coordinator coalesces per-ingest
    /// `Batch` messages across ingests up to this size (epoch barriers
    /// always flush); `1` restores send-per-ingest.
    pub micro_batch: usize,
    /// Parallel runtime only: maximum wall-clock age a buffered
    /// micro-batch may reach before it is flushed regardless of the size
    /// trigger, so sparse streams do not hold deliveries (and the results
    /// they would produce) until the next barrier. The coordinator checks
    /// the age on every ingest; open sources are additionally swept by a
    /// background flusher thread, which covers streams that go fully
    /// idle. `Duration::ZERO` disables the time trigger.
    pub micro_batch_max_delay: std::time::Duration,
    /// Parallel runtime only: bound on in-flight roots (ingested input
    /// tuples whose deliveries have not all been processed yet). Both the
    /// coordinator's `ingest` and every [`crate::ingest::SourceHandle`]
    /// block once the bound is reached until workers catch up, so a slow
    /// consumer backpressures producers instead of growing the worker
    /// queues without limit. Admission precedes sequence allocation, so
    /// concurrent producers can overshoot the bound by at most one root
    /// each. `0` disables the bound.
    pub max_inflight_roots: usize,
    /// Parallel runtime only: poll cadence of the control-plane epoch
    /// driver (`ParallelEngine::start_epoch_driver`). Each tick is one
    /// atomic read of the stream clock; the expensive work (collection
    /// barrier + re-planning) only runs when the clock crossed an epoch
    /// boundary. Clamped to `[100µs, 1s]`.
    pub epoch_tick: std::time::Duration,
    /// Capacity of each thread's trace-event ring (ingest/probe/insert/
    /// barrier/... events drainable as Chrome trace JSON). A full ring
    /// overwrites its oldest events, so tracing can stay on permanently;
    /// `0` disables tracing entirely (record calls reduce to one branch).
    pub trace_capacity: usize,
    /// Epochs an epoch must lag behind the stream clock before its live
    /// containers are frozen into read-optimized columnar segments
    /// (compactions run piggybacked on the expiry cadence / epoch
    /// barriers). `0` disables the cold tier entirely: all state stays in
    /// the live, insert-optimized form.
    pub freeze_after_epochs: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            epoch: EpochConfig::default(),
            expire_every: 1024,
            collect_results: false,
            micro_batch: 64,
            micro_batch_max_delay: std::time::Duration::from_millis(5),
            max_inflight_roots: 1 << 16,
            epoch_tick: std::time::Duration::from_millis(1),
            trace_capacity: 4096,
            freeze_after_epochs: 1,
        }
    }
}

/// Callback invoked for every emitted join result.
pub type ResultSink = Box<dyn FnMut(QueryId, &Tuple) + Send>;

/// The control surface the adaptive controller needs from an engine:
/// swapping topology plans and reading the gathered statistics. The
/// sequential [`LocalEngine`] implements it directly; the sharded
/// runtime implements it on its engine core, which both the owning
/// thread and the control-plane epoch driver can lock — so epoch-based
/// re-optimization (Section VI) works unchanged on either runtime.
pub trait EngineControl {
    /// Installs (or replaces) the running plan, carrying over matching
    /// store state. Errors instead of panicking when the runtime cannot
    /// complete the reconfiguration (engine shut down, worker thread
    /// dead); the controller keeps its pending plan in that case.
    fn install_plan(&mut self, plan: TopologyPlan) -> Result<()>;

    /// The currently installed plan.
    fn plan(&self) -> &TopologyPlan;

    /// The statistics gathered since the last pruning.
    fn stats_collector(&self) -> &StatsCollector;

    /// Mutable access to the statistics collector (pruning).
    fn stats_collector_mut(&mut self) -> &mut StatsCollector;
}

/// Window of a store: the widest window of its member relations (so no
/// potential join partner expires too early).
pub(crate) fn store_window(catalog: &Catalog, relations: clash_common::RelationSet) -> Window {
    relations
        .iter()
        .filter_map(|r| catalog.relation(r).ok().map(|m| m.window))
        .max_by_key(|w| w.length)
        .unwrap_or_default()
}

/// Indexed attributes of a store: every stored-side attribute of every
/// probe-rule predicate registered at it.
pub(crate) fn indexed_attrs(plan: &TopologyPlan, store: StoreId) -> Vec<clash_common::AttrRef> {
    let mut out = Vec::new();
    let descriptor = match plan.store(store) {
        Some(s) => s.descriptor,
        None => return out,
    };
    for ((sid, _), rules) in &plan.rules {
        if *sid != store {
            continue;
        }
        for rule in rules {
            if let Rule::Probe { predicates, .. } = rule {
                for p in predicates {
                    let stored_side = if descriptor.relations.contains(p.left.relation) {
                        p.left
                    } else {
                        p.right
                    };
                    if !out.contains(&stored_side) {
                        out.push(stored_side);
                    }
                }
            }
        }
    }
    out
}

/// Deterministic local execution engine for a [`TopologyPlan`].
pub struct LocalEngine {
    catalog: Catalog,
    config: EngineConfig,
    /// The installed plan, shared so rule sets can be borrowed on the
    /// delivery hot path without cloning them per delivered tuple.
    plan: Arc<TopologyPlan>,
    stores: FxHashMap<StoreId, StoreInstance>,
    metrics: EngineMetrics,
    stats: StatsCollector,
    results: Vec<(QueryId, Tuple)>,
    sink: Option<ResultSink>,
    max_ts: Timestamp,
    since_expiry: u64,
    /// The engine thread's trace-event ring (lane 0).
    trace: TraceRing,
}

impl std::fmt::Debug for LocalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalEngine")
            .field("stores", &self.stores.len())
            .field("queries", &self.plan.queries.len())
            .field("ingested", &self.metrics.tuples_ingested)
            .finish()
    }
}

impl LocalEngine {
    /// Creates an engine executing the given plan.
    pub fn new(catalog: Catalog, plan: TopologyPlan, config: EngineConfig) -> Self {
        let stats = StatsCollector::new(config.epoch.length);
        let mut engine = LocalEngine {
            catalog,
            config,
            plan: Arc::new(TopologyPlan::default()),
            stores: FxHashMap::default(),
            metrics: EngineMetrics::default(),
            stats,
            results: Vec::new(),
            sink: None,
            max_ts: Timestamp::ZERO,
            since_expiry: 0,
            trace: TraceRing::new(config.trace_capacity, 0),
        };
        engine
            .install_plan(plan)
            .expect("initial plan failed static verification");
        engine
    }

    /// Registers a sink invoked for every emitted result.
    pub fn set_sink(&mut self, sink: ResultSink) {
        self.sink = Some(sink);
    }

    /// Installs (or replaces) the plan. Stores whose descriptor key matches
    /// an existing store keep their state (Section VI-A: rewiring without
    /// losing results); stores that no longer appear are dropped
    /// (reference-count reaching zero in Section VI-B).
    ///
    /// The plan is statically verified first: an error-level finding
    /// rejects it with [`ClashError::InvalidPlan`] before any engine state
    /// is touched, so the previously installed plan keeps running.
    pub fn install_plan(&mut self, plan: TopologyPlan) -> Result<()> {
        if let Err(e) = clash_analyzer::gate(&self.catalog, &plan) {
            self.metrics.plan_rejections += 1;
            return Err(e);
        }
        let mut new_stores: FxHashMap<StoreId, StoreInstance> = FxHashMap::default();
        // Index existing stores by descriptor key for state carry-over.
        let mut existing: FxHashMap<String, StoreInstance> = self
            .stores
            .drain()
            .map(|(_, s)| (s.descriptor.key(), s))
            .collect();
        for def in &plan.stores {
            let window = store_window(&self.catalog, def.descriptor.relations);
            let indexed = indexed_attrs(&plan, def.id);
            let instance = match existing.remove(&def.descriptor.key()) {
                Some(mut s) => {
                    for attr in indexed {
                        s.add_indexed_attr(attr);
                    }
                    s.window = window;
                    s
                }
                None => StoreInstance::new(def.descriptor, window, indexed),
            };
            new_stores.insert(def.id, instance);
        }
        self.stores = new_stores;
        self.plan = Arc::new(plan);
        self.trace.record(
            TraceEventKind::PlanInstall,
            self.metrics.tuples_ingested,
            self.plan.stores.len() as u64,
        );
        Ok(())
    }

    /// The currently installed plan.
    pub fn plan(&self) -> &TopologyPlan {
        &self.plan
    }

    /// The statistics collector (read by the adaptive controller).
    pub fn stats_collector(&self) -> &StatsCollector {
        &self.stats
    }

    /// Mutable access to the statistics collector (pruning).
    pub fn stats_collector_mut(&mut self) -> &mut StatsCollector {
        &mut self.stats
    }

    /// Epoch configuration in use.
    pub fn epoch_config(&self) -> EpochConfig {
        self.config.epoch
    }

    /// Emitted results collected so far (only when `collect_results`).
    pub fn results(&self) -> &[(QueryId, Tuple)] {
        &self.results
    }

    /// Clears collected results (between experiment phases).
    pub fn clear_results(&mut self) {
        self.results.clear();
    }

    /// Ingests one input tuple of the given relation, running all routing,
    /// storing and probing it triggers. Returns the number of join results
    /// emitted for this tuple.
    pub fn ingest(&mut self, relation: clash_common::RelationId, tuple: Tuple) -> Result<u64> {
        let started = Instant::now();
        if self.catalog.relation(relation).is_err() {
            return Err(ClashError::unknown(format!("relation {relation}")));
        }
        let trace_started = if self.trace.enabled() {
            trace_clock_us()
        } else {
            0
        };
        self.metrics.tuples_ingested += 1;
        self.max_ts = self.max_ts.max(tuple.ts);
        let epoch = self.config.epoch.epoch_of(tuple.ts);
        self.stats.record_arrival(epoch, relation);

        let mut emitted = 0u64;
        // Work queue of (target, tuple) deliveries.
        let mut queue: Vec<(SendTarget, Tuple)> = self
            .plan
            .ingest_for(relation)
            .iter()
            .map(|t| (*t, tuple.clone()))
            .collect();

        while let Some((target, tuple)) = queue.pop() {
            emitted += self.deliver(target, tuple, started, &mut queue);
        }

        self.metrics.busy += started.elapsed();
        self.trace.record_span(
            TraceEventKind::Ingest,
            trace_started,
            u64::from(relation.0),
            emitted,
        );
        self.since_expiry += 1;
        if self.config.expire_every > 0 && self.since_expiry >= self.config.expire_every {
            self.expire_stores();
            self.since_expiry = 0;
        }
        Ok(emitted)
    }

    /// Delivers one tuple to one store along one edge, applying the rules
    /// registered for that edge (Algorithm 3/4). Newly produced partial
    /// results are pushed onto `queue`.
    fn deliver(
        &mut self,
        target: SendTarget,
        tuple: Tuple,
        ingest_started: Instant,
        queue: &mut Vec<(SendTarget, Tuple)>,
    ) -> u64 {
        // Borrow the rule set through a local Arc handle: no per-delivery
        // clone of the rules (predicates, outputs) on the hot path.
        let plan = Arc::clone(&self.plan);
        let Some(rules) = plan.rules.get(&(target.store, target.edge)) else {
            return 0;
        };
        let Some(store) = self.stores.get(&target.store) else {
            return 0;
        };
        let parallelism = store.parallelism();
        // Resolve the receiving partitions: route by the hash of the
        // routing-key attribute when the sending tuple carries it,
        // otherwise broadcast to every partition (the χ factor of Eq. 1).
        let partitions: Vec<usize> = match target.routing_key.and_then(|a| tuple.get(&a).cloned()) {
            Some(value) => vec![partition_hash(&value, parallelism)],
            None => {
                if parallelism > 1 {
                    self.metrics.broadcasts += 1;
                }
                (0..parallelism).collect()
            }
        };
        self.metrics.tuples_sent += partitions.len() as u64;

        let epoch = self.config.epoch.epoch_of(tuple.ts);
        let mut emitted = 0u64;
        for rule in rules {
            match rule {
                Rule::Store => {
                    let store = self.stores.get_mut(&target.store).expect("store exists");
                    // Storing happens in exactly one partition: the one the
                    // partition attribute hashes to (or partition 0).
                    let p = if partitions.len() == 1 {
                        partitions[0]
                    } else {
                        store.partition_for(&tuple)
                    };
                    store.insert(p, epoch, tuple.clone());
                    self.trace
                        .record(TraceEventKind::Insert, u64::from(target.store.0), 0);
                }
                Rule::Probe {
                    predicates,
                    outputs,
                } => {
                    let store = self.stores.get(&target.store).expect("store exists");
                    let window = store.window;
                    // Epochs that may contain partners: everything from the
                    // window horizon up to the probing tuple's own epoch.
                    let lo = self.config.epoch.epoch_of(window.horizon(tuple.ts));
                    let hi = epoch;
                    let epochs: Vec<Epoch> = (lo.0..=hi.0).map(Epoch).collect();
                    let store_size = store.len() as u64;
                    let mut matches = Vec::new();
                    for &p in &partitions {
                        matches.extend(store.probe(p, &epochs, &tuple, predicates));
                    }
                    self.metrics.probes += 1;
                    self.trace.record(
                        TraceEventKind::Probe,
                        u64::from(target.store.0),
                        matches.len() as u64,
                    );
                    self.stats
                        .record_probe(epoch, predicates, matches.len() as u64, store_size);
                    for matched in matches {
                        let Some(joined) = tuple.join(&matched) else {
                            continue;
                        };
                        for action in outputs {
                            match action {
                                OutputAction::Emit { query } => {
                                    emitted += 1;
                                    *self.metrics.results.entry(*query).or_default() += 1;
                                    self.metrics
                                        .record_latency(*query, ingest_started.elapsed());
                                    if self.config.collect_results {
                                        self.results.push((*query, joined.clone()));
                                    }
                                    if let Some(sink) = &mut self.sink {
                                        sink(*query, &joined);
                                    }
                                }
                                OutputAction::Forward(next) => {
                                    queue.push((*next, joined.clone()));
                                }
                            }
                        }
                    }
                }
            }
        }
        emitted
    }

    /// Expires out-of-window tuples from every store. Before expiring,
    /// epochs that have fallen [`EngineConfig::freeze_after_epochs`]
    /// behind the stream clock are compacted into frozen columnar
    /// segments (so cold state is probed in its read-optimized form and
    /// expires by segment drop, not per-tuple work).
    pub fn expire_stores(&mut self) -> usize {
        if self.config.freeze_after_epochs > 0 {
            let clock = self.config.epoch.epoch_of(self.max_ts);
            let freeze_horizon = Epoch(clock.0.saturating_sub(self.config.freeze_after_epochs));
            for (id, store) in self.stores.iter_mut() {
                let built = store.freeze_before(freeze_horizon);
                if built > 0 {
                    self.trace
                        .record(TraceEventKind::Compaction, u64::from(id.0), built as u64);
                }
            }
        }
        let mut removed = 0;
        for store in self.stores.values_mut() {
            let horizon = store.window.horizon(self.max_ts);
            removed += store.expire(horizon);
        }
        self.trace.record(TraceEventKind::Expire, removed as u64, 0);
        removed
    }

    /// Total bytes held across all stores (Fig. 7c).
    pub fn store_bytes(&self) -> usize {
        self.stores.values().map(|s| s.bytes()).sum()
    }

    /// Total tuples held across all stores.
    pub fn store_tuples(&self) -> usize {
        self.stores.values().map(|s| s.len()).sum()
    }

    /// Frozen segments built across all stores since startup.
    pub fn store_compactions(&self) -> u64 {
        self.stores.values().map(|s| s.compactions()).sum()
    }

    /// Metrics snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let busy = self.metrics.busy.as_secs_f64();
        MetricsSnapshot {
            tuples_ingested: self.metrics.tuples_ingested,
            tuples_sent: self.metrics.tuples_sent,
            broadcasts: self.metrics.broadcasts,
            probes: self.metrics.probes,
            results: self
                .metrics
                .results
                .iter()
                .map(|(q, n)| (q.0, *n))
                .collect(),
            latency: self.metrics.latency(),
            latency_per_query: self.metrics.latency_per_query_stats(),
            store_bytes: self.store_bytes(),
            store_tuples: self.store_tuples(),
            num_stores: self.stores.len(),
            busy_secs: busy,
            throughput_tps: if busy > 0.0 {
                self.metrics.tuples_ingested as f64 / busy
            } else {
                0.0
            },
        }
    }

    /// Resets metrics (between experiment phases) without touching store
    /// state.
    pub fn reset_metrics(&mut self) {
        self.metrics = EngineMetrics::default();
        self.results.clear();
    }

    /// Takes every buffered trace event (record order), leaving the ring
    /// empty. Empty when `EngineConfig::trace_capacity` is `0`.
    pub fn drain_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.drain()
    }

    /// Drains the trace ring rendered as Chrome trace-event JSON
    /// (loadable in `chrome://tracing` / Perfetto).
    pub fn trace_json(&mut self) -> String {
        chrome_trace_json(&self.drain_trace())
    }

    /// Renders the engine's current state as a Prometheus-style text
    /// exposition page: counters, per-query result counts and latency
    /// quantiles, the merged latency histogram, per-store size and index
    /// gauges, and this thread's arena counters.
    pub fn telemetry_snapshot(&self) -> String {
        let mut page = Exposition::new();
        crate::exposition::engine_sections(&mut page, &self.metrics);
        let mut details: Vec<crate::parallel::shard::StoreDetail> = self
            .stores
            .iter()
            .map(|(id, store)| {
                let (posting_lists, spilled_postings) = store.posting_stats();
                let (segments, segment_bytes) = store.segment_stats();
                crate::parallel::shard::StoreDetail {
                    store: *id,
                    tuples: store.len(),
                    bytes: store.bytes(),
                    posting_lists,
                    spilled_postings,
                    segments,
                    segment_bytes,
                    compactions: store.compactions(),
                }
            })
            .collect();
        details.sort_by_key(|d| d.store.0);
        crate::exposition::store_sections(&mut page, &details);
        let arena = arena_stats();
        crate::exposition::arena_sections(
            &mut page,
            std::iter::once(("engine".to_string(), &arena)),
        );
        page.finish()
    }
}

impl EngineControl for LocalEngine {
    fn install_plan(&mut self, plan: TopologyPlan) -> Result<()> {
        LocalEngine::install_plan(self, plan)
    }

    fn plan(&self) -> &TopologyPlan {
        LocalEngine::plan(self)
    }

    fn stats_collector(&self) -> &StatsCollector {
        LocalEngine::stats_collector(self)
    }

    fn stats_collector_mut(&mut self) -> &mut StatsCollector {
        LocalEngine::stats_collector_mut(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_catalog::Statistics;
    use clash_common::{QueryId, TupleBuilder, Window};
    use clash_optimizer::{Planner, Strategy};
    use clash_query::parse_query;

    /// Builds the running example: R(a), S(a,b), T(b) plus a second query
    /// sharing S and T, returns (catalog, queries).
    fn setup(parallelism: usize) -> (Catalog, Vec<clash_query::JoinQuery>, Statistics) {
        let mut catalog = Catalog::new();
        catalog.register("R", ["a"], Window::secs(3600), 1).unwrap();
        catalog
            .register("S", ["a", "b"], Window::secs(3600), parallelism)
            .unwrap();
        catalog
            .register("T", ["b", "c"], Window::secs(3600), parallelism)
            .unwrap();
        catalog.register("U", ["c"], Window::secs(3600), 1).unwrap();
        let mut stats = Statistics::new();
        for m in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            stats.set_rate(m, 100.0);
        }
        let q1 = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b,c), U(c)").unwrap();
        (catalog, vec![q1, q2], stats)
    }

    fn engine_for(strategy: Strategy, parallelism: usize) -> (LocalEngine, Catalog) {
        let (catalog, queries, stats) = setup(parallelism);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, strategy).unwrap();
        let config = EngineConfig {
            collect_results: true,
            ..EngineConfig::default()
        };
        (
            LocalEngine::new(catalog.clone(), report.plan, config),
            catalog,
        )
    }

    fn tuple(catalog: &Catalog, relation: &str, ts: u64, values: &[(&str, i64)]) -> Tuple {
        let meta = catalog.relation_by_name(relation).unwrap();
        let mut b = TupleBuilder::new(&meta.schema, Timestamp::from_millis(ts));
        for (attr, v) in values {
            b = b.set(attr, *v);
        }
        b.build()
    }

    /// Reference join for q1 = R ⋈ S ⋈ T: every (r, s, t) combination with
    /// r.a = s.a and s.b = t.b counts exactly once.
    fn ingest_workload(engine: &mut LocalEngine, catalog: &Catalog) -> (u64, u64) {
        let r_id = catalog.relation_id("R").unwrap();
        let s_id = catalog.relation_id("S").unwrap();
        let t_id = catalog.relation_id("T").unwrap();
        let u_id = catalog.relation_id("U").unwrap();
        let mut ts = 0u64;
        let mut next_ts = || {
            ts += 10;
            ts
        };
        // 3 R tuples with a in {1,2,3}; 4 S tuples; 3 T tuples; 2 U tuples.
        for a in 1..=3i64 {
            let t = tuple(catalog, "R", next_ts(), &[("a", a)]);
            engine.ingest(r_id, t).unwrap();
        }
        for (a, b) in [(1, 10), (1, 20), (2, 10), (9, 30)] {
            let t = tuple(catalog, "S", next_ts(), &[("a", a), ("b", b)]);
            engine.ingest(s_id, t).unwrap();
        }
        for (b, c) in [(10, 100), (20, 100), (30, 200)] {
            let t = tuple(catalog, "T", next_ts(), &[("b", b), ("c", c)]);
            engine.ingest(t_id, t).unwrap();
        }
        for c in [100i64, 300] {
            let t = tuple(catalog, "U", next_ts(), &[("c", c)]);
            engine.ingest(u_id, t).unwrap();
        }
        // Expected q1 results: joins over (R.a = S.a, S.b = T.b):
        //   R(a=1)×S(1,10)×T(10,*): 1;  R(1)×S(1,20)×T(20,100): 1;
        //   R(2)×S(2,10)×T(10,100): 1  => 3 results.
        // Expected q2 results (S.b = T.b, T.c = U.c):
        //   S(1,10)×T(10,100)×U(100), S(2,10)×T(10,100)×U(100),
        //   S(1,20)×T(20,100)×U(100) => 3 results.
        (3, 3)
    }

    #[test]
    fn shared_plan_produces_correct_join_results() {
        let (mut engine, catalog) = engine_for(Strategy::Shared, 1);
        let (exp_q1, exp_q2) = ingest_workload(&mut engine, &catalog);
        let snap = engine.snapshot();
        assert_eq!(snap.results_for(QueryId::new(0)), exp_q1, "q1 results");
        assert_eq!(snap.results_for(QueryId::new(1)), exp_q2, "q2 results");
        assert!(snap.tuples_sent > 0);
        assert!(snap.store_bytes > 0);
        assert!(snap.latency.count > 0);
        assert!(snap.throughput_tps > 0.0);
    }

    #[test]
    fn all_strategies_agree_on_results() {
        for strategy in [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp] {
            let (mut engine, catalog) = engine_for(strategy, 1);
            let (exp_q1, exp_q2) = ingest_workload(&mut engine, &catalog);
            let snap = engine.snapshot();
            assert_eq!(
                snap.results_for(QueryId::new(0)),
                exp_q1,
                "{strategy:?} q1 results"
            );
            assert_eq!(
                snap.results_for(QueryId::new(1)),
                exp_q2,
                "{strategy:?} q2 results"
            );
        }
    }

    #[test]
    fn partitioned_stores_agree_with_unpartitioned_results() {
        let (mut single, catalog1) = engine_for(Strategy::GlobalIlp, 1);
        let (mut parallel, catalog4) = engine_for(Strategy::GlobalIlp, 4);
        ingest_workload(&mut single, &catalog1);
        ingest_workload(&mut parallel, &catalog4);
        let a = single.snapshot();
        let b = parallel.snapshot();
        assert_eq!(
            a.results_for(QueryId::new(0)),
            b.results_for(QueryId::new(0))
        );
        assert_eq!(
            a.results_for(QueryId::new(1)),
            b.results_for(QueryId::new(1))
        );
    }

    #[test]
    fn independent_plan_uses_more_memory_than_shared() {
        let (mut shared, catalog) = engine_for(Strategy::Shared, 1);
        let (mut independent, catalog_i) = engine_for(Strategy::Independent, 1);
        ingest_workload(&mut shared, &catalog);
        ingest_workload(&mut independent, &catalog_i);
        assert!(
            independent.store_bytes() > shared.store_bytes(),
            "independent {} vs shared {}",
            independent.store_bytes(),
            shared.store_bytes()
        );
    }

    #[test]
    fn results_are_deduplicated_by_arrival_order_semantics() {
        // Ingest the same logical workload twice with fresh engines and
        // permuted arrival order of the last relations: result counts stay
        // identical because every result is produced exactly once, by the
        // probe order of its latest tuple.
        let (mut engine, catalog) = engine_for(Strategy::Shared, 1);
        ingest_workload(&mut engine, &catalog);
        let baseline = engine.snapshot().total_results();

        let (mut engine2, catalog2) = engine_for(Strategy::Shared, 1);
        // Same tuples, different interleaving (T before S).
        let r_id = catalog2.relation_id("R").unwrap();
        let s_id = catalog2.relation_id("S").unwrap();
        let t_id = catalog2.relation_id("T").unwrap();
        let u_id = catalog2.relation_id("U").unwrap();
        let mut ts = 0u64;
        let mut next_ts = || {
            ts += 10;
            ts
        };
        for (b, c) in [(10, 100), (20, 100), (30, 200)] {
            let t = tuple(&catalog2, "T", next_ts(), &[("b", b), ("c", c)]);
            engine2.ingest(t_id, t).unwrap();
        }
        for a in 1..=3i64 {
            let t = tuple(&catalog2, "R", next_ts(), &[("a", a)]);
            engine2.ingest(r_id, t).unwrap();
        }
        for c in [100i64, 300] {
            let t = tuple(&catalog2, "U", next_ts(), &[("c", c)]);
            engine2.ingest(u_id, t).unwrap();
        }
        for (a, b) in [(1, 10), (1, 20), (2, 10), (9, 30)] {
            let t = tuple(&catalog2, "S", next_ts(), &[("a", a), ("b", b)]);
            engine2.ingest(s_id, t).unwrap();
        }
        assert_eq!(engine2.snapshot().total_results(), baseline);
    }

    #[test]
    fn expiry_removes_out_of_window_state() {
        let (catalog, queries, stats) = setup(1);
        // Narrow window: 1 second.
        let mut catalog = catalog;
        for id in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            catalog.set_window(id, Window::secs(1)).unwrap();
        }
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let mut engine = LocalEngine::new(
            catalog.clone(),
            report.plan,
            EngineConfig {
                expire_every: 0,
                ..EngineConfig::default()
            },
        );
        let s_id = catalog.relation_id("S").unwrap();
        for i in 0..50 {
            let t = tuple(&catalog, "S", i * 100, &[("a", 1), ("b", 1)]);
            engine.ingest(s_id, t).unwrap();
        }
        let before = engine.store_tuples();
        let removed = engine.expire_stores();
        assert!(removed > 0);
        assert!(engine.store_tuples() < before);
    }

    #[test]
    fn install_plan_preserves_matching_store_state() {
        let (mut engine, catalog) = engine_for(Strategy::Shared, 1);
        ingest_workload(&mut engine, &catalog);
        let tuples_before = engine.store_tuples();
        assert!(tuples_before > 0);
        // Reinstall the same plan: state carried over.
        let plan = engine.plan().clone();
        engine.install_plan(plan).unwrap();
        assert_eq!(engine.store_tuples(), tuples_before);
        // Install an empty plan: every store dropped.
        engine.install_plan(TopologyPlan::default()).unwrap();
        assert_eq!(engine.store_tuples(), 0);
    }

    #[test]
    fn unknown_relation_is_rejected() {
        let (mut engine, catalog) = engine_for(Strategy::Shared, 1);
        let t = tuple(&catalog, "R", 10, &[("a", 1)]);
        assert!(engine.ingest(clash_common::RelationId::new(42), t).is_err());
    }

    #[test]
    fn sink_receives_emitted_results() {
        let (catalog, queries, stats) = setup(1);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let mut engine = LocalEngine::new(catalog.clone(), report.plan, EngineConfig::default());
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c2 = counter.clone();
        engine.set_sink(Box::new(move |_, _| {
            c2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }));
        let catalog_ref = catalog;
        ingest_workload(&mut engine, &catalog_ref);
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            engine.snapshot().total_results()
        );
    }
}
