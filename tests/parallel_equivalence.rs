//! Equivalence of the sharded parallel runtime with the sequential
//! engine, plus routing properties of `partition_hash`.
//!
//! The parallel engine's contract is exact: on identical input streams it
//! must produce the identical result multiset (not just counts) as
//! `LocalEngine`, for every planning strategy, any worker count, and both
//! in-order and out-of-order timestamp arrival.

use clash_catalog::{Catalog, Statistics};
use clash_common::{QueryId, RelationId, Timestamp, Tuple, TupleBuilder, Window};
use clash_optimizer::{Planner, Strategy};
use clash_query::parse_query;
use clash_runtime::store::partition_hash;
use clash_runtime::{EngineConfig, LocalEngine, ParallelEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn catalog_with_parallelism(parallelism: usize) -> (Catalog, Vec<clash_query::JoinQuery>) {
    let mut catalog = Catalog::new();
    catalog
        .register("A", ["x"], Window::secs(3600), parallelism)
        .unwrap();
    catalog
        .register("B", ["x", "y"], Window::secs(3600), parallelism)
        .unwrap();
    catalog
        .register("C", ["y", "z"], Window::secs(3600), parallelism)
        .unwrap();
    catalog.register("D", ["z"], Window::secs(3600), 1).unwrap();
    let q1 = parse_query(&catalog, QueryId::new(0), "q1", "A(x), B(x,y), C(y)").unwrap();
    let q2 = parse_query(&catalog, QueryId::new(1), "q2", "B(y), C(y,z), D(z)").unwrap();
    (catalog, vec![q1, q2])
}

/// Random stream over all four relations; `shuffle_ts` makes timestamps
/// arrive out of order (a tuple may carry a smaller timestamp than an
/// earlier-arrived one), stressing the sequence-number probe guard.
fn random_stream(
    catalog: &Catalog,
    n_per_relation: usize,
    key_domain: i64,
    seed: u64,
    shuffle_ts: bool,
) -> Vec<(RelationId, Tuple)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::new();
    let mut ts = 0u64;
    for _ in 0..n_per_relation {
        for name in ["A", "B", "C", "D"] {
            let meta = catalog.relation_by_name(name).unwrap();
            ts += 5;
            let jitter = if shuffle_ts {
                rng.gen_range(0..10u64)
            } else {
                0
            };
            let mut b = TupleBuilder::new(&meta.schema, Timestamp::from_millis(ts + jitter));
            for attr in &meta.schema.attributes {
                b = b.set(&attr.name, rng.gen_range(0..key_domain));
            }
            stream.push((meta.id, b.build()));
        }
    }
    stream
}

/// Canonical sortable rendering of a result multiset.
fn result_multiset(results: &[(QueryId, Tuple)]) -> Vec<String> {
    let mut rendered: Vec<String> = results
        .iter()
        .map(|(q, t)| {
            let mut attrs: Vec<String> = t.iter().map(|(a, v)| format!("{a}={v}")).collect();
            attrs.sort();
            format!("{q}|{}|{}", t.ts, attrs.join(","))
        })
        .collect();
    rendered.sort();
    rendered
}

fn run_local(
    catalog: &Catalog,
    queries: &[clash_query::JoinQuery],
    strategy: Strategy,
    stream: &[(RelationId, Tuple)],
) -> (Vec<String>, u64, u64) {
    let stats = Statistics::new();
    let planner = Planner::with_defaults(catalog, &stats);
    let report = planner.plan(queries, strategy).unwrap();
    let config = EngineConfig {
        collect_results: true,
        ..EngineConfig::default()
    };
    let mut engine = LocalEngine::new(catalog.clone(), report.plan, config);
    for (relation, tuple) in stream {
        engine.ingest(*relation, tuple.clone()).unwrap();
    }
    let snap = engine.snapshot();
    (
        result_multiset(engine.results()),
        snap.total_results(),
        snap.tuples_sent,
    )
}

fn run_parallel(
    catalog: &Catalog,
    queries: &[clash_query::JoinQuery],
    strategy: Strategy,
    stream: &[(RelationId, Tuple)],
    workers: usize,
) -> (Vec<String>, u64, u64) {
    let stats = Statistics::new();
    let planner = Planner::with_defaults(catalog, &stats);
    let report = planner.plan(queries, strategy).unwrap();
    let config = EngineConfig {
        collect_results: true,
        ..EngineConfig::default()
    };
    let mut engine = ParallelEngine::new(catalog.clone(), report.plan, config, workers);
    for (relation, tuple) in stream {
        engine.ingest(*relation, tuple.clone()).unwrap();
    }
    let snap = engine.snapshot();
    (
        result_multiset(&engine.results()),
        snap.total_results(),
        snap.tuples_sent,
    )
}

#[test]
fn parallel_engine_matches_local_engine_result_multisets() {
    for parallelism in [2usize, 4] {
        let (catalog, queries) = catalog_with_parallelism(parallelism);
        let stream = random_stream(&catalog, 40, 6, 0xC1A5, false);
        for strategy in [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp] {
            let (local_set, local_total, local_sent) =
                run_local(&catalog, &queries, strategy, &stream);
            assert!(local_total > 0, "workload must produce results");
            for workers in [1usize, 2, 4, 7] {
                let (par_set, par_total, par_sent) =
                    run_parallel(&catalog, &queries, strategy, &stream, workers);
                assert_eq!(
                    local_total, par_total,
                    "{strategy:?} result count, {workers} workers, parallelism {parallelism}"
                );
                assert_eq!(
                    local_set, par_set,
                    "{strategy:?} result multiset, {workers} workers, parallelism {parallelism}"
                );
                assert_eq!(
                    local_sent, par_sent,
                    "{strategy:?} probe cost, {workers} workers, parallelism {parallelism}"
                );
            }
        }
    }
}

#[test]
fn parallel_engine_matches_local_engine_on_out_of_order_streams() {
    // Out-of-order timestamps make the "probe only earlier arrivals" rule
    // diverge from timestamp order; the parallel engine must still mirror
    // the sequential engine's arrival-order semantics exactly (via the
    // sequence-number guard).
    let (catalog, queries) = catalog_with_parallelism(4);
    for seed in [1u64, 2, 3] {
        let stream = random_stream(&catalog, 30, 5, seed, true);
        let (local_set, local_total, _) =
            run_local(&catalog, &queries, Strategy::GlobalIlp, &stream);
        assert!(local_total > 0);
        for workers in [2usize, 4] {
            let (par_set, _, _) =
                run_parallel(&catalog, &queries, Strategy::GlobalIlp, &stream, workers);
            assert_eq!(local_set, par_set, "seed {seed}, {workers} workers");
        }
    }
}

#[test]
fn repeated_parallel_runs_are_deterministic() {
    // Scheduling may interleave differently run to run; the collected
    // result multiset (and all counted metrics) must not.
    let (catalog, queries) = catalog_with_parallelism(4);
    let stream = random_stream(&catalog, 30, 5, 7, false);
    let runs: Vec<(Vec<String>, u64, u64)> = (0..3)
        .map(|_| run_parallel(&catalog, &queries, Strategy::GlobalIlp, &stream, 4))
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

proptest! {
    /// `partition_hash` is stable (same value, same shard), bounded by the
    /// shard count, and `parallelism <= 1` always routes to shard 0.
    #[test]
    fn partition_hash_routing_is_stable_and_bounded(
        keys in proptest::collection::vec(0i64..1_000_000, 1..64),
        shards in 1usize..16,
    ) {
        for k in &keys {
            let v = clash_common::Value::Int(*k);
            let p1 = partition_hash(&v, shards);
            let p2 = partition_hash(&v, shards);
            prop_assert_eq!(p1, p2, "stability");
            prop_assert!(p1 < shards, "bounded");
            prop_assert_eq!(partition_hash(&v, 1), 0);
        }
    }

    /// Routing is uniform enough that no shard receives more than three
    /// times its fair share of a large uniform key set (the load-balance
    /// property the cost model's χ factor assumes).
    #[test]
    fn partition_hash_routing_is_roughly_uniform(
        shards in 2usize..9,
        offset in 0i64..1_000,
    ) {
        let n = 4_000i64;
        let mut counts = vec![0usize; shards];
        for k in 0..n {
            let v = clash_common::Value::Int(offset + k);
            counts[partition_hash(&v, shards)] += 1;
        }
        let fair = n as usize / shards;
        for (shard, count) in counts.iter().enumerate() {
            prop_assert!(
                *count > fair / 3 && *count < fair * 3,
                "shard {} got {} of {} (fair {})",
                shard,
                count,
                n,
                fair
            );
        }
    }
}
