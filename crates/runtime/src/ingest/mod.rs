//! Asynchronous multi-source ingestion: the front-end that removes the
//! last serial stage of the sharded runtime.
//!
//! The coordinator of [`crate::parallel::ParallelEngine`] was the single
//! thread every input tuple had to pass through — the CLASH paper's
//! scale-out deployment instead assumes tuples arrive from many
//! independent stream sources concurrently. This module lets N producer
//! threads ingest in parallel while the coordinator degrades to a
//! control-plane thread (barriers, plan installs, expiry):
//!
//! * [`SourceHandle`] — the producer-side API handed out by
//!   `ParallelEngine::open_source`. Each handle owns a private ingress
//!   router: it resolves partition routing with the same
//!   [`crate::parallel::router::fan_out`] as the coordinator, micro-batches
//!   deliveries in its own [`crate::parallel::router::BatchBuffer`] (the
//!   PR 2 batching machinery) and ships them straight to the worker
//!   shards — no hop through the coordinator thread. Handles never share
//!   hot state: every slot has its own lock, so producers block each other
//!   only if the caller shares one handle across threads.
//! * **Backpressure** — every push first passes an admission gate bounding
//!   the number of in-flight roots (`EngineConfig::max_inflight_roots`)
//!   against the global completion watermark, so a slow consumer throttles
//!   producers instead of letting worker queues grow without limit.
//! * [`flusher`] — a background thread sweeping the open sources' batch
//!   buffers on the time trigger (`EngineConfig::micro_batch_max_delay`),
//!   so a stream that goes sparse or idle cannot strand buffered
//!   deliveries (and the results they would produce) until the next
//!   barrier.
//!
//! # Exactness under concurrent producers: linearizability
//!
//! Every root still receives a unique sequence number (one shared atomic
//! allocator), so a single logical serial order exists: the allocation
//! order, which respects every source's push order. The engine's
//! guarantee is *linearizability with respect to that order* — the result
//! multiset is exactly what `LocalEngine` produces when ingesting all
//! pushed tuples in sequence-number order. `SourceHandle::push` returns
//! the allocated number, so the realized order is observable (the
//! equivalence property test replays it through `LocalEngine`).
//!
//! Which serial order was realized only matters where the seed's
//! arrival-order semantics make it matter: a pair of tuples joins only if
//! the stored side both carries a smaller timestamp *and* arrived (was
//! sequenced) earlier. Streams whose timestamps are consistent with every
//! source's push order, or whose sources never share join keys, therefore
//! produce one deterministic multiset under any interleaving; only
//! cross-source pairs with inverted timestamps depend on the race — the
//! same way `LocalEngine`'s output depends on arrival order for
//! out-of-order input.
//!
//! Mechanically, what multi-producer delivery breaks is the channel-FIFO
//! half of the single-coordinator argument: a probe from source A can
//! reach a (store, partition) before an insert from source B that carries
//! a *smaller* sequence number. The engine therefore widens the symmetric
//! pending-prober set ([`crate::parallel::router::symmetric_stores_multi`])
//! to every store that is both populated and probed the moment a second
//! producer appears: probes register as pending probers, and the late
//! insert retro-matches them exactly once — the same mechanism that
//! already covered forward-fed stores. Per-(source, partition) FIFO holds
//! per handle (each handle's sends to a worker are dequeued in push
//! order), which keeps the common in-order case on the fast probe-time
//! path; the pending probers only pay for the actual races.

//!
//! # Plan installs under live ingestion: the quiesce protocol
//!
//! Plan installs are lossless under concurrent producers. The engine
//! pauses the [`shared::QuiesceGate`] every push passes through (new
//! pushes block, in-flight pushes finish routing), flushes every slot's
//! residual old-plan batches, drains the workers to the completion
//! watermark, installs the new plan on every worker and every slot, and
//! resumes the gate. A racing push therefore either completes entirely
//! under the old plan (and its results are collected before the switch)
//! or blocks for the duration of the quiesce window and then routes
//! against the new plan — it is never routed against a stale plan and
//! never dropped by a worker that already switched. See
//! `ParallelEngine::install_plan` and DESIGN.md.

pub(crate) mod flusher;
pub(crate) mod shared;
mod source;

pub use source::SourceHandle;
pub(crate) use source::SourceSlot;
