//! Equi-join predicates.

use clash_common::{AttrRef, RelationId, RelationSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An equi-join predicate `left = right` between attributes of two
/// different relations (`Si.a = Sj.b` in the paper).
///
/// Predicates are normalized on construction so that the lexicographically
/// smaller attribute reference is stored on the left; two predicates over
/// the same attribute pair therefore compare equal regardless of the order
/// they were written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EquiPredicate {
    /// Smaller side of the normalized attribute pair.
    pub left: AttrRef,
    /// Larger side of the normalized attribute pair.
    pub right: AttrRef,
}

impl EquiPredicate {
    /// Creates a normalized predicate. Panics if both attributes belong to
    /// the same relation — self joins over a single logical stream are not
    /// part of the paper's query model.
    pub fn new(a: AttrRef, b: AttrRef) -> Self {
        assert_ne!(
            a.relation, b.relation,
            "equi-join predicates must connect two different relations"
        );
        if a <= b {
            EquiPredicate { left: a, right: b }
        } else {
            EquiPredicate { left: b, right: a }
        }
    }

    /// The two relations this predicate connects.
    pub fn relations(&self) -> (RelationId, RelationId) {
        (self.left.relation, self.right.relation)
    }

    /// `true` if the predicate references the given relation.
    pub fn involves(&self, relation: RelationId) -> bool {
        self.left.relation == relation || self.right.relation == relation
    }

    /// Returns the attribute on the side of `relation`, if the predicate
    /// touches it.
    pub fn side_of(&self, relation: RelationId) -> Option<AttrRef> {
        if self.left.relation == relation {
            Some(self.left)
        } else if self.right.relation == relation {
            Some(self.right)
        } else {
            None
        }
    }

    /// Returns the attribute on the side *opposite* of `relation`.
    pub fn other_side(&self, relation: RelationId) -> Option<AttrRef> {
        if self.left.relation == relation {
            Some(self.right)
        } else if self.right.relation == relation {
            Some(self.left)
        } else {
            None
        }
    }

    /// `true` when the predicate connects the two (disjoint) relation sets,
    /// i.e. one side lies in `a` and the other in `b`.
    pub fn connects(&self, a: &RelationSet, b: &RelationSet) -> bool {
        (a.contains(self.left.relation) && b.contains(self.right.relation))
            || (a.contains(self.right.relation) && b.contains(self.left.relation))
    }

    /// `true` when both sides of the predicate lie within `set`.
    pub fn within(&self, set: &RelationSet) -> bool {
        set.contains(self.left.relation) && set.contains(self.right.relation)
    }
}

impl fmt::Display for EquiPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::AttrId;

    fn attr(rel: u32, a: u32) -> AttrRef {
        AttrRef::new(RelationId::new(rel), AttrId::new(a))
    }

    #[test]
    fn predicates_normalize_operand_order() {
        let p1 = EquiPredicate::new(attr(2, 0), attr(0, 1));
        let p2 = EquiPredicate::new(attr(0, 1), attr(2, 0));
        assert_eq!(p1, p2);
        assert_eq!(p1.left, attr(0, 1));
        assert_eq!(p1.right, attr(2, 0));
    }

    #[test]
    #[should_panic(expected = "different relations")]
    fn same_relation_predicate_rejected() {
        let _ = EquiPredicate::new(attr(1, 0), attr(1, 1));
    }

    #[test]
    fn sides_and_involvement() {
        let p = EquiPredicate::new(attr(0, 1), attr(2, 0));
        assert!(p.involves(RelationId::new(0)));
        assert!(p.involves(RelationId::new(2)));
        assert!(!p.involves(RelationId::new(1)));
        assert_eq!(p.side_of(RelationId::new(2)), Some(attr(2, 0)));
        assert_eq!(p.other_side(RelationId::new(2)), Some(attr(0, 1)));
        assert_eq!(p.side_of(RelationId::new(5)), None);
        assert_eq!(p.other_side(RelationId::new(5)), None);
        assert_eq!(p.relations(), (RelationId::new(0), RelationId::new(2)));
    }

    #[test]
    fn connects_and_within_relation_sets() {
        let p = EquiPredicate::new(attr(0, 0), attr(1, 0));
        let a = RelationSet::singleton(RelationId::new(0));
        let b = RelationSet::singleton(RelationId::new(1));
        let c = RelationSet::singleton(RelationId::new(2));
        assert!(p.connects(&a, &b));
        assert!(p.connects(&b, &a));
        assert!(!p.connects(&a, &c));
        assert!(p.within(&a.union(&b)));
        assert!(!p.within(&a.union(&c)));
    }

    #[test]
    fn display_shows_both_sides() {
        let p = EquiPredicate::new(attr(0, 0), attr(1, 2));
        assert_eq!(p.to_string(), "R0.a0 = R1.a2");
    }
}
