//! Small-inline posting lists for the store hash indexes.
//!
//! Every distinct join-key value of an indexed attribute owns one posting
//! list (the offsets of matching tuples inside an epoch container). The
//! seed used a `Vec<usize>` per value, which costs a heap allocation for
//! every distinct key — painful for high-cardinality key attributes where
//! most values have one or two postings. [`PostingList`] stores up to
//! [`INLINE_POSTINGS`] offsets inline and only spills to a heap `Vec`
//! beyond that, so the common low-fanout case allocates nothing beyond
//! the index map slot itself.
//!
//! A list that spilled stays heap-backed even if retention shrinks it
//! below the inline capacity again: expiry waves shrink and regrow lists
//! continuously, and bouncing between representations would trade the
//! saved bytes for churn.

/// Offsets stored inline before spilling to the heap.
pub const INLINE_POSTINGS: usize = 3;

/// A posting list: tuple offsets inline up to [`INLINE_POSTINGS`], heap
/// beyond.
#[derive(Debug, Clone)]
pub enum PostingList {
    /// Up to [`INLINE_POSTINGS`] offsets, no heap allocation.
    Inline {
        /// Number of valid entries in `slots`.
        len: u8,
        /// The inline offsets (`0..len` valid).
        slots: [usize; INLINE_POSTINGS],
    },
    /// Spilled representation for > [`INLINE_POSTINGS`] offsets.
    Heap(Vec<usize>),
}

impl Default for PostingList {
    fn default() -> Self {
        PostingList::Inline {
            len: 0,
            slots: [0; INLINE_POSTINGS],
        }
    }
}

impl PostingList {
    /// Creates an empty list.
    pub fn new() -> Self {
        PostingList::default()
    }

    /// Number of postings.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            PostingList::Inline { len, .. } => usize::from(*len),
            PostingList::Heap(v) => v.len(),
        }
    }

    /// `true` when no posting is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The postings as a slice (what probe candidate lookups borrow).
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        match self {
            PostingList::Inline { len, slots } => &slots[..usize::from(*len)],
            PostingList::Heap(v) => v,
        }
    }

    /// Appends one offset, spilling to the heap on overflow of the inline
    /// capacity.
    #[inline]
    pub fn push(&mut self, offset: usize) {
        match self {
            PostingList::Inline { len, slots } => {
                let n = usize::from(*len);
                if n < INLINE_POSTINGS {
                    slots[n] = offset;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_POSTINGS * 2 + 2);
                    v.extend_from_slice(&slots[..]);
                    v.push(offset);
                    *self = PostingList::Heap(v);
                }
            }
            PostingList::Heap(v) => v.push(offset),
        }
    }

    /// Remaps every posting through `f`, dropping those mapped to `None`
    /// and compacting in place — the expiry index-repair primitive
    /// (old offset → new offset after a retain pass, `None` = expired).
    pub fn retain_map(&mut self, mut f: impl FnMut(usize) -> Option<usize>) {
        match self {
            PostingList::Inline { len, slots } => {
                let mut kept = 0usize;
                for i in 0..usize::from(*len) {
                    if let Some(new) = f(slots[i]) {
                        slots[kept] = new;
                        kept += 1;
                    }
                }
                *len = kept as u8;
            }
            PostingList::Heap(v) => {
                let mut kept = 0usize;
                for i in 0..v.len() {
                    if let Some(new) = f(v[i]) {
                        v[kept] = new;
                        kept += 1;
                    }
                }
                v.truncate(kept);
            }
        }
    }

    /// `true` when the list spilled to the heap (diagnostics/tests).
    pub fn is_spilled(&self) -> bool {
        matches!(self, PostingList::Heap(_))
    }
}

impl FromIterator<usize> for PostingList {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut list = PostingList::new();
        for offset in iter {
            list.push(offset);
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity_then_spills() {
        let mut list = PostingList::new();
        assert!(list.is_empty());
        for i in 0..INLINE_POSTINGS {
            list.push(i * 10);
            assert!(!list.is_spilled(), "inline at {i}");
        }
        assert_eq!(list.as_slice(), &[0, 10, 20]);
        list.push(30);
        assert!(list.is_spilled());
        assert_eq!(list.as_slice(), &[0, 10, 20, 30]);
        assert_eq!(list.len(), 4);
    }

    #[test]
    fn retain_map_remaps_and_drops_in_both_representations() {
        // Inline.
        let mut inline: PostingList = [2usize, 5, 7].into_iter().collect();
        inline.retain_map(|i| if i == 5 { None } else { Some(i - 1) });
        assert_eq!(inline.as_slice(), &[1, 6]);
        assert!(!inline.is_spilled());
        // Heap.
        let mut heap: PostingList = (0..10usize).collect();
        assert!(heap.is_spilled());
        heap.retain_map(|i| if i % 2 == 0 { Some(i / 2) } else { None });
        assert_eq!(heap.as_slice(), &[0, 1, 2, 3, 4]);
        // Dropping below the inline capacity keeps the heap representation.
        heap.retain_map(|i| if i == 0 { Some(0) } else { None });
        assert_eq!(heap.as_slice(), &[0]);
        assert!(heap.is_spilled());
    }

    #[test]
    fn retain_map_to_empty() {
        let mut list: PostingList = [1usize, 2].into_iter().collect();
        list.retain_map(|_| None);
        assert!(list.is_empty());
        assert_eq!(list.as_slice(), &[] as &[usize]);
    }

    #[test]
    fn matches_vec_model_under_random_ops() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut list = PostingList::new();
            let mut model: Vec<usize> = Vec::new();
            for _ in 0..rng.gen_range(0..40usize) {
                if rng.gen_bool(0.7) || model.is_empty() {
                    let v = rng.gen_range(0..1000usize);
                    list.push(v);
                    model.push(v);
                } else {
                    let threshold = rng.gen_range(0..1000usize);
                    let shift = rng.gen_range(0..5usize);
                    list.retain_map(|i| (i >= threshold).then(|| i + shift));
                    model.retain_mut(|i| {
                        if *i >= threshold {
                            *i += shift;
                            true
                        } else {
                            false
                        }
                    });
                }
                assert_eq!(list.as_slice(), model.as_slice());
                assert_eq!(list.len(), model.len());
            }
        }
    }
}
