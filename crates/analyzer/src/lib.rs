//! # clash-analyzer
//!
//! Static analysis over [`TopologyPlan`]s. CLASH's exactness argument
//! (Section V of the paper) assumes the deployed topology is *well
//! formed*: every send target lands on a registered rule set, probe
//! predicates only reference attributes the arriving tuple and the
//! stored relations actually carry, every query's probe chains terminate
//! in an `Emit` covering the full relation set, the Forward graph is
//! acyclic, and partition routing hash-agrees with the target store's
//! partition attribute. A plan violating any of these silently drops
//! tuples, emits wrong results or forwards forever — so both engines
//! call [`gate`] in `install_plan` and reject error-level plans with
//! [`ClashError::InvalidPlan`] before quiescing anything.
//!
//! Diagnostics carry stable codes (`P001`, ...); the reference table
//! lives in DESIGN.md. [`verify_plan`] performs every check derivable
//! from the plan and the catalog alone (what the engines have at install
//! time); [`verify_plan_with_queries`] additionally checks the plan
//! against the query definitions (emit-head completeness, every query
//! relation stored) and is what the optimizer tests, the mutation suite
//! and the CI plan smoke run.

use clash_catalog::Catalog;
use clash_common::{
    AttrRef, ClashError, Diagnostic, EdgeId, FxHashMap, FxHashSet, QueryId, RelationSet, Result,
    StoreId,
};
use clash_optimizer::{OutputAction, Rule, SendTarget, TopologyPlan};
use clash_query::{EquiPredicate, JoinQuery};

/// A rule-set address: the unit of the Forward graph.
type Node = (StoreId, EdgeId);

/// Safety cap on dataflow deliveries: heads only grow along Forward
/// edges, so the fixpoint is finite, but an adversarial cyclic plan
/// could still make it large — and a cyclic plan is rejected by the
/// dedicated P010 check regardless of whether the dataflow saw every
/// head combination.
const MAX_DELIVERIES: usize = 100_000;

/// Runs every check derivable from the plan and the catalog alone.
/// This is the install-time gate's view: the engines hold no query
/// definitions.
pub fn verify_plan(catalog: &Catalog, plan: &TopologyPlan) -> Vec<Diagnostic> {
    Analyzer::new(catalog, None, plan).run()
}

/// Runs the full analysis, including the checks that need the query
/// definitions (emit heads equal the query relation sets, every query
/// relation is stored).
pub fn verify_plan_with_queries(
    catalog: &Catalog,
    queries: &[JoinQuery],
    plan: &TopologyPlan,
) -> Vec<Diagnostic> {
    Analyzer::new(catalog, Some(queries), plan).run()
}

/// The install-time gate: `Ok(())` when the plan carries no error-level
/// findings, otherwise `Err(ClashError::InvalidPlan)` with the errors.
pub fn gate(catalog: &Catalog, plan: &TopologyPlan) -> Result<()> {
    let errors: Vec<Diagnostic> = verify_plan(catalog, plan)
        .into_iter()
        .filter(Diagnostic::is_error)
        .collect();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(ClashError::InvalidPlan(errors))
    }
}

/// Union-find over attribute references: two attributes are join-equal
/// when some chain of equi-predicates connects them, in which case their
/// values (and hence their partition hashes) agree on every join result.
struct JoinEquivalence {
    index: FxHashMap<AttrRef, usize>,
    parent: Vec<usize>,
}

impl JoinEquivalence {
    fn new() -> Self {
        JoinEquivalence {
            index: FxHashMap::default(),
            parent: Vec::new(),
        }
    }

    fn slot(&mut self, a: AttrRef) -> usize {
        if let Some(i) = self.index.get(&a) {
            return *i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.index.insert(a, i);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: AttrRef, b: AttrRef) {
        let (ra, rb) = (self.slot(a), self.slot(b));
        let (ra, rb) = (self.find(ra), self.find(rb));
        self.parent[ra] = rb;
    }

    fn equal(&mut self, a: AttrRef, b: AttrRef) -> bool {
        if a == b {
            return true;
        }
        let (ra, rb) = (self.slot(a), self.slot(b));
        self.find(ra) == self.find(rb)
    }
}

struct Analyzer<'a> {
    catalog: &'a Catalog,
    queries: Option<&'a [JoinQuery]>,
    plan: &'a TopologyPlan,
    diags: Vec<Diagnostic>,
    equiv: JoinEquivalence,
}

impl<'a> Analyzer<'a> {
    fn new(catalog: &'a Catalog, queries: Option<&'a [JoinQuery]>, plan: &'a TopologyPlan) -> Self {
        // Join equality is derived from every predicate the plan itself
        // carries (each probe rule holds the predicates of its step);
        // query definitions, when given, contribute theirs as well.
        let mut equiv = JoinEquivalence::new();
        for rules in plan.rules.values() {
            for rule in rules {
                if let Rule::Probe { predicates, .. } = rule {
                    for p in predicates {
                        equiv.union(p.left, p.right);
                    }
                }
            }
        }
        if let Some(queries) = queries {
            for q in queries {
                for p in &q.predicates {
                    equiv.union(p.left, p.right);
                }
            }
        }
        Analyzer {
            catalog,
            queries,
            plan,
            diags: Vec::new(),
            equiv,
        }
    }

    fn run(mut self) -> Vec<Diagnostic> {
        self.check_store_table();
        self.check_targets_resolve();
        let flow = self.dataflow();
        self.check_orphans();
        self.check_emits(&flow);
        self.check_mir_fed(&flow);
        self.check_query_relations_stored(&flow);
        self.check_forward_acyclic();
        self.diags.sort_by(|a, b| {
            (
                a.code,
                a.store.map(|s| s.0),
                a.edge.map(|e| e.0),
                &a.message,
            )
                .cmp(&(
                    b.code,
                    b.store.map(|s| s.0),
                    b.edge.map(|e| e.0),
                    &b.message,
                ))
        });
        self.diags.dedup();
        self.diags
    }

    fn query(&self, id: QueryId) -> Option<&'a JoinQuery> {
        self.queries?.iter().find(|q| q.id == id)
    }

    fn attr_known(&self, a: AttrRef) -> bool {
        self.catalog
            .schema(a.relation)
            .map(|s| a.attr.index() < s.arity())
            .unwrap_or(false)
    }

    /// All send targets of the plan with no reachability applied: ingest
    /// routes plus every Forward output of every rule set.
    fn all_targets(&self) -> impl Iterator<Item = SendTarget> + 'a {
        let forwards = self.plan.rules.values().flatten().flat_map(|rule| {
            let outputs: &[OutputAction] = match rule {
                Rule::Probe { outputs, .. } => outputs,
                Rule::Store => &[],
            };
            outputs.iter().filter_map(|o| match o {
                OutputAction::Forward(t) => Some(*t),
                OutputAction::Emit { .. } => None,
            })
        });
        self.plan
            .ingest
            .iter()
            .flat_map(|r| r.targets.iter().copied())
            .chain(forwards)
    }

    /// P001 (store table density) and P012 (relations known to the
    /// catalog): the descriptor table must be addressable by `StoreId`
    /// index and every member relation resolvable to a schema.
    fn check_store_table(&mut self) {
        for (i, def) in self.plan.stores.iter().enumerate() {
            if def.id.index() != i {
                self.diags.push(
                    Diagnostic::error("P001", format!("store table slot {i} holds {}", def.id))
                        .at_store(def.id),
                );
            }
            for r in def.descriptor.relations.iter() {
                if self.catalog.schema(r).is_err() {
                    self.diags.push(
                        Diagnostic::error(
                            "P012",
                            format!("store covers relation {r}, which the catalog does not know"),
                        )
                        .at_store(def.id),
                    );
                }
            }
        }
        for route in &self.plan.ingest {
            if self.catalog.schema(route.relation).is_err() {
                self.diags.push(Diagnostic::error(
                    "P012",
                    format!(
                        "ingest route for relation {}, which the catalog does not know",
                        route.relation
                    ),
                ));
            }
        }
    }

    /// P001/P002: every send target must land on an existing store and a
    /// registered, non-empty rule set.
    fn check_targets_resolve(&mut self) {
        let targets: Vec<SendTarget> = self.all_targets().collect();
        for t in targets {
            if self.plan.store(t.store).is_none() {
                self.diags.push(
                    Diagnostic::error(
                        "P001",
                        format!("send target references unknown store {}", t.store),
                    )
                    .at_store(t.store)
                    .at_edge(t.edge),
                );
                continue;
            }
            let registered = self
                .plan
                .rules
                .get(&(t.store, t.edge))
                .is_some_and(|r| !r.is_empty());
            if !registered {
                self.diags.push(
                    Diagnostic::error(
                        "P002",
                        format!("no rule set registered at ({}, {})", t.store, t.edge),
                    )
                    .at_store(t.store)
                    .at_edge(t.edge),
                );
            }
        }
    }

    /// P003: rule sets never targeted by any ingest route or Forward are
    /// dead weight — tuples can never arrive on their edge.
    fn check_orphans(&mut self) {
        let targeted: FxHashSet<Node> = self.all_targets().map(|t| (t.store, t.edge)).collect();
        for key in self.plan.rules.keys() {
            if !targeted.contains(key) {
                self.diags.push(
                    Diagnostic::warning(
                        "P003",
                        format!(
                            "rule set at ({}, {}) is never targeted by any ingest route or \
                             Forward",
                            key.0, key.1
                        ),
                    )
                    .at_store(key.0)
                    .at_edge(key.1),
                );
            }
        }
    }

    /// Walks the plan's dataflow from the ingest routes, tracking the
    /// relation-set head of the tuples arriving at each rule set. Emits
    /// the schema checks (P004, P005, P013), partition safety (P011) and
    /// the Emit/fed-store facts the completeness checks consume.
    fn dataflow(&mut self) -> FlowFacts {
        let mut facts = FlowFacts::default();
        let mut visited: FxHashSet<(u32, u32, u128)> = FxHashSet::default();
        let mut worklist: Vec<(SendTarget, RelationSet)> = Vec::new();
        for route in &self.plan.ingest {
            let head = RelationSet::singleton(route.relation);
            for t in &route.targets {
                self.check_delivery(*t, &head);
                worklist.push((*t, head));
            }
        }
        let mut deliveries = 0usize;
        while let Some((target, head)) = worklist.pop() {
            deliveries += 1;
            if deliveries > MAX_DELIVERIES {
                break;
            }
            if !visited.insert((target.store.0, target.edge.0, head.bits())) {
                continue;
            }
            let Some(def) = self.plan.store(target.store) else {
                continue; // P001 already reported
            };
            let stored = def.descriptor.relations;
            let Some(rules) = self.plan.rules.get(&(target.store, target.edge)) else {
                continue; // P002 already reported
            };
            for rule in rules {
                match rule {
                    Rule::Store => {
                        facts.fed.insert((target.store, target.edge));
                        facts.stored.insert(stored.bits());
                        if head != stored {
                            self.diags.push(
                                Diagnostic::error(
                                    "P013",
                                    format!(
                                        "Store rule receives tuples with head {head} but the \
                                         store covers {stored}"
                                    ),
                                )
                                .at_store(target.store)
                                .at_edge(target.edge),
                            );
                        }
                    }
                    Rule::Probe {
                        predicates,
                        outputs,
                    } => {
                        self.check_probe_predicates(target, &head, stored, predicates);
                        let out_head = head.union(&stored);
                        for output in outputs {
                            match output {
                                OutputAction::Emit { query } => {
                                    facts.emits.push((*query, out_head, target.store));
                                }
                                OutputAction::Forward(next) => {
                                    self.check_delivery(*next, &out_head);
                                    worklist.push((*next, out_head));
                                }
                            }
                        }
                    }
                }
            }
        }
        facts
    }

    /// Checks one send against its target: the routing key must be an
    /// attribute the sent tuple carries (P005) and, when the target store
    /// is partitioned across more than one worker, the chosen key must be
    /// join-equal to the partition attribute or the send must be an
    /// explicit broadcast (P011) — otherwise matching tuples hash to
    /// different shards and results are silently lost.
    fn check_delivery(&mut self, target: SendTarget, head: &RelationSet) {
        let Some(def) = self.plan.store(target.store) else {
            return; // P001 already reported
        };
        if let Some(key) = target.routing_key {
            if !head.contains(key.relation) || !self.attr_known(key) {
                self.diags.push(
                    Diagnostic::error(
                        "P005",
                        format!("routing key {key} is not carried by the sent tuple (head {head})"),
                    )
                    .at_store(target.store)
                    .at_edge(target.edge),
                );
                return;
            }
        }
        let parallelism = def.descriptor.parallelism;
        if let (Some(partition), Some(key)) = (def.descriptor.partition, target.routing_key) {
            if parallelism > 1 && !self.equiv.equal(key, partition) {
                self.diags.push(
                    Diagnostic::error(
                        "P011",
                        format!(
                            "routing key {key} is not join-equal to the partition attribute \
                             {partition} of {} ({} partitions); matching tuples would hash to \
                             different shards",
                            target.store, parallelism
                        ),
                    )
                    .at_store(target.store)
                    .at_edge(target.edge),
                );
            }
        }
    }

    /// P004: every probe predicate must connect the arriving tuple's head
    /// to the stored relations, through attributes the catalog knows.
    fn check_probe_predicates(
        &mut self,
        node: SendTarget,
        head: &RelationSet,
        stored: RelationSet,
        predicates: &[EquiPredicate],
    ) {
        for p in predicates {
            for side in [p.left, p.right] {
                if !self.attr_known(side) {
                    self.diags.push(
                        Diagnostic::error(
                            "P004",
                            format!("probe predicate {p} references unknown attribute {side}"),
                        )
                        .at_store(node.store)
                        .at_edge(node.edge),
                    );
                    return;
                }
            }
            let connects = (head.contains(p.left.relation) && stored.contains(p.right.relation))
                || (head.contains(p.right.relation) && stored.contains(p.left.relation));
            if !connects {
                self.diags.push(
                    Diagnostic::error(
                        "P004",
                        format!(
                            "probe predicate {p} does not connect the arriving tuple \
                             (head {head}) to the stored relations ({stored})"
                        ),
                    )
                    .at_store(node.store)
                    .at_edge(node.edge),
                );
            }
        }
    }

    /// P006/P007/P014: every declared query must reach at least one Emit,
    /// and (with query definitions) every Emit's accumulated head must
    /// equal the query's relation set.
    fn check_emits(&mut self, flow: &FlowFacts) {
        for (query, head, store) in &flow.emits {
            if !self.plan.queries.contains(query) {
                self.diags.push(
                    Diagnostic::error(
                        "P014",
                        format!("Emit for {query}, which the plan does not declare"),
                    )
                    .at_store(*store)
                    .for_query(*query),
                );
            }
            if let Some(def) = self.query(*query) {
                if *head != def.relations {
                    self.diags.push(
                        Diagnostic::error(
                            "P007",
                            format!(
                                "Emit for {query} fires on head {head}, but the query joins {}",
                                def.relations
                            ),
                        )
                        .at_store(*store)
                        .for_query(*query),
                    );
                }
            }
        }
        for query in &self.plan.queries {
            // Single-relation queries have no probe chain: every arriving
            // tuple is a result on its own, so no Emit rule exists.
            if let Some(def) = self.query(*query) {
                if def.relations.len() < 2 {
                    continue;
                }
            }
            if !flow.emits.iter().any(|(q, _, _)| q == query) {
                self.diags.push(
                    Diagnostic::error(
                        "P006",
                        format!("{query} never reaches an Emit: the query can produce no results"),
                    )
                    .for_query(*query),
                );
            }
        }
    }

    /// P008: a materialized-intermediate store that no reachable Forward
    /// feeds stays empty forever, so every probe against it finds nothing.
    fn check_mir_fed(&mut self, flow: &FlowFacts) {
        for def in &self.plan.stores {
            if def.descriptor.is_base() {
                continue;
            }
            let fed = self.plan.rules.iter().any(|((store, edge), rules)| {
                *store == def.id
                    && rules.iter().any(|r| matches!(r, Rule::Store))
                    && flow.fed.contains(&(*store, *edge))
            });
            if !fed {
                self.diags.push(
                    Diagnostic::error(
                        "P008",
                        format!(
                            "MIR store {} ({}) is never fed by a reachable Forward",
                            def.id, def.descriptor.relations
                        ),
                    )
                    .at_store(def.id),
                );
            }
        }
    }

    /// P009 (with query definitions): every relation of every query must
    /// be stored in a base store somewhere, or tuples arriving before
    /// their join partners can never be found again.
    fn check_query_relations_stored(&mut self, flow: &FlowFacts) {
        let Some(queries) = self.queries else {
            return;
        };
        for query in queries {
            if !self.plan.queries.contains(&query.id) || query.relations.len() < 2 {
                continue;
            }
            for r in query.relations.iter() {
                let stored = flow.stored.contains(&RelationSet::singleton(r).bits());
                if !stored {
                    self.diags.push(
                        Diagnostic::error(
                            "P009",
                            format!("relation {r} of {} is never stored", query.name),
                        )
                        .for_query(query.id),
                    );
                }
            }
        }
    }

    /// P010: the Forward graph over rule-set nodes must be acyclic —
    /// a cycle forwards tuples forever (the probe chains of Section V-B
    /// strictly grow their head at every step, so a well-formed plan
    /// cannot contain one).
    fn check_forward_acyclic(&mut self) {
        let mut adjacency: FxHashMap<Node, Vec<Node>> = FxHashMap::default();
        for (key, rules) in &self.plan.rules {
            let next: Vec<Node> = rules
                .iter()
                .flat_map(|rule| match rule {
                    Rule::Probe { outputs, .. } => outputs.as_slice(),
                    Rule::Store => &[],
                })
                .filter_map(|o| match o {
                    OutputAction::Forward(t) => Some((t.store, t.edge)),
                    OutputAction::Emit { .. } => None,
                })
                .collect();
            adjacency.insert(*key, next);
        }
        // Iterative three-color DFS; gray-edge targets close a cycle.
        let mut color: FxHashMap<Node, u8> = FxHashMap::default(); // 1 gray, 2 black
        let mut roots: Vec<Node> = adjacency.keys().copied().collect();
        roots.sort();
        for root in roots {
            if color.contains_key(&root) {
                continue;
            }
            let mut stack: Vec<(Node, usize)> = vec![(root, 0)];
            color.insert(root, 1);
            while let Some((node, idx)) = stack.pop() {
                let next = adjacency.get(&node).map(Vec::as_slice).unwrap_or(&[]);
                if idx < next.len() {
                    stack.push((node, idx + 1));
                    let child = next[idx];
                    match color.get(&child) {
                        Some(1) => {
                            self.diags.push(
                                Diagnostic::error(
                                    "P010",
                                    format!(
                                        "Forward cycle: ({}, {}) forwards back to ({}, {})",
                                        node.0, node.1, child.0, child.1
                                    ),
                                )
                                .at_store(child.0)
                                .at_edge(child.1),
                            );
                        }
                        Some(_) => {}
                        None => {
                            if adjacency.contains_key(&child) {
                                color.insert(child, 1);
                                stack.push((child, 0));
                            }
                        }
                    }
                } else {
                    color.insert(node, 2);
                }
            }
        }
    }
}

/// Facts gathered by the dataflow walk, consumed by the completeness
/// checks.
#[derive(Default)]
struct FlowFacts {
    /// `(query, accumulated head, emitting store)` per reachable Emit.
    emits: Vec<(QueryId, RelationSet, StoreId)>,
    /// Rule-set nodes whose Store rule is reachable (the store is fed
    /// through this edge).
    fed: FxHashSet<Node>,
    /// Relation sets (as bitsets) with a reachable Store delivery.
    stored: FxHashSet<u128>,
}

/// Convenience for tests and tooling: the subset of findings that block
/// installation.
pub fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags.iter().filter(|d| d.is_error()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::{AttrId, Severity, Window};
    use clash_optimizer::{IngestRoute, StoreDef, StoreDescriptor};

    /// Hand-built minimal plan: R(a) ⋈ S(a,b) with two base stores, each
    /// relation stored in its own store and probing the other's.
    fn mini() -> (Catalog, TopologyPlan) {
        let mut catalog = Catalog::new();
        catalog.register("R", ["a"], Window::secs(60), 1).unwrap();
        catalog
            .register("S", ["a", "b"], Window::secs(60), 1)
            .unwrap();
        let r = catalog.relation_id("R").unwrap();
        let s = catalog.relation_id("S").unwrap();
        let ra = catalog.attr("R", "a").unwrap();
        let sa = catalog.attr("S", "a").unwrap();
        let q = QueryId::new(0);
        let st_r = StoreId::new(0);
        let st_s = StoreId::new(1);
        let pred = EquiPredicate::new(ra, sa);
        let mut plan = TopologyPlan {
            stores: vec![
                StoreDef {
                    id: st_r,
                    descriptor: StoreDescriptor::unpartitioned(RelationSet::singleton(r)),
                },
                StoreDef {
                    id: st_s,
                    descriptor: StoreDescriptor::unpartitioned(RelationSet::singleton(s)),
                },
            ],
            rules: Default::default(),
            ingest: Vec::new(),
            queries: vec![q],
            estimated_cost: 1.0,
        };
        plan.rules.insert((st_r, EdgeId::new(0)), vec![Rule::Store]);
        plan.rules.insert((st_s, EdgeId::new(1)), vec![Rule::Store]);
        plan.rules.insert(
            (st_s, EdgeId::new(2)),
            vec![Rule::Probe {
                predicates: vec![pred],
                outputs: vec![OutputAction::Emit { query: q }],
            }],
        );
        plan.rules.insert(
            (st_r, EdgeId::new(3)),
            vec![Rule::Probe {
                predicates: vec![pred],
                outputs: vec![OutputAction::Emit { query: q }],
            }],
        );
        plan.ingest = vec![
            IngestRoute {
                relation: r,
                targets: vec![
                    SendTarget {
                        edge: EdgeId::new(0),
                        store: st_r,
                        routing_key: None,
                    },
                    SendTarget {
                        edge: EdgeId::new(2),
                        store: st_s,
                        routing_key: None,
                    },
                ],
            },
            IngestRoute {
                relation: s,
                targets: vec![
                    SendTarget {
                        edge: EdgeId::new(1),
                        store: st_s,
                        routing_key: None,
                    },
                    SendTarget {
                        edge: EdgeId::new(3),
                        store: st_r,
                        routing_key: None,
                    },
                ],
            },
        ];
        (catalog, plan)
    }

    #[test]
    fn minimal_plan_is_clean() {
        let (catalog, plan) = mini();
        let diags = verify_plan(&catalog, &plan);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(gate(&catalog, &plan).is_ok());
    }

    #[test]
    fn dangling_store_is_p001() {
        let (catalog, mut plan) = mini();
        plan.ingest[0].targets[0].store = StoreId::new(99);
        let diags = verify_plan(&catalog, &plan);
        assert!(diags.iter().any(|d| d.code == "P001"), "{diags:?}");
        assert!(matches!(
            gate(&catalog, &plan),
            Err(ClashError::InvalidPlan(_))
        ));
    }

    #[test]
    fn missing_rule_set_is_p002() {
        let (catalog, mut plan) = mini();
        plan.ingest[0].targets[0].edge = EdgeId::new(42);
        let diags = verify_plan(&catalog, &plan);
        assert!(diags.iter().any(|d| d.code == "P002"), "{diags:?}");
    }

    #[test]
    fn orphan_rule_set_is_p003_warning_only() {
        let (catalog, mut plan) = mini();
        plan.rules
            .insert((StoreId::new(0), EdgeId::new(9)), vec![Rule::Store]);
        let diags = verify_plan(&catalog, &plan);
        assert!(diags
            .iter()
            .any(|d| d.code == "P003" && d.severity == Severity::Warning));
        assert!(gate(&catalog, &plan).is_ok(), "warnings must not gate");
    }

    #[test]
    fn unknown_predicate_attribute_is_p004() {
        let (catalog, mut plan) = mini();
        for rules in plan.rules.values_mut() {
            for rule in rules {
                if let Rule::Probe { predicates, .. } = rule {
                    predicates[0].left.attr = AttrId::new(7);
                }
            }
        }
        let diags = verify_plan(&catalog, &plan);
        assert!(diags.iter().any(|d| d.code == "P004"), "{diags:?}");
    }

    #[test]
    fn routing_key_not_carried_is_p005() {
        let (catalog, mut plan) = mini();
        // Route R's own-store copy by an S attribute R does not carry.
        let sa = catalog.attr("S", "a").unwrap();
        plan.ingest[0].targets[0].routing_key = Some(sa);
        let diags = verify_plan(&catalog, &plan);
        assert!(diags.iter().any(|d| d.code == "P005"), "{diags:?}");
    }

    #[test]
    fn undeclared_emit_is_p014_and_missing_emit_is_p006() {
        let (catalog, mut plan) = mini();
        plan.queries = vec![QueryId::new(5)];
        let diags = verify_plan(&catalog, &plan);
        assert!(diags.iter().any(|d| d.code == "P006"), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "P014"), "{diags:?}");
    }

    #[test]
    fn forward_cycle_is_p010() {
        let (catalog, mut plan) = mini();
        let back = SendTarget {
            edge: EdgeId::new(2),
            store: StoreId::new(1),
            routing_key: None,
        };
        let fwd = SendTarget {
            edge: EdgeId::new(3),
            store: StoreId::new(0),
            routing_key: None,
        };
        for (key, rules) in plan.rules.iter_mut() {
            for rule in rules {
                if let Rule::Probe { outputs, .. } = rule {
                    if key.1 == EdgeId::new(2) {
                        outputs.push(OutputAction::Forward(fwd));
                    } else if key.1 == EdgeId::new(3) {
                        outputs.push(OutputAction::Forward(back));
                    }
                }
            }
        }
        let diags = verify_plan(&catalog, &plan);
        assert!(diags.iter().any(|d| d.code == "P010"), "{diags:?}");
    }

    #[test]
    fn partition_mismatch_is_p011() {
        let (catalog, mut plan) = mini();
        let sa = catalog.attr("S", "a").unwrap();
        let sb = catalog.attr("S", "b").unwrap();
        // Partition the S store by S.a across 2 workers but route the
        // stored copies by S.b, which is not join-equal to S.a.
        plan.stores[1].descriptor = StoreDescriptor::partitioned(
            RelationSet::singleton(catalog.relation_id("S").unwrap()),
            sa,
            2,
        );
        plan.ingest[1].targets[0].routing_key = Some(sb);
        let diags = verify_plan(&catalog, &plan);
        assert!(diags.iter().any(|d| d.code == "P011"), "{diags:?}");
        // Broadcast (no routing key) stays legal.
        plan.ingest[1].targets[0].routing_key = None;
        let diags = verify_plan(&catalog, &plan);
        assert!(!diags.iter().any(|d| d.code == "P011"), "{diags:?}");
    }

    #[test]
    fn unfed_mir_store_is_p008() {
        let (catalog, mut plan) = mini();
        let r = catalog.relation_id("R").unwrap();
        let s = catalog.relation_id("S").unwrap();
        let mut rs = RelationSet::singleton(r);
        rs.insert(s);
        let id = StoreId::new(2);
        plan.stores.push(StoreDef {
            id,
            descriptor: StoreDescriptor::unpartitioned(rs),
        });
        plan.rules.insert((id, EdgeId::new(10)), vec![Rule::Store]);
        let diags = verify_plan(&catalog, &plan);
        assert!(diags.iter().any(|d| d.code == "P008"), "{diags:?}");
    }

    #[test]
    fn empty_plan_is_clean() {
        let catalog = Catalog::new();
        let plan = TopologyPlan::default();
        assert!(verify_plan(&catalog, &plan).is_empty());
    }
}
