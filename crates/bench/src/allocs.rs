//! Counting global allocator for the allocation benchmarks.
//!
//! The hotpath bench's per-tuple speedups can hide allocator pressure
//! (an insert path that allocates per tuple still "wins" a timing race on
//! a quiet machine), so the ingest suite additionally reports
//! **allocations per ingested tuple**, measured by wrapping the system
//! allocator with a relaxed atomic counter. The counter is monotonic;
//! callers snapshot it around a workload ([`AllocSpan`]) and divide the
//! delta by the tuple count. Unlike timings, the count is deterministic
//! for a deterministic workload, which makes it assertable in CI even on
//! a noisy single-core runner.
//!
//! Registered as the `#[global_allocator]` of this crate's binaries and
//! tests (see `lib.rs`); the overhead is one relaxed fetch-add per
//! allocation, far below timer noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocation-counting wrapper around the system allocator.
pub struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

/// Total allocations (including reallocations) since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Snapshot-based measurement span: count allocations across a workload.
#[derive(Debug, Clone, Copy)]
pub struct AllocSpan {
    start: u64,
}

impl AllocSpan {
    /// Starts counting from the current total.
    pub fn start() -> Self {
        AllocSpan {
            start: allocations(),
        }
    }

    /// Allocations since [`AllocSpan::start`] on this process (all
    /// threads).
    pub fn elapsed(&self) -> u64 {
        allocations().saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_observes_allocations() {
        let span = AllocSpan::start();
        let mut v: Vec<Box<u64>> = Vec::new();
        for i in 0..64u64 {
            v.push(Box::new(i));
        }
        std::hint::black_box(&v);
        assert!(span.elapsed() >= 64, "boxed values must be counted");
    }
}
