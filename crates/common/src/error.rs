//! Error type shared across the CLASH crates.

use crate::diagnostic::Diagnostic;
use std::fmt;

/// Convenience result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, ClashError>;

/// Errors produced while modeling, optimizing or executing stream join
/// queries.
///
/// The enum is deliberately coarse: each variant corresponds to a layer of
/// the system (catalog, query, optimizer, solver, runtime) so that callers
/// can attribute a failure without the crates having to depend on each
/// other's internal error types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClashError {
    /// A relation, attribute or store was referenced but never registered.
    UnknownEntity(String),
    /// A query is malformed (e.g. disconnected join graph, unknown
    /// attribute, empty relation list).
    InvalidQuery(String),
    /// The optimizer could not produce a plan (e.g. no candidate probe
    /// orders, infeasible ILP).
    Optimization(String),
    /// The ILP solver failed (infeasible, unbounded, or iteration limit).
    Solver(String),
    /// A runtime component failed (channel closed, worker panicked, ...).
    Runtime(String),
    /// The engine has been shut down: ingestion endpoints (coordinator
    /// `ingest`, `SourceHandle::push`) refuse new tuples instead of
    /// silently dropping them.
    Shutdown,
    /// Configuration error (invalid window, epoch length of zero, ...).
    Config(String),
    /// A topology plan failed static verification: `install_plan` rejects
    /// it before quiescing, carrying the error-level diagnostics.
    InvalidPlan(Vec<Diagnostic>),
}

impl fmt::Display for ClashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClashError::UnknownEntity(s) => write!(f, "unknown entity: {s}"),
            ClashError::InvalidQuery(s) => write!(f, "invalid query: {s}"),
            ClashError::Optimization(s) => write!(f, "optimization failed: {s}"),
            ClashError::Solver(s) => write!(f, "solver error: {s}"),
            ClashError::Runtime(s) => write!(f, "runtime error: {s}"),
            ClashError::Shutdown => write!(f, "engine has been shut down"),
            ClashError::Config(s) => write!(f, "configuration error: {s}"),
            ClashError::InvalidPlan(diags) => {
                write!(f, "invalid plan ({} finding(s))", diags.len())?;
                for d in diags {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClashError {}

impl ClashError {
    /// Short helper for the most common construction pattern.
    pub fn invalid_query(msg: impl Into<String>) -> Self {
        ClashError::InvalidQuery(msg.into())
    }

    /// Short helper for unknown-entity errors.
    pub fn unknown(msg: impl Into<String>) -> Self {
        ClashError::UnknownEntity(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ClashError::InvalidQuery("no predicates".into());
        assert_eq!(e.to_string(), "invalid query: no predicates");
        let e = ClashError::Solver("infeasible".into());
        assert!(e.to_string().contains("infeasible"));
    }

    #[test]
    fn helpers_construct_expected_variants() {
        assert!(matches!(
            ClashError::invalid_query("x"),
            ClashError::InvalidQuery(_)
        ));
        assert!(matches!(
            ClashError::unknown("y"),
            ClashError::UnknownEntity(_)
        ));
    }

    #[test]
    fn shutdown_error_displays_without_payload() {
        assert_eq!(
            ClashError::Shutdown.to_string(),
            "engine has been shut down"
        );
    }

    #[test]
    fn invalid_plan_lists_diagnostics() {
        let e = ClashError::InvalidPlan(vec![Diagnostic::error("P001", "dangling store")]);
        let text = e.to_string();
        assert!(text.contains("invalid plan"));
        assert!(text.contains("P001"));
        assert!(text.contains("dangling store"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ClashError::Runtime("boom".into()));
    }
}
