//! Candidate partitioning attributes for (intermediate) relation stores.
//!
//! A store holding an MIR `r` can be partitioned by an attribute of `r`.
//! Partitioning only helps routing if *later probe steps can compute the
//! partition key*: the paper therefore restricts the candidates to
//! attributes of `r` that appear in a join predicate with a relation
//! **outside** of `r` (Section V). Any tuple that is routed to the
//! `r`-store necessarily evaluates such a predicate and hence knows the
//! attribute value; partitioning by any other attribute would force a full
//! broadcast for every probe.
//!
//! For the example query `R(a), S(a,b), T(b)` with the intermediate result
//! `(R,S)` materialized, `b` is a candidate (it joins with `T ∉ {R,S}`)
//! while `a` is not (its only join partner `R` is inside the MIR).

use crate::query::JoinQuery;
use clash_common::{AttrRef, RelationSet};

/// Candidate partitioning attributes of the store holding `store_relations`
/// with respect to a single query.
///
/// When the store covers the complete query there is no outside relation
/// left, so the result is empty — such a store is the query output and can
/// be partitioned arbitrarily (round-robin) without affecting probe cost.
pub fn partition_candidates(query: &JoinQuery, store_relations: &RelationSet) -> Vec<AttrRef> {
    let mut out = Vec::new();
    for p in &query.predicates {
        let l_in = store_relations.contains(p.left.relation);
        let r_in = store_relations.contains(p.right.relation);
        if l_in && !r_in {
            out.push(p.left);
        } else if r_in && !l_in {
            out.push(p.right);
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Candidate partitioning attributes of a store with respect to a whole
/// workload: the union of the per-query candidates of every query whose
/// relation set contains the store's relations.
pub fn partition_candidates_for_workload(
    queries: &[JoinQuery],
    store_relations: &RelationSet,
) -> Vec<AttrRef> {
    let mut out = Vec::new();
    for q in queries {
        if store_relations.is_subset(&q.relations) {
            out.extend(partition_candidates(q, store_relations));
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::EquiPredicate;
    use clash_common::{AttrId, QueryId, RelationId};

    fn attr(rel: u32, a: u32) -> AttrRef {
        AttrRef::new(RelationId::new(rel), AttrId::new(a))
    }

    fn rs(ids: &[u32]) -> RelationSet {
        ids.iter().map(|i| RelationId::new(*i)).collect()
    }

    /// R(a)=0, S(a,b)=1, T(b)=2 — attribute 0 of R joins attribute 0 of S,
    /// attribute 1 of S joins attribute 0 of T.
    fn linear3() -> JoinQuery {
        JoinQuery::new(
            QueryId::new(0),
            "q1",
            rs(&[0, 1, 2]),
            vec![
                EquiPredicate::new(attr(0, 0), attr(1, 0)),
                EquiPredicate::new(attr(1, 1), attr(2, 0)),
            ],
            None,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_rs_store_partitioned_by_b_not_a() {
        let q = linear3();
        let rs_store = rs(&[0, 1]);
        let candidates = partition_candidates(&q, &rs_store);
        // Only S.b (attr(1,1)) joins with the outside relation T.
        assert_eq!(candidates, vec![attr(1, 1)]);
    }

    #[test]
    fn base_relation_candidates() {
        let q = linear3();
        // S joins R via S.a and T via S.b: both are candidates.
        assert_eq!(
            partition_candidates(&q, &rs(&[1])),
            vec![attr(1, 0), attr(1, 1)]
        );
        // R only joins S via R.a.
        assert_eq!(partition_candidates(&q, &rs(&[0])), vec![attr(0, 0)]);
        // T only joins S via T.b.
        assert_eq!(partition_candidates(&q, &rs(&[2])), vec![attr(2, 0)]);
    }

    #[test]
    fn complete_query_store_has_no_candidates() {
        let q = linear3();
        assert!(partition_candidates(&q, &q.relations).is_empty());
    }

    #[test]
    fn workload_union_of_candidates() {
        // q1 = R(a),S(a,b),T(b); q2 = R(a),S(a,c),U(c) with S.c = attr(1,2).
        let q1 = linear3();
        let q2 = JoinQuery::new(
            QueryId::new(1),
            "q2",
            rs(&[0, 1, 3]),
            vec![
                EquiPredicate::new(attr(0, 0), attr(1, 0)),
                EquiPredicate::new(attr(1, 2), attr(3, 0)),
            ],
            None,
        )
        .unwrap();
        let queries = vec![q1, q2];
        // The S store serves both queries: candidates from q1 (S.a, S.b)
        // and q2 (S.a, S.c).
        let cands = partition_candidates_for_workload(&queries, &rs(&[1]));
        assert_eq!(cands, vec![attr(1, 0), attr(1, 1), attr(1, 2)]);
        // The RS store: q1 contributes S.b; q2 contributes S.c.
        let cands = partition_candidates_for_workload(&queries, &rs(&[0, 1]));
        assert_eq!(cands, vec![attr(1, 1), attr(1, 2)]);
        // A store not contained in a query contributes nothing from it.
        let cands = partition_candidates_for_workload(&queries[..1], &rs(&[0, 3]));
        assert!(cands.is_empty());
    }
}
