//! Offline stub of `criterion`.
//!
//! Implements the group / `bench_function` / `bench_with_input` / `iter`
//! surface the workspace benches use, with plain wall-clock timing and a
//! fixed iteration budget instead of criterion's statistical sampling.
//! Results print as `group/bench: mean per-iter time` lines.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing harness passed to the measured closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    last_mean_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up, then the timed iterations.
        std_black_box(routine());
        let started = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.last_mean_ns = started.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-bench iteration count (criterion's sample size knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            iters: self.sample_size,
            last_mean_ns: 0.0,
        };
        f(&mut bencher);
        let mean_ms = bencher.last_mean_ns / 1e6;
        println!("{}/{label}: {mean_ms:.3} ms/iter", self.name);
    }

    /// Benchmarks a closure under a string id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run_one(&id.to_string(), |b| f(b));
    }

    /// Benchmarks a closure parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run_one(&id.label, |b| f(b, input));
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// Declares a group-runner function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("g", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        // warm-up + 3 timed iterations.
        assert_eq!(calls, 4);
    }
}
