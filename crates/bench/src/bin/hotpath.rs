//! Hot-path microbenchmarks: seed flat representation vs. the zero-copy
//! rope tuple core and the reworked probe path, plus the Fig. 7 five-query
//! end-to-end throughput on the optimized engine and the multi-source
//! ingestion scenario (coordinator baseline vs. concurrent SourceHandle
//! producers). Writes the machine-readable report to `BENCH_hotpath.json`.
//!
//! Usage:
//!   cargo run --release -p clash-bench --bin hotpath [iters] [fig7_tuples] [out.json]
//!
//! Defaults: 300000 iterations, 30000-tuple Fig. 7 stream,
//! `BENCH_hotpath.json` in the current directory. CI runs a smoke pass
//! with small counts and only validates that the JSON is well-formed (the
//! single-core runner makes timing assertions meaningless there).

use clash_bench::hotpath::{report_to_json, run_hotpath, BEST_OF};

fn main() {
    let mut args = std::env::args().skip(1);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300_000);
    let fig7_tuples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30_000);
    let out_path = args.next().unwrap_or_else(|| "BENCH_hotpath.json".into());

    println!(
        "# Hot-path microbenchmarks — {iters} iterations, best of {BEST_OF}, \
         Fig. 7 stream of {fig7_tuples} tuples\n"
    );
    let report = run_hotpath(iters, fig7_tuples);

    println!(
        "{:<18} {:>22} {:>18} {:>18} {:>9}",
        "suite", "unit", "baseline[ops/s]", "optimized[ops/s]", "speedup"
    );
    for row in &report.micro {
        println!(
            "{:<18} {:>22} {:>18.0} {:>18.0} {:>8.2}x",
            row.name,
            row.unit,
            row.baseline_ops_per_sec,
            row.optimized_ops_per_sec,
            row.speedup()
        );
    }
    println!(
        "\n# Ingest allocation scenario ({} tuples, counting allocator)\n",
        report.allocs.tuples
    );
    println!(
        "allocs/tuple: baseline {:.2}, optimized {:.2} ({:.2}x fewer)",
        report.allocs.baseline_allocs_per_tuple,
        report.allocs.optimized_allocs_per_tuple,
        report.allocs.reduction()
    );
    println!("\n# Fig. 7 end-to-end (5 queries, optimized engine)\n");
    println!(
        "{:<12} {:>16} {:>12} {:>12} {:>10}",
        "strategy", "throughput[t/s]", "memory[MB]", "latency[ms]", "results"
    );
    for r in &report.fig7 {
        println!(
            "{:<12} {:>16.0} {:>12.2} {:>12.3} {:>10}",
            r.strategy, r.throughput_tps, r.memory_mb, r.latency_ms, r.results
        );
    }
    println!("\n# Multi-source ingestion (2 queries, parallel engine, 4 workers)\n");
    println!(
        "{:<14} {:>8} {:>8} {:>16} {:>10} {:>13}",
        "mode", "sources", "threads", "wall_tps[t/s]", "results", "busy_balance"
    );
    for r in &report.multi_source {
        println!(
            "{:<14} {:>8} {:>8} {:>16.0} {:>10} {:>13.3}",
            r.mode, r.sources, r.producer_threads, r.wall_tps, r.results, r.busy_balance
        );
    }
    println!("\n# Reconfiguration under load (quiesced installs, 2 sources)\n");
    println!(
        "{:<16} {:>10} {:>16} {:>10}",
        "installs_every", "installs", "wall_tps[t/s]", "results"
    );
    for r in &report.reconfig {
        println!(
            "{:<16} {:>10} {:>16.0} {:>10}",
            r.installs_every, r.installs, r.wall_tps, r.results
        );
    }

    let json = report_to_json(&report);
    std::fs::write(&out_path, &json).expect("write report");
    println!("\nwrote {out_path}");
}
