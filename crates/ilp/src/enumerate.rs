//! Brute-force enumeration for tiny models.
//!
//! Used by the test-suite (including the randomized property tests) to
//! certify that the branch-and-bound solver returns optimal solutions.

use crate::model::{Assignment, Model};

/// Maximum number of variables accepted by [`enumerate_optimal`]: 2^22
/// assignments is the largest space that still enumerates in well under a
/// second in release mode and a few seconds in debug mode.
pub const MAX_ENUMERATION_VARS: usize = 22;

/// Finds the optimal assignment of a small model by enumerating every 0/1
/// assignment. Returns `None` when the model is infeasible.
///
/// # Panics
/// Panics when the model has more than [`MAX_ENUMERATION_VARS`] variables.
pub fn enumerate_optimal(model: &Model) -> Option<(Assignment, f64)> {
    let n = model.num_vars();
    assert!(
        n <= MAX_ENUMERATION_VARS,
        "enumerate_optimal is limited to {MAX_ENUMERATION_VARS} variables, got {n}"
    );
    let mut best: Option<(Assignment, f64)> = None;
    for mask in 0u64..(1u64 << n) {
        let assignment = Assignment::from_values((0..n).map(|i| (mask >> i) & 1 == 1).collect());
        if !model.is_feasible(&assignment, 1e-9) {
            continue;
        }
        let objective = model.objective_value(&assignment);
        if best
            .as_ref()
            .map(|(_, b)| objective < *b - 1e-12)
            .unwrap_or(true)
        {
            best = Some((assignment, objective));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Sense, VarId};
    use crate::solver::{solve, SolveStatus, SolverConfig};

    #[test]
    fn enumeration_matches_hand_computed_optimum() {
        let mut m = Model::new();
        let a = m.add_binary("a", 2.0);
        let b = m.add_binary("b", 3.0);
        let c = m.add_binary("c", 1.0);
        m.add_choose_one("ab", [a, b]);
        m.add_implies_any("a_implies_c", a, [c]);
        let (assignment, objective) = enumerate_optimal(&m).unwrap();
        // a+c = 3 equals b = 3; enumeration prefers the first found, but the
        // value must be 3 either way.
        assert!((objective - 3.0).abs() < 1e-12);
        assert!(m.is_feasible(&assignment, 1e-9));
    }

    #[test]
    fn infeasible_model_returns_none() {
        let mut m = Model::new();
        let a = m.add_binary("a", 1.0);
        m.add_constraint("impossible", LinExpr::sum([a]), Sense::Ge, 2.0);
        assert!(enumerate_optimal(&m).is_none());
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn oversized_model_panics() {
        let mut m = Model::new();
        for i in 0..(MAX_ENUMERATION_VARS + 1) {
            m.add_binary(format!("x{i}"), 1.0);
        }
        let _ = enumerate_optimal(&m);
    }

    /// Randomized cross-check: branch-and-bound equals brute force on random
    /// selection-with-sharing models.
    #[test]
    fn branch_and_bound_matches_enumeration_on_random_models() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC1A5);
        for trial in 0..30 {
            let mut m = Model::new();
            let n_steps = rng.gen_range(2..5);
            let steps: Vec<VarId> = (0..n_steps)
                .map(|i| m.add_binary(format!("y{i}"), rng.gen_range(1..20) as f64))
                .collect();
            let n_groups = rng.gen_range(1..4);
            for g in 0..n_groups {
                let n_alts = rng.gen_range(1..4);
                let mut alts = Vec::new();
                for a in 0..n_alts {
                    let x = m.add_binary(format!("x{g}_{a}"), 0.0);
                    // Each alternative requires a random non-empty subset of steps.
                    let mut expr = LinExpr::new();
                    let mut total = 0.0;
                    for &s in &steps {
                        if rng.gen_bool(0.5) {
                            let c = m.objective_coeff(s);
                            expr.add(s, c);
                            total += c;
                        }
                    }
                    if total == 0.0 {
                        expr.add(steps[0], m.objective_coeff(steps[0]));
                        total = m.objective_coeff(steps[0]);
                    }
                    expr.add(x, -total);
                    m.add_constraint(format!("cost{g}_{a}"), expr, Sense::Ge, 0.0);
                    alts.push(x);
                }
                m.add_choose_one(format!("choice{g}"), alts);
            }
            let brute = enumerate_optimal(&m);
            let solved = solve(&m, SolverConfig::default());
            match brute {
                Some((_, expected)) => {
                    assert_eq!(solved.status, SolveStatus::Optimal, "trial {trial}");
                    assert!(
                        (solved.objective - expected).abs() < 1e-6,
                        "trial {trial}: bb {} vs brute {expected}",
                        solved.objective
                    );
                }
                None => assert_eq!(solved.status, SolveStatus::Infeasible, "trial {trial}"),
            }
        }
    }
}
