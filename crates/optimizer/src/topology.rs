//! Probe trees and deployable topology plans (Section V-B).
//!
//! The probe orders selected by the optimizer are merged into *probe
//! trees*: probe orders with the same starting relation and a common
//! prefix share that prefix (Fig. 4 of the paper). Every distinct tree
//! node becomes a rule registered at a store, keyed by the label of its
//! incoming edge:
//!
//! * `if a tuple arrives from edge e, probe with predicate P and send the
//!   results (if any) to E_out` — [`Rule::Probe`],
//! * `if a tuple arrives from edge e, add it to the local store` —
//!   [`Rule::Store`].
//!
//! The resulting [`TopologyPlan`] is what the `clash-runtime` crate
//! instantiates: one worker per store partition, channels for the edges,
//! and the rule set table per store.

use crate::candidate::DecoratedProbeOrder;
use crate::ilp_builder::Selection;
use crate::store::StoreDescriptor;
use clash_common::{
    AttrRef, ClashError, Diagnostic, EdgeId, QueryId, RelationId, RelationSet, Result, StoreId,
};
use clash_query::{EquiPredicate, JoinQuery};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A store instantiated by the plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreDef {
    /// Dense store identifier within the plan.
    pub id: StoreId,
    /// What the store holds and how it is partitioned.
    pub descriptor: StoreDescriptor,
}

/// Where to send a tuple (or join result) next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SendTarget {
    /// Edge label the tuple travels on; the receiving store looks up its
    /// rule set under this label.
    pub edge: EdgeId,
    /// The receiving store.
    pub store: StoreId,
    /// Attribute of the *sent* tuple whose hash selects the receiving
    /// partition; `None` broadcasts to every partition of the store.
    pub routing_key: Option<AttrRef>,
}

/// Action taken with the results of a probe (or with an arriving tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputAction {
    /// Forward to another store for further probing or storing.
    Forward(SendTarget),
    /// The tuple is a complete join result of the given query.
    Emit {
        /// Query the result belongs to.
        query: QueryId,
    },
}

/// A rule registered at a store for one incoming edge label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Rule {
    /// Add the arriving tuple to the local store partition.
    Store,
    /// Probe the local store with the arriving tuple.
    Probe {
        /// Join predicates between the arriving tuple and the stored
        /// relation(s).
        predicates: Vec<EquiPredicate>,
        /// What to do with every join result.
        outputs: Vec<OutputAction>,
    },
}

/// Routing of freshly ingested input tuples of one relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestRoute {
    /// The input relation.
    pub relation: RelationId,
    /// All targets the arriving tuple is sent to: its own store copies
    /// (store rules) and the roots of its probe trees (probe rules).
    pub targets: Vec<SendTarget>,
}

/// A deployable topology: stores, rule sets and ingest routing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TopologyPlan {
    /// All stores.
    pub stores: Vec<StoreDef>,
    /// Rule sets, keyed by `(store, incoming edge)`.
    pub rules: HashMap<(StoreId, EdgeId), Vec<Rule>>,
    /// Ingest routing per input relation.
    pub ingest: Vec<IngestRoute>,
    /// Queries answered by this plan.
    pub queries: Vec<QueryId>,
    /// Total estimated probe cost of the plan (each shared step counted
    /// once).
    pub estimated_cost: f64,
}

impl TopologyPlan {
    /// Looks up a store definition.
    pub fn store(&self, id: StoreId) -> Option<&StoreDef> {
        self.stores.get(id.index())
    }

    /// Number of stores.
    pub fn num_stores(&self) -> usize {
        self.stores.len()
    }

    /// Number of worker tasks (sum of store parallelisms).
    pub fn num_workers(&self) -> usize {
        self.stores.iter().map(|s| s.descriptor.parallelism).sum()
    }

    /// Number of registered rules.
    pub fn num_rules(&self) -> usize {
        self.rules.values().map(|r| r.len()).sum()
    }

    /// Ingest routing of a relation (empty when the relation feeds no
    /// store).
    pub fn ingest_for(&self, relation: RelationId) -> &[SendTarget] {
        self.ingest
            .iter()
            .find(|i| i.relation == relation)
            .map(|i| i.targets.as_slice())
            .unwrap_or(&[])
    }
}

/// Builds [`TopologyPlan`]s from optimizer selections.
#[derive(Debug)]
pub struct TopologyBuilder<'a> {
    queries: &'a [JoinQuery],
    /// When `false` (Independent baseline) every store is duplicated per
    /// query and nothing is shared.
    share_stores: bool,
}

#[derive(Debug)]
struct PlanState {
    stores: Vec<StoreDef>,
    store_index: HashMap<String, StoreId>,
    rules: HashMap<(StoreId, EdgeId), Vec<Rule>>,
    ingest: HashMap<RelationId, Vec<SendTarget>>,
    next_edge: u32,
}

impl PlanState {
    fn new() -> Self {
        PlanState {
            stores: Vec::new(),
            store_index: HashMap::new(),
            rules: HashMap::new(),
            ingest: HashMap::new(),
            next_edge: 0,
        }
    }

    fn fresh_edge(&mut self) -> EdgeId {
        let e = EdgeId::new(self.next_edge);
        self.next_edge += 1;
        e
    }

    fn intern_store(&mut self, descriptor: StoreDescriptor) -> StoreId {
        let key = descriptor.key();
        if let Some(id) = self.store_index.get(&key) {
            return *id;
        }
        let id = StoreId::from(self.stores.len());
        self.stores.push(StoreDef { id, descriptor });
        self.store_index.insert(key, id);
        id
    }

    fn add_rule(&mut self, store: StoreId, edge: EdgeId, rule: Rule) {
        self.rules.entry((store, edge)).or_default().push(rule);
    }
}

impl<'a> TopologyBuilder<'a> {
    /// Creates a builder for a workload. `share_stores = false` reproduces
    /// the Independent baseline (per-query copies of all state).
    pub fn new(queries: &'a [JoinQuery], share_stores: bool) -> Self {
        TopologyBuilder {
            queries,
            share_stores,
        }
    }

    fn query(&self, id: QueryId) -> Result<&JoinQuery> {
        self.queries.iter().find(|q| q.id == id).ok_or_else(|| {
            ClashError::InvalidPlan(vec![Diagnostic::error(
                "P020",
                format!("selection references {id}, which is not in the workload"),
            )
            .for_query(id)])
        })
    }

    /// Attribute of the sending tuple (covering `head`) that determines the
    /// partition of the target store, if the partitioning key can be
    /// computed (otherwise broadcast).
    fn routing_key(
        query: &JoinQuery,
        head: &RelationSet,
        target: &StoreDescriptor,
    ) -> Option<AttrRef> {
        let partition = target.partition?;
        if head.contains(partition.relation) {
            // The sending tuple literally carries the partition attribute
            // (it is an intermediate result containing that relation).
            return Some(partition);
        }
        query.predicates.iter().find_map(|p| {
            if p.left == partition && head.contains(p.right.relation) {
                Some(p.right)
            } else if p.right == partition && head.contains(p.left.relation) {
                Some(p.left)
            } else {
                None
            }
        })
    }

    /// Registers the probe chain of one decorated probe order, reusing the
    /// prefix nodes already created by other orders (`trie`). Returns the
    /// first-step send target so the caller can wire up ingestion.
    #[allow(clippy::too_many_arguments)]
    fn add_order(
        &self,
        state: &mut PlanState,
        trie: &mut HashMap<String, (StoreId, EdgeId)>,
        order: &DecoratedProbeOrder,
        owner: Option<QueryId>,
        terminal: Vec<OutputAction>,
    ) -> Result<Option<SendTarget>> {
        let query = self
            .query(if order.query.0 >= u32::MAX - 1024 {
                // Sub-query orders reference synthetic ids; their predicates are
                // a subset of the owning query's, which is the one that spawned
                // them. Any workload query containing the covered relations with
                // the same predicates works for rule construction.
                self.queries
                    .iter()
                    .find(|q| order.covered().is_subset(&q.relations))
                    .map(|q| q.id)
                    .unwrap_or(order.query)
            } else {
                order.query
            })?
            .id;
        let query = self.query(query)?;

        let mut first_target = None;
        let mut head = RelationSet::singleton(order.order.start);
        let mut previous: Option<(StoreId, EdgeId, usize)> = None; // (store, edge, step idx)

        for (j, store_desc) in order.stores.iter().enumerate() {
            let mut descriptor = *store_desc;
            if let Some(q) = owner {
                descriptor = descriptor.owned_by(q);
            }
            let trie_key = format!(
                "{}|{}|{}",
                owner.map(|q| q.0 as i64).unwrap_or(-1),
                order.step_keys[j].0,
                descriptor.key()
            );
            let store_id;
            let edge;
            let is_new = !trie.contains_key(&trie_key);
            if is_new {
                store_id = state.intern_store(descriptor);
                edge = state.fresh_edge();
                trie.insert(trie_key.clone(), (store_id, edge));
                let predicates = query.predicates_between(&head, &store_desc.relations);
                state.add_rule(
                    store_id,
                    edge,
                    Rule::Probe {
                        predicates,
                        outputs: Vec::new(),
                    },
                );
            } else {
                let (s, e) = trie[&trie_key];
                store_id = s;
                edge = e;
            }

            let target = SendTarget {
                edge,
                store: store_id,
                routing_key: Self::routing_key(query, &head, store_desc),
            };
            if j == 0 {
                first_target = Some(target);
            } else if let Some((prev_store, prev_edge, _)) = previous {
                // Append a Forward output to the previous node's probe rule
                // (deduplicated).
                if let Some(rules) = state.rules.get_mut(&(prev_store, prev_edge)) {
                    for rule in rules.iter_mut() {
                        if let Rule::Probe { outputs, .. } = rule {
                            if !outputs.contains(&OutputAction::Forward(target)) {
                                outputs.push(OutputAction::Forward(target));
                            }
                        }
                    }
                }
            }

            head = head.union(&store_desc.relations);
            previous = Some((store_id, edge, j));
        }

        // Terminal actions at the last node (emit results / feed MIR store).
        if let Some((store, edge, _)) = previous {
            if let Some(rules) = state.rules.get_mut(&(store, edge)) {
                for rule in rules.iter_mut() {
                    if let Rule::Probe { outputs, .. } = rule {
                        for action in &terminal {
                            if !outputs.contains(action) {
                                outputs.push(*action);
                            }
                        }
                    }
                }
            }
        }
        Ok(first_target)
    }

    /// Builds a topology plan from a selection of probe orders.
    ///
    /// Fails with [`ClashError::InvalidPlan`] when the selection is
    /// inconsistent with the workload (diagnostics `P020`/`P021`); the
    /// full semantic verification of the *built* plan lives in the
    /// `clash-analyzer` crate, which this crate cannot depend on.
    pub fn build(&self, selection: &Selection) -> Result<TopologyPlan> {
        let mut state = PlanState::new();
        let mut trie: HashMap<String, (StoreId, EdgeId)> = HashMap::new();

        // 1. Materialize base stores referenced by any chosen probe order,
        //    plus the stores for the starting relations themselves (they
        //    are probed by the probe orders of the other relations, which
        //    guarantees they appear as steps; interning here is idempotent).
        //    MIR stores referenced as steps are interned too, with a
        //    dedicated "store edge" that sub-query orders feed.
        let mut mir_store_edges: HashMap<String, (StoreId, EdgeId)> = HashMap::new();
        let mut base_store_edges: HashMap<String, (StoreId, EdgeId)> = HashMap::new();
        for order in selection.all_orders() {
            let owner = if self.share_stores {
                None
            } else if order.query.0 < u32::MAX - 1024 {
                Some(order.query)
            } else {
                None
            };
            for store_desc in &order.stores {
                let mut descriptor = *store_desc;
                if let Some(q) = owner {
                    descriptor = descriptor.owned_by(q);
                }
                let key = descriptor.key();
                let store_id = state.intern_store(descriptor);
                if store_desc.is_base() {
                    base_store_edges.entry(key).or_insert_with(|| {
                        let edge = state.fresh_edge();
                        state.add_rule(store_id, edge, Rule::Store);
                        (store_id, edge)
                    });
                } else {
                    mir_store_edges.entry(key).or_insert_with(|| {
                        let edge = state.fresh_edge();
                        state.add_rule(store_id, edge, Rule::Store);
                        (store_id, edge)
                    });
                }
            }
        }

        // 2. Probe chains for the query probe orders (terminal: emit).
        for order in &selection.query_orders {
            let owner = if self.share_stores {
                None
            } else {
                Some(order.query)
            };
            let terminal = vec![OutputAction::Emit { query: order.query }];
            if order.order.is_empty() {
                // Single-relation query: every arriving tuple is a result.
                continue;
            }
            if let Some(first) = self.add_order(&mut state, &mut trie, order, owner, terminal)? {
                state
                    .ingest
                    .entry(order.order.start)
                    .or_default()
                    .push(first);
            }
        }

        // 3. Probe chains for the sub-query (MIR maintenance) orders
        //    (terminal: store the result into every matching MIR store).
        for order in &selection.subquery_orders {
            let covered = order.covered();
            let terminal: Vec<OutputAction> = mir_store_edges
                .values()
                .filter(|(store_id, _)| {
                    state.stores[store_id.index()].descriptor.relations == covered
                })
                .map(|(store_id, edge)| {
                    let descriptor = state.stores[store_id.index()].descriptor;
                    OutputAction::Forward(SendTarget {
                        edge: *edge,
                        store: *store_id,
                        routing_key: descriptor.partition,
                    })
                })
                .collect();
            if terminal.is_empty() {
                continue;
            }
            if let Some(first) = self.add_order(&mut state, &mut trie, order, None, terminal)? {
                state
                    .ingest
                    .entry(order.order.start)
                    .or_default()
                    .push(first);
            }
        }

        // 4. Ingestion into the base stores themselves (store rules).
        for (store_id, edge) in base_store_edges.values() {
            let descriptor = state.stores[store_id.index()].descriptor;
            let relation = descriptor.relations.as_singleton().ok_or_else(|| {
                ClashError::InvalidPlan(vec![Diagnostic::error(
                    "P021",
                    format!(
                        "base store {store_id} covers {} relations instead of one",
                        descriptor.relations.len()
                    ),
                )
                .at_store(*store_id)])
            })?;
            state.ingest.entry(relation).or_default().push(SendTarget {
                edge: *edge,
                store: *store_id,
                routing_key: descriptor.partition,
            });
        }

        let mut ingest: Vec<IngestRoute> = state
            .ingest
            .into_iter()
            .map(|(relation, mut targets)| {
                targets.sort_by_key(|t| (t.store.0, t.edge.0));
                targets.dedup();
                IngestRoute { relation, targets }
            })
            .collect();
        ingest.sort_by_key(|i| i.relation.0);

        let mut queries: Vec<QueryId> = self.queries.iter().map(|q| q.id).collect();
        queries.sort();
        queries.dedup();

        let plan = TopologyPlan {
            stores: state.stores,
            rules: state.rules,
            ingest,
            queries,
            estimated_cost: selection.shared_cost,
        };

        // Debug-build self-check of the structural invariants the runtime
        // relies on. The full semantic analysis (schema checks, partition
        // safety, completeness) runs in `clash-analyzer` at install time.
        #[cfg(debug_assertions)]
        {
            for (i, def) in plan.stores.iter().enumerate() {
                debug_assert_eq!(def.id.index(), i, "store table must be dense");
            }
            for route in &plan.ingest {
                for t in &route.targets {
                    debug_assert!(
                        plan.store(t.store).is_some(),
                        "ingest target {}/{} dangles",
                        t.store,
                        t.edge
                    );
                    debug_assert!(
                        plan.rules.contains_key(&(t.store, t.edge)),
                        "ingest target {}/{} has no rule set",
                        t.store,
                        t.edge
                    );
                }
            }
        }

        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{enumerate_candidates, PlanSpaceConfig};
    use crate::ilp_builder::{build_ilp, extract_selection};
    use clash_catalog::{Catalog, Statistics};
    use clash_common::Window;
    use clash_ilp::{solve, SolverConfig};
    use clash_query::parse_query;

    fn setup() -> (Catalog, Statistics, Vec<JoinQuery>) {
        let mut catalog = Catalog::new();
        catalog
            .register("R", ["a"], Window::unbounded(), 1)
            .unwrap();
        catalog
            .register("S", ["a", "b"], Window::unbounded(), 2)
            .unwrap();
        catalog
            .register("T", ["b", "c"], Window::unbounded(), 2)
            .unwrap();
        catalog
            .register("U", ["c"], Window::unbounded(), 1)
            .unwrap();
        let mut stats = Statistics::new();
        for m in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            stats.set_rate(m, 100.0);
        }
        stats.default_selectivity = 0.01;
        let q1 = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b,c), U(c)").unwrap();
        (catalog, stats, vec![q1, q2])
    }

    fn optimal_selection(
        catalog: &Catalog,
        stats: &Statistics,
        queries: &[JoinQuery],
        config: &PlanSpaceConfig,
    ) -> (Selection, crate::candidate::CandidateSet) {
        let cands = enumerate_candidates(catalog, stats, queries, config);
        let artifacts = build_ilp(&cands);
        let solution = solve(&artifacts.model, SolverConfig::default());
        let selection =
            extract_selection(&cands, &artifacts, solution.assignment.as_ref().unwrap()).unwrap();
        (selection, cands)
    }

    #[test]
    fn shared_plan_has_one_store_per_base_relation_variant() {
        let (catalog, stats, queries) = setup();
        let (selection, _) = optimal_selection(
            &catalog,
            &stats,
            &queries,
            &PlanSpaceConfig {
                materialize_intermediates: false,
                ..PlanSpaceConfig::default()
            },
        );
        let plan = TopologyBuilder::new(&queries, true)
            .build(&selection)
            .unwrap();
        // Every store is a base store; every query relation appears.
        assert!(plan.stores.iter().all(|s| s.descriptor.is_base()));
        for q in &queries {
            for r in q.relations.iter() {
                assert!(
                    plan.stores
                        .iter()
                        .any(|s| s.descriptor.relations == RelationSet::singleton(r)),
                    "missing store for {r}"
                );
            }
        }
        // Ingestion exists for every input relation and includes a Store rule target.
        for q in &queries {
            for r in q.relations.iter() {
                let targets = plan.ingest_for(r);
                assert!(!targets.is_empty());
                let has_store_rule = targets.iter().any(|t| {
                    plan.rules
                        .get(&(t.store, t.edge))
                        .map(|rules| rules.iter().any(|r| matches!(r, Rule::Store)))
                        .unwrap_or(false)
                });
                assert!(has_store_rule, "relation {r} is never stored");
            }
        }
        assert!(plan.estimated_cost > 0.0);
        assert!(plan.num_rules() > 0);
        assert_eq!(plan.queries.len(), 2);
    }

    #[test]
    fn independent_plan_duplicates_stores_per_query() {
        let (catalog, stats, queries) = setup();
        let config = PlanSpaceConfig {
            materialize_intermediates: false,
            ..PlanSpaceConfig::default()
        };
        let (selection, _) = optimal_selection(&catalog, &stats, &queries, &config);
        let shared = TopologyBuilder::new(&queries, true)
            .build(&selection)
            .unwrap();
        let independent = TopologyBuilder::new(&queries, false)
            .build(&selection)
            .unwrap();
        // Both queries touch S and T, so the independent plan must hold
        // more stores than the shared plan.
        assert!(independent.num_stores() > shared.num_stores());
        // Every independent store is owned by a query.
        assert!(independent
            .stores
            .iter()
            .all(|s| s.descriptor.owner.is_some()));
        assert!(shared.stores.iter().all(|s| s.descriptor.owner.is_none()));
    }

    #[test]
    fn probe_rules_terminate_in_emit_actions() {
        let (catalog, stats, queries) = setup();
        let config = PlanSpaceConfig {
            materialize_intermediates: false,
            ..PlanSpaceConfig::default()
        };
        let (selection, _) = optimal_selection(&catalog, &stats, &queries, &config);
        let plan = TopologyBuilder::new(&queries, true)
            .build(&selection)
            .unwrap();
        // Each query must have at least one Emit action per starting
        // relation (every probe order ends in one).
        let mut emit_count: HashMap<QueryId, usize> = HashMap::new();
        for rules in plan.rules.values() {
            for rule in rules {
                if let Rule::Probe { outputs, .. } = rule {
                    for o in outputs {
                        if let OutputAction::Emit { query } = o {
                            *emit_count.entry(*query).or_default() += 1;
                        }
                    }
                }
            }
        }
        for q in &queries {
            assert!(
                emit_count.get(&q.id).copied().unwrap_or(0) >= 1,
                "query {} never emits",
                q.name
            );
        }
        // Probe rules carry non-empty predicate lists (equi joins only).
        for rules in plan.rules.values() {
            for rule in rules {
                if let Rule::Probe { predicates, .. } = rule {
                    assert!(!predicates.is_empty());
                }
            }
        }
    }

    #[test]
    fn partitioned_targets_have_routing_keys_when_derivable() {
        let (catalog, stats, queries) = setup();
        let (selection, _) =
            optimal_selection(&catalog, &stats, &queries, &PlanSpaceConfig::default());
        let plan = TopologyBuilder::new(&queries, true)
            .build(&selection)
            .unwrap();
        for route in &plan.ingest {
            for t in &route.targets {
                let store = plan.store(t.store).unwrap();
                if let Some(partition) = store.descriptor.partition {
                    // Ingested base tuples destined for their own store must
                    // route by the partition attribute itself.
                    if store.descriptor.relations == RelationSet::singleton(route.relation) {
                        assert_eq!(t.routing_key, Some(partition));
                    }
                }
            }
        }
    }

    #[test]
    fn mir_stores_are_fed_by_maintenance_orders() {
        let (catalog, stats, queries) = setup();
        let (selection, _) =
            optimal_selection(&catalog, &stats, &queries, &PlanSpaceConfig::default());
        let plan = TopologyBuilder::new(&queries, true)
            .build(&selection)
            .unwrap();
        let mir_stores: Vec<&StoreDef> = plan
            .stores
            .iter()
            .filter(|s| !s.descriptor.is_base())
            .collect();
        // If the optimizer decided to materialize an intermediate result,
        // there must be a Forward action into its store edge somewhere.
        for store in mir_stores {
            let store_edges: Vec<EdgeId> = plan
                .rules
                .iter()
                .filter(|((sid, _), rules)| {
                    *sid == store.id && rules.iter().any(|r| matches!(r, Rule::Store))
                })
                .map(|((_, e), _)| *e)
                .collect();
            assert!(!store_edges.is_empty());
            let fed = plan.rules.values().flatten().any(|r| {
                if let Rule::Probe { outputs, .. } = r {
                    outputs.iter().any(|o| {
                        matches!(o, OutputAction::Forward(t) if t.store == store.id && store_edges.contains(&t.edge))
                    })
                } else {
                    false
                }
            });
            assert!(fed, "MIR store {} is never fed", store.descriptor);
        }
    }
}
