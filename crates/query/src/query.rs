//! Continuous multi-way equi-join queries.

use crate::graph::QueryGraph;
use crate::predicate::EquiPredicate;
use clash_catalog::Catalog;
use clash_common::{ClashError, QueryId, RelationSet, Result, Window};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A continuous multi-way windowed equi-join query `q_i(S_1, ..., S_n)`.
///
/// A query is defined by the set of streamed relations it joins and a list
/// of equi-join predicates. The join graph induced by the predicates must
/// be connected — the paper explicitly excludes cross products from the
/// plan space (Section V), and [`JoinQuery::validate`] enforces it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinQuery {
    /// Identifier of the query, unique within a deployment.
    pub id: QueryId,
    /// Human readable name, e.g. `"q1"`.
    pub name: String,
    /// The joined relations.
    pub relations: RelationSet,
    /// The equi-join predicates (deduplicated, sorted).
    pub predicates: Vec<EquiPredicate>,
    /// Optional per-query window override; when `None`, the per-relation
    /// windows of the catalog apply.
    pub window: Option<Window>,
}

impl JoinQuery {
    /// Creates a query and validates it.
    pub fn new(
        id: QueryId,
        name: impl Into<String>,
        relations: RelationSet,
        mut predicates: Vec<EquiPredicate>,
        window: Option<Window>,
    ) -> Result<Self> {
        predicates.sort();
        predicates.dedup();
        let q = JoinQuery {
            id,
            name: name.into(),
            relations,
            predicates,
            window,
        };
        q.validate()?;
        Ok(q)
    }

    /// Number of joined relations.
    pub fn size(&self) -> usize {
        self.relations.len()
    }

    /// Builds the join graph of this query.
    pub fn graph(&self) -> QueryGraph {
        QueryGraph::new(self.relations, &self.predicates)
    }

    /// All predicates that connect the two disjoint relation sets.
    pub fn predicates_between(&self, a: &RelationSet, b: &RelationSet) -> Vec<EquiPredicate> {
        self.predicates
            .iter()
            .filter(|p| p.connects(a, b))
            .copied()
            .collect()
    }

    /// All predicates fully contained in the given relation subset (the
    /// predicate set of a sub-query / MIR).
    pub fn predicates_within(&self, set: &RelationSet) -> Vec<EquiPredicate> {
        self.predicates
            .iter()
            .filter(|p| p.within(set))
            .copied()
            .collect()
    }

    /// The sub-query induced on a subset of this query's relations. Used to
    /// generate probe orders that *compute* a materializable intermediate
    /// result. The subset must be connected.
    pub fn subquery(&self, relations: RelationSet, id: QueryId) -> Result<JoinQuery> {
        if !relations.is_subset(&self.relations) {
            return Err(ClashError::invalid_query(format!(
                "{relations} is not a subset of query {}",
                self.name
            )));
        }
        JoinQuery::new(
            id,
            format!("{}[{relations}]", self.name),
            relations,
            self.predicates_within(&relations),
            self.window,
        )
    }

    /// Checks structural invariants: at least one relation, every predicate
    /// endpoint inside the relation set, and a connected join graph (for
    /// queries with more than one relation).
    pub fn validate(&self) -> Result<()> {
        if self.relations.is_empty() {
            return Err(ClashError::invalid_query("query has no relations"));
        }
        for p in &self.predicates {
            if !self.relations.contains(p.left.relation)
                || !self.relations.contains(p.right.relation)
            {
                return Err(ClashError::invalid_query(format!(
                    "predicate {p} references a relation outside the query"
                )));
            }
        }
        if self.relations.len() > 1 {
            let graph = self.graph();
            if !graph.is_connected(&self.relations) {
                return Err(ClashError::invalid_query(format!(
                    "join graph of {} is not connected (cross products are not supported)",
                    self.name
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for JoinQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "): ")?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Fluent builder that resolves relation and attribute names through a
/// [`Catalog`].
///
/// ```
/// use clash_catalog::Catalog;
/// use clash_common::{QueryId, Window};
/// use clash_query::QueryBuilder;
///
/// let mut catalog = Catalog::new();
/// catalog.register("R", ["a"], Window::secs(5), 1).unwrap();
/// catalog.register("S", ["a", "b"], Window::secs(5), 1).unwrap();
/// catalog.register("T", ["b"], Window::secs(5), 1).unwrap();
///
/// let q = QueryBuilder::new(QueryId::new(0), "q1", &catalog)
///     .join("R", "a", "S", "a")
///     .unwrap()
///     .join("S", "b", "T", "b")
///     .unwrap()
///     .build()
///     .unwrap();
/// assert_eq!(q.size(), 3);
/// ```
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    id: QueryId,
    name: String,
    catalog: &'a Catalog,
    relations: RelationSet,
    predicates: Vec<EquiPredicate>,
    window: Option<Window>,
}

impl<'a> QueryBuilder<'a> {
    /// Starts building a query.
    pub fn new(id: QueryId, name: impl Into<String>, catalog: &'a Catalog) -> Self {
        QueryBuilder {
            id,
            name: name.into(),
            catalog,
            relations: RelationSet::new(),
            predicates: Vec::new(),
            window: None,
        }
    }

    /// Adds a relation without a predicate (only useful for single-relation
    /// queries or before adding predicates referencing it).
    pub fn relation(mut self, name: &str) -> Result<Self> {
        let id = self
            .catalog
            .relation_id(name)
            .ok_or_else(|| ClashError::unknown(format!("relation '{name}'")))?;
        self.relations.insert(id);
        Ok(self)
    }

    /// Adds an equi-join predicate `left_rel.left_attr = right_rel.right_attr`
    /// and both relations to the query.
    pub fn join(
        mut self,
        left_rel: &str,
        left_attr: &str,
        right_rel: &str,
        right_attr: &str,
    ) -> Result<Self> {
        let l = self.catalog.attr(left_rel, left_attr)?;
        let r = self.catalog.attr(right_rel, right_attr)?;
        self.relations.insert(l.relation);
        self.relations.insert(r.relation);
        self.predicates.push(EquiPredicate::new(l, r));
        Ok(self)
    }

    /// Sets a per-query window override.
    pub fn window(mut self, window: Window) -> Self {
        self.window = Some(window);
        self
    }

    /// Finishes and validates the query.
    pub fn build(self) -> Result<JoinQuery> {
        JoinQuery::new(
            self.id,
            self.name,
            self.relations,
            self.predicates,
            self.window,
        )
    }
}

/// Helper to expose a relation id used in unit tests across this crate.
#[cfg(test)]
pub(crate) fn rid(i: u32) -> clash_common::RelationId {
    clash_common::RelationId::new(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::AttrId;
    use clash_common::AttrRef;

    fn attr(rel: u32, a: u32) -> AttrRef {
        AttrRef::new(rid(rel), AttrId::new(a))
    }

    /// R(a) ⋈ S(a,b) ⋈ T(b): the paper's running example.
    pub(crate) fn linear3() -> JoinQuery {
        let relations = RelationSet::from_iter([rid(0), rid(1), rid(2)]);
        JoinQuery::new(
            QueryId::new(0),
            "q1",
            relations,
            vec![
                EquiPredicate::new(attr(0, 0), attr(1, 0)),
                EquiPredicate::new(attr(1, 1), attr(2, 0)),
            ],
            None,
        )
        .unwrap()
    }

    #[test]
    fn valid_linear_query() {
        let q = linear3();
        assert_eq!(q.size(), 3);
        assert!(q.validate().is_ok());
        assert_eq!(q.predicates.len(), 2);
    }

    #[test]
    fn disconnected_query_rejected() {
        let relations = RelationSet::from_iter([rid(0), rid(1), rid(2), rid(3)]);
        let result = JoinQuery::new(
            QueryId::new(1),
            "bad",
            relations,
            vec![
                EquiPredicate::new(attr(0, 0), attr(1, 0)),
                EquiPredicate::new(attr(2, 0), attr(3, 0)),
            ],
            None,
        );
        assert!(matches!(result, Err(ClashError::InvalidQuery(_))));
    }

    #[test]
    fn empty_query_rejected() {
        let result = JoinQuery::new(QueryId::new(1), "empty", RelationSet::new(), vec![], None);
        assert!(result.is_err());
    }

    #[test]
    fn foreign_predicate_rejected() {
        let relations = RelationSet::from_iter([rid(0), rid(1)]);
        let result = JoinQuery::new(
            QueryId::new(1),
            "foreign",
            relations,
            vec![EquiPredicate::new(attr(0, 0), attr(5, 0))],
            None,
        );
        assert!(result.is_err());
    }

    #[test]
    fn duplicate_predicates_are_deduplicated() {
        let relations = RelationSet::from_iter([rid(0), rid(1)]);
        let q = JoinQuery::new(
            QueryId::new(2),
            "dup",
            relations,
            vec![
                EquiPredicate::new(attr(0, 0), attr(1, 0)),
                EquiPredicate::new(attr(1, 0), attr(0, 0)),
            ],
            None,
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn predicates_between_and_within() {
        let q = linear3();
        let r = RelationSet::singleton(rid(0));
        let s = RelationSet::singleton(rid(1));
        let st = RelationSet::from_iter([rid(1), rid(2)]);
        assert_eq!(q.predicates_between(&r, &s).len(), 1);
        assert_eq!(q.predicates_between(&r, &st).len(), 1);
        assert_eq!(
            q.predicates_between(&r, &RelationSet::singleton(rid(2)))
                .len(),
            0
        );
        assert_eq!(q.predicates_within(&st).len(), 1);
        assert_eq!(q.predicates_within(&q.relations).len(), 2);
        assert_eq!(q.predicates_within(&r).len(), 0);
    }

    #[test]
    fn subquery_extraction() {
        let q = linear3();
        let st = RelationSet::from_iter([rid(1), rid(2)]);
        let sub = q.subquery(st, QueryId::new(10)).unwrap();
        assert_eq!(sub.size(), 2);
        assert_eq!(sub.predicates.len(), 1);
        // Subset check enforced.
        let foreign = RelationSet::from_iter([rid(1), rid(5)]);
        assert!(q.subquery(foreign, QueryId::new(11)).is_err());
    }

    #[test]
    fn builder_resolves_names_through_catalog() {
        let mut catalog = Catalog::new();
        catalog.register("R", ["a"], Window::secs(5), 1).unwrap();
        catalog
            .register("S", ["a", "b"], Window::secs(5), 1)
            .unwrap();
        catalog.register("T", ["b"], Window::secs(5), 1).unwrap();
        let q = QueryBuilder::new(QueryId::new(3), "q", &catalog)
            .join("R", "a", "S", "a")
            .unwrap()
            .join("S", "b", "T", "b")
            .unwrap()
            .window(Window::secs(30))
            .build()
            .unwrap();
        assert_eq!(q.size(), 3);
        assert_eq!(q.window, Some(Window::secs(30)));
        assert!(QueryBuilder::new(QueryId::new(4), "bad", &catalog)
            .join("R", "a", "Z", "a")
            .is_err());
        let single = QueryBuilder::new(QueryId::new(5), "single", &catalog)
            .relation("R")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(single.size(), 1);
    }

    #[test]
    fn display_mentions_relations_and_predicates() {
        let q = linear3();
        let s = q.to_string();
        assert!(s.contains("q1"));
        assert!(s.contains("R0"));
        assert!(s.contains("="));
    }
}
