//! Offline stub of `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`, range
//! strategies and [`collection::vec`]. Instead of proptest's shrinking
//! search it samples a fixed number of deterministic random cases per
//! property (seeded from the property name), so failures are reproducible
//! run to run; there is no shrinking — the failing case prints as-is via
//! the panic message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Cases sampled per property.
pub const NUM_CASES: u64 = 96;

/// Deterministic per-property random source.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from the property name so every run samples the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

/// Strategy yielding a fixed value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Size specification accepted by [`vec`]: a fixed length or a
    /// half-open range (mirrors proptest's `Into<SizeRange>`).
    pub trait IntoSizeRange {
        /// Converts to a half-open length range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.rng().gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `size` elements drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into_size_range(),
        }
    }
}

impl TestRng {
    #[doc(hidden)]
    pub fn __core(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// The names tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, Strategy, TestRng};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` sampling [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..$crate::NUM_CASES {
                    let _ = __proptest_case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The harness samples within the requested bounds.
        #[test]
        fn ranges_hold(a in 0u32..10, v in collection::vec(0i64..100, 1..5)) {
            prop_assert!(a < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let sa = (0u64..1_000).generate(&mut a);
        let sb = (0u64..1_000).generate(&mut b);
        assert_eq!(sa, sb);
    }
}
