//! Plan-space enumeration: decorated probe order candidates.
//!
//! For every query and starting relation this module enumerates the
//! candidate probe orders of Algorithm 1 and decorates every probed store
//! with a partitioning attribute (Section V), producing
//! [`DecoratedProbeOrder`]s — the unit among which the ILP chooses. Each
//! decorated candidate knows its probe cost, per-step costs and per-step
//! [`StepKey`]s; equal step keys across queries identify shareable work and
//! therefore map to the same ILP step variable.

use crate::store::StoreDescriptor;
use clash_catalog::{Catalog, Statistics};
use clash_common::{QueryId, RelationId, RelationSet};
use clash_cost::{probe_cost, step_cost, CardinalityEstimator, CostConfig};
use clash_query::partitioning::partition_candidates_for_workload;
use clash_query::{construct_probe_orders_for_start, enumerate_mirs, JoinQuery, Mir, ProbeOrder};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the plan-space enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanSpaceConfig {
    /// Maximum size of enumerated MIRs (`None`: unbounded).
    pub max_mir_size: Option<usize>,
    /// Cap on probe order candidates per (query, start) pair.
    pub max_candidates_per_start: Option<usize>,
    /// When `false`, only base relations may be probed (no intermediate
    /// result stores). Used by the MIR-materialization ablation.
    pub materialize_intermediates: bool,
    /// When `false`, stores are never decorated with partitioning
    /// attributes (every multi-partition store is broadcast to). Used by
    /// the χ-awareness ablation.
    pub partitioning_enabled: bool,
    /// Cap on the number of partitioning combinations per probe order.
    pub max_partitionings_per_order: usize,
    /// Cost model configuration.
    pub cost: CostConfig,
}

impl Default for PlanSpaceConfig {
    fn default() -> Self {
        PlanSpaceConfig {
            max_mir_size: None,
            max_candidates_per_start: Some(64),
            materialize_intermediates: true,
            partitioning_enabled: true,
            max_partitionings_per_order: 16,
            cost: CostConfig::default(),
        }
    }
}

/// Canonical identity of a probe-order prefix (a *step* of the ILP).
///
/// Two steps are the same — and may share an ILP variable, a store and the
/// actual computation at runtime — iff they start from the same relation,
/// probe the same sequence of stores with the same partitioning, and
/// evaluate the same predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StepKey(pub String);

impl StepKey {
    fn build(
        query: &JoinQuery,
        order: &ProbeOrder,
        stores: &[StoreDescriptor],
        upto: usize,
    ) -> StepKey {
        let mut s = format!("start:{}", order.start.0);
        let mut covered = RelationSet::singleton(order.start);
        for store in stores.iter().take(upto + 1) {
            covered = covered.union(&store.relations);
            s.push_str(&format!(
                "|{}@{}x{}",
                store.relations.bits(),
                store
                    .partition
                    .map(|a| format!("{}.{}", a.relation.0, a.attr.0))
                    .unwrap_or_else(|| "-".into()),
                store.parallelism
            ));
        }
        // Predicate fingerprint of the covered prefix: queries that impose
        // different join conditions on the same relations must not share.
        let mut preds: Vec<String> = query
            .predicates_within(&covered)
            .iter()
            .map(|p| {
                format!(
                    "{}.{}={}.{}",
                    p.left.relation.0, p.left.attr.0, p.right.relation.0, p.right.attr.0
                )
            })
            .collect();
        preds.sort();
        s.push_str("|P:");
        s.push_str(&preds.join(","));
        StepKey(s)
    }
}

/// A probe order whose probed stores carry partitioning decorations,
/// together with its costs under the current statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoratedProbeOrder {
    /// The query (or sub-query) answered by this probe order.
    pub query: QueryId,
    /// The undecorated probe order.
    pub order: ProbeOrder,
    /// One store descriptor per probe step.
    pub stores: Vec<StoreDescriptor>,
    /// Probe cost `PCost(σ)` (sum of the step costs).
    pub cost: f64,
    /// Cost of every step.
    pub step_costs: Vec<f64>,
    /// Sharing identity of every step (probe-order prefix).
    pub step_keys: Vec<StepKey>,
}

impl DecoratedProbeOrder {
    /// The set of relations covered once the probe order completes.
    pub fn covered(&self) -> RelationSet {
        self.order.covered()
    }

    /// Store descriptors of intermediate-result (non-base) steps.
    pub fn intermediate_stores(&self) -> impl Iterator<Item = &StoreDescriptor> {
        self.stores.iter().filter(|s| !s.is_base())
    }
}

/// Key identifying a sub-query probe order that maintains an intermediate
/// result store: the MIR's relations, the starting relation and the
/// predicate fingerprint.
pub type SubqueryKey = (u128, RelationId, String);

/// The full plan space of a workload.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    /// The workload.
    pub queries: Vec<JoinQuery>,
    /// Candidates per (query, starting relation).
    pub per_start: HashMap<(QueryId, RelationId), Vec<DecoratedProbeOrder>>,
    /// For every intermediate store that some candidate probes: the probe
    /// order that maintains it, one per starting relation of the MIR.
    pub subquery_orders: HashMap<SubqueryKey, DecoratedProbeOrder>,
}

impl CandidateSet {
    /// Total number of decorated probe order candidates (the "probe
    /// orders" series of Fig. 9b / 9d).
    pub fn num_probe_orders(&self) -> usize {
        self.per_start.values().map(|v| v.len()).sum::<usize>() + self.subquery_orders.len()
    }

    /// Candidates for one (query, start) pair.
    pub fn candidates(&self, query: QueryId, start: RelationId) -> &[DecoratedProbeOrder] {
        self.per_start
            .get(&(query, start))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Minimum probe cost of a query when optimized in isolation (one
    /// cheapest probe order per starting relation, no sharing) — the
    /// "Individual" series of Fig. 9a / 9c.
    ///
    /// Only candidates over base-relation stores are considered: a query
    /// executed in isolation by the baseline engines corresponds to a
    /// cascade of symmetric joins over its inputs, without additional
    /// intermediate-result maintenance streams.
    pub fn individual_cost(&self, query: QueryId) -> f64 {
        self.per_start
            .iter()
            .filter(|((q, _), _)| *q == query)
            .map(|(_, cands)| {
                cands
                    .iter()
                    .filter(|c| c.stores.iter().all(|s| s.is_base()))
                    .map(|c| c.cost)
                    .fold(f64::INFINITY, f64::min)
            })
            .filter(|c| c.is_finite())
            .sum()
    }
}

fn predicate_fingerprint(query: &JoinQuery, set: &RelationSet) -> String {
    let mut preds: Vec<String> = query
        .predicates_within(set)
        .iter()
        .map(|p| {
            format!(
                "{}.{}={}.{}",
                p.left.relation.0, p.left.attr.0, p.right.relation.0, p.right.attr.0
            )
        })
        .collect();
    preds.sort();
    preds.join(",")
}

/// Parallelism assigned to a store over the given relations: the maximum
/// parallelism of the member relations (intermediate results inherit the
/// scale of their widest input).
fn store_parallelism(catalog: &Catalog, relations: &RelationSet) -> usize {
    relations
        .iter()
        .filter_map(|r| catalog.relation(r).ok().map(|m| m.parallelism))
        .max()
        .unwrap_or(1)
}

/// Partitioning options for a store, honoring the workload-wide candidate
/// attributes (Section V) and the configuration switches.
fn partition_options(
    catalog: &Catalog,
    queries: &[JoinQuery],
    relations: &RelationSet,
    config: &PlanSpaceConfig,
) -> Vec<StoreDescriptor> {
    let parallelism = store_parallelism(catalog, relations);
    if !config.partitioning_enabled || parallelism <= 1 {
        return vec![StoreDescriptor {
            relations: *relations,
            partition: None,
            parallelism,
            owner: None,
        }];
    }
    let candidates = partition_candidates_for_workload(queries, relations);
    if candidates.is_empty() {
        return vec![StoreDescriptor {
            relations: *relations,
            partition: None,
            parallelism,
            owner: None,
        }];
    }
    candidates
        .into_iter()
        .map(|attr| StoreDescriptor::partitioned(*relations, attr, parallelism))
        .collect()
}

/// Decorates one probe order with every combination of store partitionings
/// (capped by the configuration) and computes the costs.
fn decorate_order(
    estimator: &CardinalityEstimator<'_>,
    catalog: &Catalog,
    queries: &[JoinQuery],
    query: &JoinQuery,
    order: &ProbeOrder,
    config: &PlanSpaceConfig,
) -> Vec<DecoratedProbeOrder> {
    // Partitioning options per step.
    let options: Vec<Vec<StoreDescriptor>> = order
        .steps
        .iter()
        .map(|s| partition_options(catalog, queries, s, config))
        .collect();
    // Cartesian product, capped.
    let mut combos: Vec<Vec<StoreDescriptor>> = vec![Vec::new()];
    for step_options in &options {
        let mut next = Vec::new();
        'outer: for combo in &combos {
            for option in step_options {
                let mut c = combo.clone();
                c.push(*option);
                next.push(c);
                if next.len() >= config.max_partitionings_per_order {
                    break 'outer;
                }
            }
        }
        combos = next;
    }

    combos
        .into_iter()
        .map(|stores| {
            let steps: Vec<clash_cost::PartitionedStep> =
                stores.iter().map(|s| s.as_partitioned_step()).collect();
            let cost = probe_cost(estimator, query, order, &steps);
            let step_costs: Vec<f64> = (0..order.len())
                .map(|j| step_cost(estimator, query, order, j, &steps[j]).cost)
                .collect();
            let step_keys: Vec<StepKey> = (0..order.len())
                .map(|j| StepKey::build(query, order, &stores, j))
                .collect();
            DecoratedProbeOrder {
                query: query.id,
                order: order.clone(),
                stores,
                cost,
                step_costs,
                step_keys,
            }
        })
        .collect()
}

/// Enumerates the full plan space of a workload.
pub fn enumerate_candidates(
    catalog: &Catalog,
    stats: &Statistics,
    queries: &[JoinQuery],
    config: &PlanSpaceConfig,
) -> CandidateSet {
    let estimator = CardinalityEstimator::new(catalog, stats, config.cost);
    let mut set = CandidateSet {
        queries: queries.to_vec(),
        ..CandidateSet::default()
    };

    for query in queries {
        let mirs: Vec<Mir> = if config.materialize_intermediates {
            enumerate_mirs(query, config.max_mir_size)
        } else {
            enumerate_mirs(query, Some(1))
        };
        for start in query.relations.iter() {
            let orders = construct_probe_orders_for_start(
                query,
                &mirs,
                start,
                config.max_candidates_per_start,
            );
            let mut decorated = Vec::new();
            for order in &orders {
                decorated.extend(decorate_order(
                    &estimator, catalog, queries, query, order, config,
                ));
            }
            // Register the sub-query probe orders needed to maintain every
            // intermediate store probed by some candidate.
            for cand in &decorated {
                for store in cand.intermediate_stores() {
                    register_subquery_orders(
                        &estimator,
                        catalog,
                        queries,
                        query,
                        &store.relations,
                        config,
                        &mut set.subquery_orders,
                    );
                }
            }
            set.per_start.insert((query.id, start), decorated);
        }
    }
    set
}

/// Generates (once) the cheapest probe order maintaining the intermediate
/// result `mir` for every starting relation of the MIR.
///
/// The paper generates *all* candidate probe orders for sub-queries and
/// lets the ILP choose; this reproduction commits to the locally cheapest
/// one per starting relation (over base-relation stores), which keeps the
/// ILP free of conditional choice groups. The simplification is documented
/// in DESIGN.md; for the 2–3 relation intermediates of the evaluation the
/// choice is unique or near-unique anyway.
fn register_subquery_orders(
    estimator: &CardinalityEstimator<'_>,
    catalog: &Catalog,
    queries: &[JoinQuery],
    query: &JoinQuery,
    mir: &RelationSet,
    config: &PlanSpaceConfig,
    out: &mut HashMap<SubqueryKey, DecoratedProbeOrder>,
) {
    let fingerprint = predicate_fingerprint(query, mir);
    let Ok(subquery) = query.subquery(*mir, QueryId::new(u32::MAX - query.id.0)) else {
        return;
    };
    let base_mirs = enumerate_mirs(&subquery, Some(1));
    for start in mir.iter() {
        let key: SubqueryKey = (mir.bits(), start, fingerprint.clone());
        if out.contains_key(&key) {
            continue;
        }
        let orders = construct_probe_orders_for_start(
            &subquery,
            &base_mirs,
            start,
            config.max_candidates_per_start,
        );
        let best = orders
            .iter()
            .flat_map(|o| decorate_order(estimator, catalog, queries, &subquery, o, config))
            .min_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        if let Some(best) = best {
            out.insert(key, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::Window;
    use clash_query::parse_query;

    fn setup() -> (Catalog, Statistics, Vec<JoinQuery>) {
        let mut catalog = Catalog::new();
        catalog
            .register("R", ["a"], Window::unbounded(), 1)
            .unwrap();
        catalog
            .register("S", ["a", "b"], Window::unbounded(), 5)
            .unwrap();
        catalog
            .register("T", ["b", "c"], Window::unbounded(), 5)
            .unwrap();
        catalog
            .register("U", ["c"], Window::unbounded(), 1)
            .unwrap();
        let mut stats = Statistics::new();
        for r in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            stats.set_rate(r, 100.0);
        }
        stats.default_selectivity = 0.01;
        let q1 = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b,c), U(c)").unwrap();
        (catalog, stats, vec![q1, q2])
    }

    #[test]
    fn enumeration_produces_candidates_for_every_start() {
        let (catalog, stats, queries) = setup();
        let set = enumerate_candidates(&catalog, &stats, &queries, &PlanSpaceConfig::default());
        for q in &queries {
            for start in q.relations.iter() {
                let cands = set.candidates(q.id, start);
                assert!(
                    !cands.is_empty(),
                    "no candidates for {} start {start}",
                    q.name
                );
                for c in cands {
                    assert_eq!(c.query, q.id);
                    assert!(c.order.is_valid_for(q));
                    assert_eq!(c.stores.len(), c.order.len());
                    assert_eq!(c.step_costs.len(), c.order.len());
                    assert_eq!(c.step_keys.len(), c.order.len());
                    assert!(c.cost > 0.0);
                    assert!((c.step_costs.iter().sum::<f64>() - c.cost).abs() < 1e-9);
                }
            }
        }
        assert!(set.num_probe_orders() > 0);
    }

    #[test]
    fn partitioned_stores_get_candidate_attributes() {
        let (catalog, stats, queries) = setup();
        let set = enumerate_candidates(&catalog, &stats, &queries, &PlanSpaceConfig::default());
        // S has parallelism 5, so candidates probing the S-store must carry
        // a partitioning attribute of S.
        let q1 = queries[0].id;
        let r = catalog.relation_id("R").unwrap();
        let s = catalog.relation_id("S").unwrap();
        let any_partitioned = set
            .candidates(q1, r)
            .iter()
            .flat_map(|c| c.stores.iter())
            .any(|st| st.relations == RelationSet::singleton(s) && st.partition.is_some());
        assert!(any_partitioned);
    }

    #[test]
    fn disabling_partitioning_removes_decorations() {
        let (catalog, stats, queries) = setup();
        let config = PlanSpaceConfig {
            partitioning_enabled: false,
            ..PlanSpaceConfig::default()
        };
        let set = enumerate_candidates(&catalog, &stats, &queries, &config);
        for cands in set.per_start.values() {
            for c in cands {
                assert!(c.stores.iter().all(|s| s.partition.is_none()));
            }
        }
    }

    #[test]
    fn disabling_intermediates_restricts_steps_to_base_stores() {
        let (catalog, stats, queries) = setup();
        let config = PlanSpaceConfig {
            materialize_intermediates: false,
            ..PlanSpaceConfig::default()
        };
        let set = enumerate_candidates(&catalog, &stats, &queries, &config);
        assert!(set.subquery_orders.is_empty());
        for cands in set.per_start.values() {
            for c in cands {
                assert!(c.stores.iter().all(|s| s.is_base()));
            }
        }
        // With intermediates enabled, at least one candidate probes an MIR
        // store and the corresponding maintenance orders exist.
        let full = enumerate_candidates(&catalog, &stats, &queries, &PlanSpaceConfig::default());
        assert!(!full.subquery_orders.is_empty());
        for sub in full.subquery_orders.values() {
            assert!(sub.stores.iter().all(|s| s.is_base()));
        }
    }

    #[test]
    fn shared_prefixes_of_different_queries_have_equal_step_keys() {
        let (catalog, stats, queries) = setup();
        let set = enumerate_candidates(&catalog, &stats, &queries, &PlanSpaceConfig::default());
        // q1 starting at S probing the T-store and q2 starting at S probing
        // the T-store share the first step (same predicate S.b = T.b).
        let s = catalog.relation_id("S").unwrap();
        let t = catalog.relation_id("T").unwrap();
        let keys_q1: Vec<&StepKey> = set
            .candidates(queries[0].id, s)
            .iter()
            .filter(|c| c.stores[0].relations == RelationSet::singleton(t))
            .map(|c| &c.step_keys[0])
            .collect();
        let keys_q2: Vec<&StepKey> = set
            .candidates(queries[1].id, s)
            .iter()
            .filter(|c| c.stores[0].relations == RelationSet::singleton(t))
            .map(|c| &c.step_keys[0])
            .collect();
        assert!(!keys_q1.is_empty() && !keys_q2.is_empty());
        assert!(
            keys_q1.iter().any(|k| keys_q2.contains(k)),
            "expected a shared first step between q1 and q2"
        );
    }

    #[test]
    fn individual_cost_sums_cheapest_candidates() {
        let (catalog, stats, queries) = setup();
        let set = enumerate_candidates(&catalog, &stats, &queries, &PlanSpaceConfig::default());
        let cost = set.individual_cost(queries[0].id);
        assert!(cost.is_finite() && cost > 0.0);
        // Manually: sum over starts of the minimum cost among base-only
        // candidates (intermediate-store candidates are excluded from the
        // individual baseline).
        let manual: f64 = queries[0]
            .relations
            .iter()
            .map(|s| {
                set.candidates(queries[0].id, s)
                    .iter()
                    .filter(|c| c.stores.iter().all(|st| st.is_base()))
                    .map(|c| c.cost)
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        assert!((cost - manual).abs() < 1e-9);
    }

    #[test]
    fn candidate_cap_limits_partitioning_combinations() {
        let (catalog, stats, queries) = setup();
        let config = PlanSpaceConfig {
            max_partitionings_per_order: 1,
            ..PlanSpaceConfig::default()
        };
        let set = enumerate_candidates(&catalog, &stats, &queries, &config);
        let full = enumerate_candidates(&catalog, &stats, &queries, &PlanSpaceConfig::default());
        assert!(set.num_probe_orders() <= full.num_probe_orders());
    }
}
