//! Partition routing and ordering bookkeeping for the sharded runtime.
//!
//! Routing itself reuses the exact decisions of the sequential engine: a
//! delivery either hashes its routing-key attribute to one partition
//! ([`partition_hash`]) or broadcasts to every partition of the target
//! store (the χ factor of Equation 1). Partitions are mapped onto worker
//! threads round-robin (`partition % workers`), so with `workers` equal to
//! a store's catalog parallelism every store partition gets its own
//! dedicated thread.
//!
//! The module also owns the two pieces of machinery that make sharded
//! execution *bit-identical* to sequential execution:
//!
//! 1. **Root handles** ([`RootHandle`]) count the outstanding deliveries
//!    of each ingested input tuple (its "root"). When the count reaches
//!    zero the root is complete and the global completion
//!    [`Progress`] watermark advances: all roots up to the watermark have
//!    fully drained everywhere.
//! 2. **Symmetric stores** ([`symmetric_stores`]): stores fed by
//!    `Forward` actions (materialized intermediate results) get their
//!    inserts from racing worker threads, so a probe may arrive before an
//!    insert it should observe. Probes at those stores register as
//!    pending probers in the shard and late inserts retro-match them —
//!    see `shard` — so nothing ever waits and every (probe, insert) pair
//!    is matched exactly once. Everything else pipelines freely, because
//!    channel FIFO order plus the router's arrival-order fan-out already
//!    serialize every (store, partition) consistently with sequential
//!    execution.
//!
//! The watermark doubles as the garbage-collection horizon for pending
//! probers and as the drain condition for barriers.

use crate::parallel::worker::{Delivery, WorkerMsg};
use crate::store::partition_hash;
use clash_common::{FxHashSet, StoreId, Tuple};
use clash_optimizer::{OutputAction, Rule, SendTarget, TopologyPlan};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How a delivery maps onto the partitions of its target store.
#[derive(Debug, Clone)]
pub(crate) struct RouteSpec {
    /// Partitions a probe rule must inspect (one when hashed, all when
    /// broadcast).
    pub probe_partitions: Vec<usize>,
    /// Partition a store rule inserts into.
    pub store_partition: usize,
    /// `true` when the delivery is a broadcast across > 1 partitions.
    pub broadcast: bool,
}

impl RouteSpec {
    /// Number of partition copies this delivery sends (the probe-cost
    /// `tuples_sent` unit of the sequential engine).
    pub fn copies(&self) -> u64 {
        self.probe_partitions.len() as u64
    }
}

/// Resolves the partitions of `target` that `tuple` must reach, mirroring
/// the sequential engine: hash the routing key when the tuple carries it,
/// otherwise broadcast (and store into the partition-attribute partition).
pub(crate) fn resolve(
    plan: &TopologyPlan,
    target: &SendTarget,
    tuple: &Tuple,
) -> Option<RouteSpec> {
    let def = plan.store(target.store)?;
    let parallelism = def.descriptor.parallelism.max(1);
    match target.routing_key.and_then(|a| tuple.get(&a)) {
        Some(value) => {
            let p = partition_hash(value, parallelism);
            Some(RouteSpec {
                probe_partitions: vec![p],
                store_partition: p,
                broadcast: false,
            })
        }
        None => {
            let store_partition = def
                .descriptor
                .partition
                .and_then(|a| tuple.get(&a))
                .map(|v| partition_hash(v, parallelism))
                .unwrap_or(0);
            Some(RouteSpec {
                probe_partitions: (0..parallelism).collect(),
                store_partition,
                broadcast: parallelism > 1,
            })
        }
    }
}

/// The worker thread owning a partition: round-robin assignment.
pub(crate) fn owner_of(partition: usize, workers: usize) -> usize {
    partition % workers
}

/// Splits the route of `target` into per-worker deliveries, registering
/// each with the root's completion counter. Returns `None` when the plan
/// has no rules for the target (the sequential engine ignores such sends
/// without accounting them). Probe partitions go to their owners; the
/// store partition goes to its owner only when the rule set actually
/// stores. `guard` is the logical sequence position the delivery acts at
/// (the originating root for normal sends, the original prober's position
/// for retro-produced results).
pub(crate) fn fan_out(
    plan: &TopologyPlan,
    workers: usize,
    target: SendTarget,
    tuple: Tuple,
    guard: u64,
    root: &Arc<RootHandle>,
    started: Instant,
) -> Option<(RouteSpec, Vec<(usize, Delivery)>)> {
    let rules = plan.rules.get(&(target.store, target.edge))?;
    let has_store = rules.iter().any(|r| matches!(r, Rule::Store));
    let has_probe = rules.iter().any(|r| matches!(r, Rule::Probe { .. }));
    if !has_store && !has_probe {
        return None;
    }
    let spec = resolve(plan, &target, &tuple)?;
    let mut per_worker: Vec<Option<Delivery>> = (0..workers).map(|_| None).collect();
    if has_probe {
        for &p in &spec.probe_partitions {
            per_worker[owner_of(p, workers)]
                .get_or_insert_with(|| Delivery {
                    target,
                    tuple: tuple.clone(),
                    probe_partitions: Vec::new(),
                    store_partition: None,
                    broadcast: spec.broadcast,
                    guard,
                    root: root.clone(),
                    started,
                })
                .probe_partitions
                .push(p);
        }
    }
    if has_store {
        per_worker[owner_of(spec.store_partition, workers)]
            .get_or_insert_with(|| Delivery {
                target,
                tuple: tuple.clone(),
                probe_partitions: Vec::new(),
                store_partition: None,
                broadcast: spec.broadcast,
                guard,
                root: root.clone(),
                started,
            })
            .store_partition = Some(spec.store_partition);
    }
    let deliveries: Vec<(usize, Delivery)> = per_worker
        .into_iter()
        .enumerate()
        .filter_map(|(worker, d)| d.map(|d| (worker, d)))
        .collect();
    for _ in &deliveries {
        root.register();
    }
    Some((spec, deliveries))
}

/// Routes one ingested root to every target store of its relation: the
/// shared front half of `ParallelEngine::ingest` and
/// [`crate::ingest::SourceHandle`] pushes. Fans out each target, accounts
/// `tuples_sent`/`broadcasts` exactly like the sequential engine, buffers
/// the deliveries and releases the root's creator bias. Keeping both
/// producers on this single path means a change to routing or accounting
/// cannot silently diverge between them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_root(
    plan: &TopologyPlan,
    workers: usize,
    relation: clash_common::RelationId,
    tuple: &Tuple,
    seq: u64,
    root: &Arc<RootHandle>,
    started: Instant,
    metrics: &mut crate::metrics::EngineMetrics,
    buf: &mut BatchBuffer,
) {
    for target in plan.ingest_for(relation) {
        let Some((spec, deliveries)) =
            fan_out(plan, workers, *target, tuple.clone(), seq, root, started)
        else {
            continue;
        };
        metrics.tuples_sent += spec.copies();
        if spec.broadcast {
            metrics.broadcasts += 1;
        }
        for (worker, delivery) in deliveries {
            buf.push(worker, delivery);
        }
    }
    root.release_bias();
}

/// Coalesces the coordinator's per-ingest deliveries into larger
/// per-worker `Batch` messages, cutting per-message channel overhead on
/// the ingest hot path (ROADMAP: micro-batching across ingests).
///
/// Deliveries append in ingest order and flush in ingest order, so the
/// per-(store, partition) FIFO guarantee the correctness argument rests
/// on is unchanged — batching only delays *when* a contiguous run of
/// deliveries is handed to a worker, never reorders it. The coordinator
/// flushes on the size trigger ([`BatchBuffer::is_full`]), before every
/// drain barrier (epoch boundary, snapshot, install) and before expiry
/// messages, so no delivery can be stranded behind a barrier.
#[derive(Debug)]
pub(crate) struct BatchBuffer {
    per_worker: Vec<Vec<Delivery>>,
    buffered: usize,
    /// Size trigger: flush once this many deliveries are buffered
    /// (`<= 1` restores the seed's send-per-ingest behavior).
    capacity: usize,
    /// Wall-clock instant of the oldest buffered delivery (the time
    /// trigger `EngineConfig::micro_batch_max_delay` measures from).
    since: Option<Instant>,
    /// Shared queue-depth gauges, bumped on the enqueue side per flush.
    gauges: Arc<DepthGauges>,
}

impl BatchBuffer {
    /// An empty buffer for `workers` targets with the given size trigger.
    pub fn new(workers: usize, capacity: usize, gauges: Arc<DepthGauges>) -> Self {
        BatchBuffer {
            per_worker: (0..workers).map(|_| Vec::new()).collect(),
            buffered: 0,
            capacity: capacity.max(1),
            since: None,
            gauges,
        }
    }

    /// Appends one delivery for `worker`.
    pub fn push(&mut self, worker: usize, delivery: Delivery) {
        self.per_worker[worker].push(delivery);
        self.buffered += 1;
        if self.since.is_none() {
            self.since = Some(Instant::now());
        }
    }

    /// `true` once the size trigger is reached.
    pub fn is_full(&self) -> bool {
        self.buffered >= self.capacity
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffered == 0
    }

    /// Number of buffered deliveries.
    pub fn len(&self) -> usize {
        self.buffered
    }

    /// `true` once the oldest buffered delivery is older than `max_delay`
    /// (the time trigger; `ZERO` disables it).
    pub fn is_stale(&self, max_delay: std::time::Duration) -> bool {
        max_delay > std::time::Duration::ZERO
            && self.since.is_some_and(|since| since.elapsed() >= max_delay)
    }

    /// Ships every buffered delivery as one `Batch` message per worker.
    /// Returns the age of the oldest buffered delivery (how long it sat
    /// waiting for the size or time trigger) when anything was shipped —
    /// the sample behind the `flush_age` telemetry histogram.
    pub fn flush(&mut self, senders: &[Sender<WorkerMsg>]) -> Option<std::time::Duration> {
        if self.buffered == 0 {
            return None;
        }
        self.buffered = 0;
        let age = self.since.take().map(|since| since.elapsed());
        for (worker, batch) in self.per_worker.iter_mut().enumerate() {
            if !batch.is_empty() {
                self.gauges.enqueued(worker, batch.len() as u64);
                // A send only fails after shutdown; deliveries are then moot.
                let _ = senders[worker].send(WorkerMsg::Batch(std::mem::take(batch)));
            }
        }
        age
    }
}

/// Per-worker channel-depth gauges: producers count deliveries as they
/// enqueue `Batch` messages, workers count them as they drain, and the
/// difference is the instantaneous backlog exposed as
/// `clash_worker_queue_depth`. Two monotone counters instead of one
/// gauge keep both sides wait-free — no producer/consumer contention on
/// a shared decrement, and a momentary negative race simply clamps to 0.
#[derive(Debug, Default)]
pub(crate) struct DepthGauges {
    enqueued: Vec<AtomicU64>,
    processed: Vec<AtomicU64>,
}

impl DepthGauges {
    /// Gauges for `workers` channels.
    pub fn new(workers: usize) -> Self {
        DepthGauges {
            enqueued: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            processed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Counts `n` deliveries handed to `worker`'s channel.
    pub fn enqueued(&self, worker: usize, n: u64) {
        self.enqueued[worker].fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` deliveries drained by `worker`.
    pub fn processed(&self, worker: usize, n: u64) {
        self.processed[worker].fetch_add(n, Ordering::Relaxed);
    }

    /// Instantaneous backlog of `worker`'s channel, clamped at 0.
    pub fn depth(&self, worker: usize) -> u64 {
        let enq = self.enqueued[worker].load(Ordering::Relaxed);
        let done = self.processed[worker].load(Ordering::Relaxed);
        enq.saturating_sub(done)
    }
}

/// Number of workers holding at least one partition of a store with the
/// given parallelism (used to extrapolate shard-local store sizes for the
/// statistics collector).
pub(crate) fn workers_of_store(parallelism: usize, workers: usize) -> usize {
    parallelism.max(1).min(workers)
}

/// Stores where a (probe, insert) pair can arrive over *different* sender
/// paths, so channel FIFO alone cannot guarantee insert-before-probe
/// visibility. Probes at these stores register as *pending probers* and
/// late inserts retro-match them (the symmetric completion mechanism of
/// the shard). Two cases qualify:
///
/// 1. **Forward-fed stores** — materialized intermediate-result stores
///    whose `Store` deliveries come from racing worker threads while
///    their probes may come straight from the coordinator.
/// 2. **Stores probed through `Forward` actions** — a base store's
///    inserts travel on the coordinator channel (possibly parked in the
///    micro-batch buffer), while a partial result probing it is forwarded
///    directly worker-to-worker and can overtake them.
///
/// Pairs where both sides ride the coordinator channel stay FIFO — the
/// micro-batch buffer appends and flushes in ingest order — and need no
/// registration. The exactly-once argument (match at probe time iff the
/// insert was applied with a smaller guard, retroactively otherwise,
/// GC once the watermark proves no earlier root is in flight) does not
/// depend on *which* stores are symmetric, so widening the set is safe.
pub(crate) fn symmetric_stores(plan: &TopologyPlan) -> FxHashSet<StoreId> {
    // Stores that apply a `Store` rule on any edge.
    let storing: FxHashSet<StoreId> = plan
        .rules
        .iter()
        .filter(|(_, rules)| rules.iter().any(|r| matches!(r, Rule::Store)))
        .map(|((store, _), _)| *store)
        .collect();
    let mut symmetric: FxHashSet<StoreId> = FxHashSet::default();
    for rules in plan.rules.values() {
        for rule in rules {
            let Rule::Probe { outputs, .. } = rule else {
                continue;
            };
            for action in outputs {
                let OutputAction::Forward(next) = action else {
                    continue;
                };
                let Some(next_rules) = plan.rules.get(&(next.store, next.edge)) else {
                    continue;
                };
                let forward_stores = next_rules.iter().any(|r| matches!(r, Rule::Store));
                let forward_probes = next_rules.iter().any(|r| matches!(r, Rule::Probe { .. }));
                if forward_stores || (forward_probes && storing.contains(&next.store)) {
                    symmetric.insert(next.store);
                }
            }
        }
    }
    symmetric
}

/// The widened symmetric set for multi-producer ingestion: once two or
/// more producers (open [`crate::ingest::SourceHandle`]s and/or the
/// coordinator's own `ingest`) deliver concurrently, a probe and an
/// insert at *any* store can ride different sender paths, so channel FIFO
/// no longer orders them — not just at the forward-fed stores of
/// [`symmetric_stores`]. Every store that is both populated (a `Store`
/// rule on some edge) and probed (a `Probe` rule on some edge) therefore
/// joins the symmetric set: its probes register as pending probers and
/// late inserts with smaller sequence numbers retro-match them. The
/// exactly-once argument is unchanged — it never depended on *which*
/// stores are symmetric — so the widening trades some pending-prober
/// bookkeeping for exactness under concurrent ingestion.
pub(crate) fn symmetric_stores_multi(plan: &TopologyPlan) -> FxHashSet<StoreId> {
    let mut symmetric = symmetric_stores(plan);
    let storing: FxHashSet<StoreId> = plan
        .rules
        .iter()
        .filter(|(_, rules)| rules.iter().any(|r| matches!(r, Rule::Store)))
        .map(|((store, _), _)| *store)
        .collect();
    for ((store, _), rules) in &plan.rules {
        if storing.contains(store) && rules.iter().any(|r| matches!(r, Rule::Probe { .. })) {
            symmetric.insert(*store);
        }
    }
    symmetric
}

/// Global completion progress: the watermark `w` means every root with
/// sequence number `<= w` has been fully processed on every worker.
#[derive(Debug, Default)]
pub(crate) struct Progress {
    watermark: AtomicU64,
    /// Completed root seqs above the watermark, awaiting contiguity.
    completed: Mutex<FxHashSet<u64>>,
    condvar: Condvar,
}

impl Progress {
    /// Current watermark (roots `<= w` fully drained).
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Marks one root complete and advances the watermark over any now
    /// contiguous prefix.
    pub fn complete(&self, seq: u64) {
        let mut done = self.completed.lock().expect("progress lock");
        done.insert(seq);
        let mut w = self.watermark.load(Ordering::Acquire);
        while done.remove(&(w + 1)) {
            w += 1;
        }
        self.watermark.store(w, Ordering::Release);
        self.condvar.notify_all();
    }

    /// Blocks until the watermark changes or `timeout` elapses; returns the
    /// watermark afterwards.
    pub fn wait_for_change(&self, timeout: std::time::Duration) -> u64 {
        let before = self.watermark();
        let guard = self.completed.lock().expect("progress lock");
        if self.watermark() != before {
            return self.watermark();
        }
        let _unused = self
            .condvar
            .wait_timeout(guard, timeout)
            .expect("progress wait");
        self.watermark()
    }
}

/// Tracks the outstanding deliveries spawned (directly or transitively) by
/// one ingested input tuple. The creator holds a +1 bias released once all
/// initial deliveries are registered, so the root cannot complete early.
#[derive(Debug)]
pub(crate) struct RootHandle {
    /// The root's global arrival sequence number (starts at 1).
    pub seq: u64,
    remaining: AtomicU32,
    progress: Arc<Progress>,
}

impl RootHandle {
    /// New handle with the creator bias held.
    pub fn new(seq: u64, progress: Arc<Progress>) -> Arc<Self> {
        Arc::new(RootHandle {
            seq,
            remaining: AtomicU32::new(1),
            progress,
        })
    }

    /// Registers one more outstanding delivery.
    pub fn register(&self) {
        self.remaining.fetch_add(1, Ordering::AcqRel);
    }

    /// Marks one delivery processed; completes the root when the count
    /// reaches zero.
    pub fn finish_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.progress.complete(self.seq);
        }
    }

    /// Releases the creator bias (all initial deliveries registered).
    pub fn release_bias(&self) {
        self.finish_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_advances_only_over_contiguous_roots() {
        let progress = Arc::new(Progress::default());
        assert_eq!(progress.watermark(), 0);
        progress.complete(2);
        assert_eq!(progress.watermark(), 0, "gap at 1 blocks");
        progress.complete(1);
        assert_eq!(progress.watermark(), 2, "contiguous prefix collapses");
        progress.complete(3);
        assert_eq!(progress.watermark(), 3);
    }

    #[test]
    fn root_completes_when_bias_and_deliveries_finish() {
        let progress = Arc::new(Progress::default());
        let root = RootHandle::new(1, progress.clone());
        root.register();
        root.register();
        root.release_bias();
        assert_eq!(progress.watermark(), 0);
        root.finish_one();
        assert_eq!(progress.watermark(), 0);
        root.finish_one();
        assert_eq!(progress.watermark(), 1);
    }

    #[test]
    fn zero_delivery_root_completes_on_bias_release() {
        let progress = Arc::new(Progress::default());
        let root = RootHandle::new(1, progress.clone());
        root.release_bias();
        assert_eq!(progress.watermark(), 1);
    }

    #[test]
    fn owner_mapping_is_round_robin() {
        assert_eq!(owner_of(0, 4), 0);
        assert_eq!(owner_of(5, 4), 1);
        assert_eq!(owner_of(3, 1), 0);
        assert_eq!(workers_of_store(8, 4), 4);
        assert_eq!(workers_of_store(2, 4), 2);
        assert_eq!(workers_of_store(0, 4), 1);
    }
}
