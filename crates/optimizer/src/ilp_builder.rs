//! ILP construction (Algorithm 2) and solution extraction.
//!
//! Variables:
//!
//! * one binary `x_σ` per decorated probe order candidate of every
//!   `(query, starting relation)` pair,
//! * one binary `x'` per sub-query probe order maintaining an intermediate
//!   result store,
//! * one binary `y_ρ` per distinct *step* ([`StepKey`]), carrying the step
//!   cost as its objective coefficient. Steps shared between candidates of
//!   different queries reuse the same variable — that is where
//!   multi-query sharing enters the objective.
//!
//! Constraints (cf. the example in Fig. 3 of the paper):
//!
//! * `Σ_σ x_σ = 1` for every `(query, start)` group (Equation 2),
//! * `-PCost(σ)·x_σ + Σ_j StepCost(ρ_j)·y_{ρ_j} ≥ 0` for every candidate
//!   (Equation 3): selecting a candidate forces all of its steps,
//! * `-x_σ + x'_{M,j} ≥ 0` for every intermediate store `M` probed by `σ`
//!   and every input relation `j` of `M`: the store must be maintained by
//!   a probe order from every one of its inputs,
//! * the same cost constraints for the sub-query probe orders `x'`.

use crate::candidate::{CandidateSet, DecoratedProbeOrder, StepKey, SubqueryKey};
use clash_common::{ClashError, QueryId, RelationId, Result};
use clash_ilp::{Assignment, LinExpr, Model, ModelStats, Sense, VarId};
use std::collections::HashMap;

/// The constructed model together with the bookkeeping needed to interpret
/// its solution.
#[derive(Debug, Clone)]
pub struct IlpArtifacts {
    /// The 0/1 ILP.
    pub model: Model,
    /// Candidate variable per (query, start, candidate index).
    pub candidate_vars: HashMap<(QueryId, RelationId, usize), VarId>,
    /// Sub-query maintenance variable per intermediate store input.
    pub subquery_vars: HashMap<SubqueryKey, VarId>,
    /// Step variable and step cost per step key.
    pub step_vars: HashMap<StepKey, (VarId, f64)>,
    /// Model size statistics (Fig. 9b / 9d).
    pub stats: ModelStats,
}

/// The probe orders chosen by the optimizer.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// One decorated probe order per (query, starting relation).
    pub query_orders: Vec<DecoratedProbeOrder>,
    /// Maintenance probe orders for every intermediate store that the
    /// chosen query orders probe.
    pub subquery_orders: Vec<DecoratedProbeOrder>,
    /// Total shared probe cost: every distinct step counted once (the MQO
    /// objective of Fig. 9a / 9c).
    pub shared_cost: f64,
}

impl Selection {
    /// All chosen probe orders (query plus maintenance).
    pub fn all_orders(&self) -> impl Iterator<Item = &DecoratedProbeOrder> {
        self.query_orders.iter().chain(self.subquery_orders.iter())
    }

    /// Recomputes the shared cost from the step keys (each distinct step
    /// counted once).
    pub fn recompute_shared_cost(&mut self) {
        let mut seen: HashMap<&StepKey, f64> = HashMap::new();
        for order in self.query_orders.iter().chain(self.subquery_orders.iter()) {
            for (key, cost) in order.step_keys.iter().zip(&order.step_costs) {
                seen.entry(key).or_insert(*cost);
            }
        }
        self.shared_cost = seen.values().sum();
    }
}

fn step_var(
    model: &mut Model,
    step_vars: &mut HashMap<StepKey, (VarId, f64)>,
    key: &StepKey,
    cost: f64,
) -> VarId {
    if let Some((v, _)) = step_vars.get(key) {
        return *v;
    }
    let v = model.add_binary(format!("y[{}]", key.0), cost);
    step_vars.insert(key.clone(), (v, cost));
    v
}

/// Builds the multi-query optimization ILP from an enumerated plan space.
pub fn build_ilp(candidates: &CandidateSet) -> IlpArtifacts {
    let mut model = Model::new();
    let mut candidate_vars = HashMap::new();
    let mut subquery_vars: HashMap<SubqueryKey, VarId> = HashMap::new();
    let mut step_vars: HashMap<StepKey, (VarId, f64)> = HashMap::new();

    // Sub-query maintenance variables and their cost constraints.
    for (key, order) in &candidates.subquery_orders {
        let x = model.add_binary(format!("x'[mir={} start=R{}]", key.0, key.1 .0), 0.0);
        subquery_vars.insert(key.clone(), x);
        let mut expr = LinExpr::new();
        expr.add(x, -order.cost);
        for (step_key, step_cost) in order.step_keys.iter().zip(&order.step_costs) {
            let y = step_var(&mut model, &mut step_vars, step_key, *step_cost);
            expr.add(y, *step_cost);
        }
        model.add_constraint(format!("cost[{}]", model.var_name(x)), expr, Sense::Ge, 0.0);
    }

    // Candidate variables, choice constraints, cost constraints and
    // intermediate-store requirements.
    let mut groups: Vec<(&(QueryId, RelationId), &Vec<DecoratedProbeOrder>)> =
        candidates.per_start.iter().collect();
    groups.sort_by_key(|((q, s), _)| (q.0, s.0));
    for ((query, start), cands) in groups {
        let mut group_vars = Vec::with_capacity(cands.len());
        for (idx, cand) in cands.iter().enumerate() {
            let x = model.add_binary(format!("x[{query} {start} #{idx}]"), 0.0);
            candidate_vars.insert((*query, *start, idx), x);
            group_vars.push(x);

            // Cost constraint: selecting the candidate forces its steps.
            let mut expr = LinExpr::new();
            expr.add(x, -cand.cost);
            for (step_key, step_cost) in cand.step_keys.iter().zip(&cand.step_costs) {
                let y = step_var(&mut model, &mut step_vars, step_key, *step_cost);
                expr.add(y, *step_cost);
            }
            model.add_constraint(
                format!("cost[{query} {start} #{idx}]"),
                expr,
                Sense::Ge,
                0.0,
            );

            // Intermediate stores probed by the candidate must be
            // maintained from each of their inputs.
            let q = candidates
                .queries
                .iter()
                .find(|q| q.id == *query)
                .expect("candidate references a workload query");
            for store in cand.intermediate_stores() {
                let fingerprint = {
                    let mut preds: Vec<String> = q
                        .predicates_within(&store.relations)
                        .iter()
                        .map(|p| {
                            format!(
                                "{}.{}={}.{}",
                                p.left.relation.0,
                                p.left.attr.0,
                                p.right.relation.0,
                                p.right.attr.0
                            )
                        })
                        .collect();
                    preds.sort();
                    preds.join(",")
                };
                for input in store.relations.iter() {
                    let key: SubqueryKey = (store.relations.bits(), input, fingerprint.clone());
                    if let Some(x_sub) = subquery_vars.get(&key) {
                        model.add_implies_any(
                            format!("maintain[{query} {start} #{idx} mir={}]", store.relations),
                            x,
                            [*x_sub],
                        );
                    }
                }
            }
        }
        model.add_choose_one(format!("choose[{query} {start}]"), group_vars);
    }

    let stats = model.stats();
    IlpArtifacts {
        model,
        candidate_vars,
        subquery_vars,
        step_vars,
        stats,
    }
}

/// Extracts the chosen probe orders from a feasible assignment.
pub fn extract_selection(
    candidates: &CandidateSet,
    artifacts: &IlpArtifacts,
    assignment: &Assignment,
) -> Result<Selection> {
    let mut selection = Selection::default();
    for ((query, start), cands) in &candidates.per_start {
        let mut chosen = None;
        for (idx, cand) in cands.iter().enumerate() {
            let var = artifacts.candidate_vars[&(*query, *start, idx)];
            if assignment.get(var) {
                chosen = Some(cand.clone());
                break;
            }
        }
        match chosen {
            Some(c) => selection.query_orders.push(c),
            None => {
                return Err(ClashError::Optimization(format!(
                    "no probe order selected for query {query} start {start}"
                )))
            }
        }
    }
    for (key, var) in &artifacts.subquery_vars {
        if assignment.get(*var) {
            selection
                .subquery_orders
                .push(candidates.subquery_orders[key].clone());
        }
    }
    // Deterministic order helps the topology builder and the tests.
    selection
        .query_orders
        .sort_by_key(|o| (o.query.0, o.order.start.0));
    selection
        .subquery_orders
        .sort_by_key(|o| (o.covered().bits(), o.order.start.0));
    selection.recompute_shared_cost();
    Ok(selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{enumerate_candidates, PlanSpaceConfig};
    use clash_catalog::{Catalog, Statistics};
    use clash_common::Window;
    use clash_ilp::{solve, SolveStatus, SolverConfig};
    use clash_query::parse_query;

    fn setup() -> (Catalog, Statistics, Vec<clash_query::JoinQuery>) {
        let mut catalog = Catalog::new();
        catalog
            .register("R", ["a"], Window::unbounded(), 1)
            .unwrap();
        catalog
            .register("S", ["a", "b"], Window::unbounded(), 1)
            .unwrap();
        catalog
            .register("T", ["b", "c"], Window::unbounded(), 1)
            .unwrap();
        catalog
            .register("U", ["c"], Window::unbounded(), 1)
            .unwrap();
        let mut stats = Statistics::new();
        for m in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            stats.set_rate(m, 100.0);
        }
        // |S ⋈ T| = 150, all other joins 100 (the Section V-2 example).
        stats.default_selectivity = 0.01;
        stats.set_selectivity(
            catalog.attr("S", "b").unwrap(),
            catalog.attr("T", "b").unwrap(),
            0.015,
        );
        let q1 = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b,c), U(c)").unwrap();
        (catalog, stats, vec![q1, q2])
    }

    fn base_only_config() -> PlanSpaceConfig {
        PlanSpaceConfig {
            materialize_intermediates: false,
            ..PlanSpaceConfig::default()
        }
    }

    #[test]
    fn model_has_one_choice_constraint_per_query_start() {
        let (catalog, stats, queries) = setup();
        let cands = enumerate_candidates(&catalog, &stats, &queries, &base_only_config());
        let artifacts = build_ilp(&cands);
        let choice_count = artifacts
            .model
            .constraints()
            .iter()
            .filter(|c| c.name.starts_with("choose["))
            .count();
        assert_eq!(
            choice_count, 6,
            "two 3-relation queries = 6 (query, start) groups"
        );
        assert!(artifacts.stats.variables > 0);
        assert_eq!(artifacts.stats.variables, artifacts.model.num_vars());
    }

    #[test]
    fn solving_the_example_shares_the_st_step() {
        let (catalog, stats, queries) = setup();
        let cands = enumerate_candidates(&catalog, &stats, &queries, &base_only_config());
        let artifacts = build_ilp(&cands);
        let solution = solve(&artifacts.model, SolverConfig::default());
        assert_eq!(solution.status, SolveStatus::Optimal);
        let selection =
            extract_selection(&cands, &artifacts, solution.assignment.as_ref().unwrap()).unwrap();
        assert_eq!(selection.query_orders.len(), 6);
        // Shared cost equals the ILP objective.
        assert!((selection.shared_cost - solution.objective).abs() < 1e-6);
        // Sharing must not be worse than fully individual optimization and
        // for this workload is strictly better.
        let individual: f64 = queries.iter().map(|q| cands.individual_cost(q.id)).sum();
        assert!(
            selection.shared_cost < individual - 1e-6,
            "shared {} vs individual {individual}",
            selection.shared_cost
        );
    }

    #[test]
    fn selection_extraction_requires_a_choice_per_group() {
        let (catalog, stats, queries) = setup();
        let cands = enumerate_candidates(&catalog, &stats, &queries, &base_only_config());
        let artifacts = build_ilp(&cands);
        // An all-zero assignment selects nothing -> error.
        let empty = Assignment::zeros(artifacts.model.num_vars());
        assert!(extract_selection(&cands, &artifacts, &empty).is_err());
    }

    #[test]
    fn intermediate_stores_force_maintenance_orders() {
        let (catalog, stats, queries) = setup();
        let config = PlanSpaceConfig::default();
        let cands = enumerate_candidates(&catalog, &stats, &queries, &config);
        let artifacts = build_ilp(&cands);
        assert!(!artifacts.subquery_vars.is_empty());
        let solution = solve(&artifacts.model, SolverConfig::default());
        assert_eq!(solution.status, SolveStatus::Optimal);
        let selection =
            extract_selection(&cands, &artifacts, solution.assignment.as_ref().unwrap()).unwrap();
        // If any chosen query order probes an intermediate store, then the
        // matching maintenance orders must be part of the selection.
        let probed_mirs: Vec<_> = selection
            .query_orders
            .iter()
            .flat_map(|o| o.intermediate_stores().map(|s| s.relations))
            .collect();
        for mir in probed_mirs {
            for input in mir.iter() {
                assert!(
                    selection
                        .subquery_orders
                        .iter()
                        .any(|o| o.covered() == mir && o.order.start == input),
                    "intermediate store {mir} lacks a maintenance order from {input}"
                );
            }
        }
    }

    #[test]
    fn step_variables_are_shared_between_queries() {
        let (catalog, stats, queries) = setup();
        let cands = enumerate_candidates(&catalog, &stats, &queries, &base_only_config());
        let artifacts = build_ilp(&cands);
        // Fewer step variables than total steps across candidates proves
        // sharing (every candidate has >= 1 step).
        let total_steps: usize = cands
            .per_start
            .values()
            .flat_map(|v| v.iter())
            .map(|c| c.step_keys.len())
            .sum();
        assert!(artifacts.step_vars.len() < total_steps);
    }
}
