//! Registry of streamed relations.

use crate::relation::RelationMeta;
use clash_common::{AttrRef, ClashError, RelationId, Result, Schema, SchemaRef, Window};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// The catalog maps relation names to identifiers and stores per-relation
/// metadata (schema, window, parallelism).
///
/// Relation ids are dense indices in registration order, which lets every
/// downstream crate use `Vec`-based lookups and `RelationSet` bitmaps.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    relations: Vec<RelationMeta>,
    by_name: HashMap<String, RelationId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a relation with the given name, attributes, window and
    /// store parallelism. Returns the assigned [`RelationId`].
    ///
    /// Registering a name twice is an error: continuous queries reference
    /// relations by name and silently replacing a schema under them would
    /// be a correctness hazard.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
        window: Window,
        parallelism: usize,
    ) -> Result<RelationId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(ClashError::Config(format!(
                "relation {name} is already registered"
            )));
        }
        let id = RelationId::from(self.relations.len());
        let schema = Arc::new(Schema::new(id, name.clone(), attributes));
        if schema.arity() > clash_common::MAX_ATTRS_PER_RELATION {
            return Err(ClashError::Config(format!(
                "relation {name} has {} attributes, exceeding the {} supported by the leaf layout",
                schema.arity(),
                clash_common::MAX_ATTRS_PER_RELATION
            )));
        }
        let layout = Arc::new(clash_common::LeafLayout::of_schema(&schema));
        self.relations.push(RelationMeta {
            id,
            name: name.clone(),
            schema,
            layout,
            window,
            parallelism: parallelism.max(1),
        });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Convenience registration with an unbounded window and parallelism 1.
    pub fn register_simple(
        &mut self,
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<RelationId> {
        self.register(name, attributes, Window::unbounded(), 1)
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` when no relation is registered.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Looks up a relation id by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.by_name.get(name).copied()
    }

    /// Returns the metadata of a relation.
    pub fn relation(&self, id: RelationId) -> Result<&RelationMeta> {
        self.relations
            .get(id.index())
            .ok_or_else(|| ClashError::unknown(format!("relation {id}")))
    }

    /// Returns the metadata of a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Result<&RelationMeta> {
        let id = self
            .relation_id(name)
            .ok_or_else(|| ClashError::unknown(format!("relation '{name}'")))?;
        self.relation(id)
    }

    /// Returns the schema of a relation.
    pub fn schema(&self, id: RelationId) -> Result<SchemaRef> {
        Ok(self.relation(id)?.schema.clone())
    }

    /// Resolves `relation.attribute` given as names into an [`AttrRef`].
    pub fn attr(&self, relation: &str, attribute: &str) -> Result<AttrRef> {
        let meta = self.relation_by_name(relation)?;
        meta.schema
            .attr_ref(attribute)
            .ok_or_else(|| ClashError::unknown(format!("attribute {relation}.{attribute}")))
    }

    /// Human readable name of an attribute reference (`"S.b"`), falling back
    /// to the id notation when unknown.
    pub fn attr_name(&self, attr: &AttrRef) -> String {
        match self.relation(attr.relation) {
            Ok(meta) => match meta.schema.attr_name(attr.attr) {
                Some(a) => format!("{}.{}", meta.name, a),
                None => format!("{}.{}", meta.name, attr.attr),
            },
            Err(_) => attr.to_string(),
        }
    }

    /// Iterates over all registered relations in id order.
    pub fn iter(&self) -> impl Iterator<Item = &RelationMeta> {
        self.relations.iter()
    }

    /// Updates the parallelism of a relation's store.
    pub fn set_parallelism(&mut self, id: RelationId, parallelism: usize) -> Result<()> {
        let meta = self
            .relations
            .get_mut(id.index())
            .ok_or_else(|| ClashError::unknown(format!("relation {id}")))?;
        meta.parallelism = parallelism.max(1);
        Ok(())
    }

    /// Updates the window of a relation.
    pub fn set_window(&mut self, id: RelationId, window: Window) -> Result<()> {
        let meta = self
            .relations
            .get_mut(id.index())
            .ok_or_else(|| ClashError::unknown(format!("relation {id}")))?;
        meta.window = window;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::AttrId;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("R", ["a", "x"], Window::secs(5), 3).unwrap();
        c.register("S", ["a", "b"], Window::secs(5), 5).unwrap();
        c.register("T", ["b", "c"], Window::secs(10), 2).unwrap();
        c
    }

    #[test]
    fn registration_assigns_dense_ids() {
        let c = catalog();
        assert_eq!(c.len(), 3);
        assert_eq!(c.relation_id("R"), Some(RelationId::new(0)));
        assert_eq!(c.relation_id("T"), Some(RelationId::new(2)));
        assert_eq!(c.relation_id("U"), None);
        assert!(!c.is_empty());
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut c = catalog();
        let err = c.register("R", ["z"], Window::secs(1), 1).unwrap_err();
        assert!(matches!(err, ClashError::Config(_)));
    }

    #[test]
    fn attribute_resolution() {
        let c = catalog();
        let b = c.attr("S", "b").unwrap();
        assert_eq!(b.relation, RelationId::new(1));
        assert_eq!(b.attr, AttrId::new(1));
        assert_eq!(c.attr_name(&b), "S.b");
        assert!(c.attr("S", "zzz").is_err());
        assert!(c.attr("Z", "a").is_err());
    }

    #[test]
    fn metadata_accessors() {
        let c = catalog();
        let s = c.relation_by_name("S").unwrap();
        assert_eq!(s.parallelism, 5);
        assert_eq!(s.window, Window::secs(5));
        assert_eq!(c.schema(s.id).unwrap().arity(), 2);
        assert!(c.relation(RelationId::new(42)).is_err());
    }

    #[test]
    fn parallelism_and_window_updates() {
        let mut c = catalog();
        let r = c.relation_id("R").unwrap();
        c.set_parallelism(r, 0).unwrap();
        assert_eq!(c.relation(r).unwrap().parallelism, 1, "clamped to 1");
        c.set_parallelism(r, 8).unwrap();
        assert_eq!(c.relation(r).unwrap().parallelism, 8);
        c.set_window(r, Window::secs(60)).unwrap();
        assert_eq!(c.relation(r).unwrap().window, Window::secs(60));
        assert!(c.set_parallelism(RelationId::new(99), 2).is_err());
    }

    #[test]
    fn cached_layout_matches_schema() {
        let c = catalog();
        let s = c.relation_by_name("S").unwrap();
        assert_eq!(s.layout.relation(), s.id);
        assert_eq!(s.layout.width(), s.schema.arity());
        for (i, attr) in s.schema.attributes.iter().enumerate() {
            assert_eq!(
                s.layout.slot_of(&attr.name),
                Some(AttrId::new(i as u32)),
                "{}",
                attr.name
            );
        }
        assert_eq!(s.layout.slot_of("zzz"), None);
    }

    #[test]
    fn overwide_relation_is_rejected() {
        let mut c = Catalog::new();
        let attrs: Vec<String> = (0..65).map(|i| format!("a{i}")).collect();
        let err = c.register("wide", attrs, Window::secs(1), 1).unwrap_err();
        assert!(matches!(err, ClashError::Config(_)));
    }

    #[test]
    fn iter_returns_registration_order() {
        let c = catalog();
        let names: Vec<&str> = c.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["R", "S", "T"]);
    }

    #[test]
    fn unknown_attr_name_falls_back_to_id_notation() {
        let c = catalog();
        let bogus = AttrRef::new(RelationId::new(9), AttrId::new(0));
        assert_eq!(c.attr_name(&bogus), bogus.to_string());
    }
}
