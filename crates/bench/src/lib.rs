//! # clash-bench
//!
//! Experiment drivers that regenerate every figure of the paper's
//! evaluation (Section VII). Each driver returns plain data rows; the
//! binaries in `src/bin/` print them as tables (and JSON), and the
//! criterion benches in `benches/` time the underlying operations.
//!
//! | Paper figure | Driver |
//! |---|---|
//! | Fig. 7b/7c/7d (throughput / memory / latency, 5 & 10 queries) | [`fig7::run_fig7`] |
//! | Fig. 8a/8b (adaptive vs. static execution) | [`fig8::run_fig8`] |
//! | Fig. 9a–9d (probe cost & problem size vs. nQ) | [`fig9::run_probe_cost_sweep`] |
//! | Fig. 9e (optimization runtime vs. nQ) | [`fig9::run_probe_cost_sweep`] (runtime column) |
//! | Fig. 9f (optimization runtime vs. query size) | [`fig9::run_query_size_sweep`] |
//! | Ablations (DESIGN.md) | [`ablation`] |

pub mod ablation;
pub mod allocs;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hotpath;

/// Every binary and test of this crate counts allocations (one relaxed
/// atomic per allocation), so the hotpath bench can report allocations
/// per ingested tuple — see [`allocs`].
#[global_allocator]
static GLOBAL_ALLOCATOR: allocs::CountingAllocator = allocs::CountingAllocator;

/// Prints a slice of serializable rows as aligned text plus one JSON line
/// per row (machine-readable output consumed by EXPERIMENTS.md tooling).
pub fn print_rows<T: serde::Serialize + std::fmt::Debug>(title: &str, rows: &[T]) {
    println!("== {title} ==");
    for row in rows {
        match serde_json::to_string(row) {
            Ok(json) => println!("{json}"),
            Err(_) => println!("{row:?}"),
        }
    }
    println!();
}
