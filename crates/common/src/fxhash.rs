//! A no-dependency FxHash-style hasher for the state-layer hot maps.
//!
//! The store indexes, the partition router and the pending-prober index
//! hash **trusted, internally generated keys** (attribute references,
//! join-key values, epoch numbers) on every ingested tuple. `std`'s
//! default SipHash is DoS-resistant but pays ~1–2 ns/byte of keyed
//! mixing the state layer does not need: no key that reaches these maps
//! is attacker-controlled (queries, plans and generated data all come
//! from the deployment itself), so a fast multiply–xor hash is safe.
//! This is the same trade rustc makes with its `FxHasher`; the constant
//! and round function below follow that design (a Fibonacci-style
//! multiplicative round per machine word).
//!
//! The hasher is deterministic across processes, which the partition
//! router additionally *relies* on: two engines routing the same value
//! must pick the same partition (see [`crate::value::Value`]'s `Hash`,
//! which feeds this hasher slot tags and payload words).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplicative mixing constant (64-bit golden-ratio derivative, the
/// same constant rustc's FxHasher uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx mixing round: rotate, xor the new word in, multiply.
#[inline]
fn round(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Fast non-cryptographic hasher for trusted keys (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut hash = self.hash;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            hash = round(hash, u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the tail length in so "ab" + "c" != "a" + "bc".
            hash = round(hash, u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
        self.hash = hash;
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.hash = round(self.hash, u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.hash = round(self.hash, u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.hash = round(self.hash, u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.hash = round(self.hash, i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.hash = round(round(self.hash, i as u64), (i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.hash = round(self.hash, i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructible).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed by the Fx hasher — drop-in for `std::collections::
/// HashMap` on hot paths with trusted keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` over the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one value with the Fx hasher (the one-shot form the partition
/// router uses).
#[inline]
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn hashing_is_deterministic_and_discriminating() {
        assert_eq!(fx_hash(&Value::Int(42)), fx_hash(&Value::Int(42)));
        assert_ne!(fx_hash(&Value::Int(42)), fx_hash(&Value::Int(43)));
        assert_ne!(fx_hash(&Value::Int(1)), fx_hash(&Value::Float(1.0)));
        assert_eq!(fx_hash(&Value::str("abc")), fx_hash(&Value::str("abc")));
        assert_ne!(fx_hash(&Value::str("abc")), fx_hash(&Value::str("abd")));
    }

    #[test]
    fn byte_stream_framing_distinguishes_splits() {
        // The tail fold keeps differently-split concatenations apart.
        let mut a = FxHasher::default();
        a.write(b"abcdefgh");
        a.write(b"i");
        let mut b = FxHasher::default();
        b.write(b"abcdefghi");
        // Not required to differ by the Hasher contract, but the strings
        // fed through `Hash` include length prefixes; the raw check here
        // just pins the implementation's framing behavior.
        assert_ne!(fx_hash(&"ab".to_string()), fx_hash(&"a".to_string()));
        let _ = (a.finish(), b.finish());
    }

    #[test]
    fn maps_and_sets_work_with_the_alias_types() {
        let mut map: FxHashMap<Value, usize> = FxHashMap::default();
        map.insert(Value::Int(1), 10);
        map.insert(Value::str("x"), 20);
        assert_eq!(map.get(&Value::Int(1)), Some(&10));
        assert_eq!(map.get(&Value::str("x")), Some(&20));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
    }

    #[test]
    fn spread_over_small_domains_is_usable_for_partitioning() {
        // Sequential integer keys must not collapse onto one partition.
        for parallelism in [2usize, 4, 8] {
            let mut seen = vec![0usize; parallelism];
            for i in 0..1_000i64 {
                let h = fx_hash(&Value::Int(i)) as usize % parallelism;
                seen[h] += 1;
            }
            for (p, count) in seen.iter().enumerate() {
                assert!(
                    *count > 1_000 / parallelism / 4,
                    "partition {p} starved: {count} of 1000 at parallelism {parallelism}"
                );
            }
        }
    }
}
