//! The [`ParallelEngine`] coordinator: ingests tuples, routes them to the
//! worker threads, runs drain/collection barriers at epoch boundaries and
//! aggregates per-worker metrics and statistics deltas.
//!
//! The engine is split in two layers: [`EngineCore`] owns every piece of
//! coordinator state (plan, worker channels, aggregates) behind one
//! mutex, and [`ParallelEngine`] is the public façade over it. The split
//! exists so that *two* threads can act as the control plane: the thread
//! owning the `ParallelEngine` handle, and the background
//! [`crate::parallel::driver::EpochDriver`] that fires the adaptive
//! controller off the stream clock for source-fed deployments (where the
//! owning thread may never call `ingest` at all). Producer pushes through
//! [`SourceHandle`]s never touch the core lock — they only pass the
//! quiesce gate and their own slot lock — so ingestion scales
//! independently of control-plane activity.

use crate::adaptive::{AdaptiveController, ControllerDecision};
use crate::engine::{EngineConfig, EngineControl, ResultSink};
use crate::ingest::flusher::Flusher;
use crate::ingest::shared::ControlShared;
use crate::ingest::{SourceHandle, SourceSlot};
use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::parallel::driver::EpochDriver;
use crate::parallel::router::{route_root, symmetric_stores, symmetric_stores_multi, RootHandle};
use crate::parallel::shard::{StoreDetail, StoreLayout};
use crate::parallel::worker::{run_worker, WorkerAck, WorkerCtx, WorkerMsg};
use crate::stats_collector::StatsCollector;
use clash_catalog::{Catalog, Statistics};
use clash_common::{
    chrome_trace_json, trace_clock_us, ArenaStats, ClashError, Epoch, EpochConfig, Exposition,
    FxHashSet, LatencyHistogram, QueryId, Result, StoreId, Timestamp, TraceEvent, TraceEventKind,
    TraceRing, Tuple,
};
use clash_optimizer::TopologyPlan;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

/// Sharded, multi-threaded execution engine for a
/// [`TopologyPlan`]: the parallel counterpart of
/// [`crate::engine::LocalEngine`].
///
/// One worker thread is spawned per shard; store partitions (the
/// catalog's `parallelism` field) map onto workers round-robin, so with as
/// many workers as the widest store's parallelism every partition gets a
/// dedicated thread, as in the paper's Storm deployment. Tuples are routed
/// by [`crate::store::partition_hash`] over mpsc channels; per-worker
/// metrics and statistics deltas are merged at collection barriers
/// (`flush`/`snapshot`/`install_plan`), so the adaptive controller and the
/// ILP re-optimization pipeline observe the same aggregate state as with
/// the sequential engine.
///
/// Result-set equivalence with `LocalEngine` on identical input is
/// maintained by the sequence-number probe guard and the symmetric
/// pending-prober mechanism documented in [`crate::parallel`]; plan
/// installs are lossless under concurrent producers via the quiesce
/// protocol documented in [`crate::ingest`].
pub struct ParallelEngine {
    shared: Arc<ControlShared>,
    senders: Vec<Sender<WorkerMsg>>,
    config: EngineConfig,
    workers: usize,
    core: Arc<Mutex<EngineCore>>,
    /// Background time-trigger flusher sweeping all registered slots.
    flusher: Option<Flusher>,
    /// Background control-plane thread firing the adaptive controller at
    /// epoch boundaries of the stream clock (see
    /// [`Self::start_epoch_driver`]).
    driver: Option<EpochDriver>,
    /// Error of an already-stopped driver, kept so
    /// [`Self::epoch_driver_error`] still answers after shutdown or a
    /// driver replacement (post-mortem inspection).
    driver_error: Option<ClashError>,
}

/// All coordinator state, owned by whichever control-plane thread holds
/// the lock (the engine handle's owner or the epoch driver).
pub(crate) struct EngineCore {
    catalog: Arc<Catalog>,
    config: EngineConfig,
    workers: usize,
    plan: Arc<TopologyPlan>,
    symmetric: Arc<FxHashSet<StoreId>>,
    senders: Vec<Sender<WorkerMsg>>,
    ack_rx: Receiver<WorkerAck>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<ControlShared>,
    /// Sources handed out so far (drives the multi-producer widening).
    sources_opened: usize,
    /// Whether the widened multi-producer symmetric set is installed.
    multi_symmetric: bool,
    /// The coordinator's own producer slot: micro-batch buffer coalescing
    /// per-ingest sends across ingests. Registered in the shared registry
    /// so the flusher and admission sweeps cover it like any source's.
    coord_buf: Arc<SourceSlot>,
    metrics: EngineMetrics,
    stats: StatsCollector,
    results: Vec<(QueryId, Tuple)>,
    sink: Option<ResultSink>,
    forward_results: bool,
    max_ts: Timestamp,
    since_expiry: u64,
    token: u64,
    worker_store_totals: Vec<(usize, usize)>,
    worker_busy: Vec<StdDuration>,
    /// Wall-clock span from first ingest after a barrier to barrier end.
    active_since: Option<Instant>,
    wall_busy: StdDuration,
    /// The coordinator's own trace lane (tid 0; workers take 1..=N).
    trace: TraceRing,
    /// Worker trace events absorbed at barriers, bounded at
    /// `trace_capacity * (workers + 1)` (oldest dropped first, matching
    /// the rings' own overwrite policy).
    trace_buf: Vec<TraceEvent>,
    /// Per-shard ingest-to-emit latency, merged from each worker's delta
    /// at barriers (the per-query view lives in `metrics`).
    worker_latency: Vec<LatencyHistogram>,
    /// Per-worker-thread arena counters as of the last barrier.
    worker_arena: Vec<ArenaStats>,
    /// Per-store breakdown per worker as of the last barrier.
    worker_stores: Vec<Vec<StoreDetail>>,
    /// Plan installs performed over the engine's lifetime.
    installs: u64,
}

impl std::fmt::Debug for ParallelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEngine")
            .field("workers", &self.workers)
            .field("adaptive", &self.driver.is_some())
            .finish()
    }
}

impl ParallelEngine {
    /// Creates an engine executing `plan` across `workers` threads.
    /// `workers == 0` selects one worker per partition of the widest store
    /// in the plan (honoring the catalog's parallelism).
    pub fn new(catalog: Catalog, plan: TopologyPlan, config: EngineConfig, workers: usize) -> Self {
        let workers = if workers == 0 {
            auto_workers(&plan)
        } else {
            workers
        };
        let plan = Arc::new(plan);
        let layout = Arc::new(StoreLayout::derive(&catalog, &plan));
        let symmetric = Arc::new(symmetric_stores(&plan));
        let shared = Arc::new(ControlShared::new(workers));
        let (ack_tx, ack_rx) = channel();
        let mut senders = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let forward_results = config.collect_results;
        let mut handles = Vec::with_capacity(workers);
        for (index, rx) in receivers.into_iter().enumerate() {
            let ctx = WorkerCtx {
                index,
                workers,
                senders: senders.clone(),
                ack_tx: ack_tx.clone(),
                progress: shared.progress.clone(),
                symmetric: symmetric.clone(),
                epoch: config.epoch,
                freeze_after: config.freeze_after_epochs,
                plan: plan.clone(),
                layout: layout.clone(),
                forward_results,
                trace_capacity: config.trace_capacity,
                depth: shared.depth.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("clash-worker-{index}"))
                .spawn(move || run_worker(ctx, rx))
                .expect("spawn worker thread");
            handles.push(handle);
        }
        let coord_buf = Arc::new(SourceSlot::new(
            plan.clone(),
            workers,
            config.micro_batch,
            config.epoch,
            shared.depth.clone(),
        ));
        shared
            .sources
            .lock()
            .expect("source registry")
            .push(coord_buf.clone());
        // The flusher runs whenever the time trigger is enabled, so even
        // a fully idle producer (the coordinator included) cannot strand
        // buffered deliveries past `micro_batch_max_delay`.
        let flusher = (config.micro_batch_max_delay > StdDuration::ZERO).then(|| {
            Flusher::spawn(
                shared.clone(),
                senders.clone(),
                config.micro_batch_max_delay,
            )
        });
        let core = EngineCore {
            catalog: Arc::new(catalog),
            config,
            workers,
            plan,
            symmetric,
            senders: senders.clone(),
            ack_rx,
            handles,
            shared: shared.clone(),
            sources_opened: 0,
            multi_symmetric: false,
            coord_buf,
            metrics: EngineMetrics::default(),
            stats: StatsCollector::new(config.epoch.length),
            results: Vec::new(),
            sink: None,
            forward_results,
            max_ts: Timestamp::ZERO,
            since_expiry: 0,
            token: 0,
            worker_store_totals: vec![(0, 0); workers],
            worker_busy: vec![StdDuration::ZERO; workers],
            active_since: None,
            wall_busy: StdDuration::ZERO,
            trace: TraceRing::new(config.trace_capacity, 0),
            trace_buf: Vec::new(),
            worker_latency: vec![LatencyHistogram::new(); workers],
            worker_arena: vec![ArenaStats::default(); workers],
            worker_stores: vec![Vec::new(); workers],
            installs: 0,
        };
        ParallelEngine {
            shared,
            senders,
            config,
            workers,
            core: Arc::new(Mutex::new(core)),
            flusher,
            driver: None,
            driver_error: None,
        }
    }

    /// Locks the core for one control-plane operation. Poison recovery:
    /// the core's state stays usable after a panicking barrier (the
    /// shutdown path must still be able to join the workers).
    fn core(&self) -> std::sync::MutexGuard<'_, EngineCore> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Epoch configuration in use.
    pub fn epoch_config(&self) -> EpochConfig {
        self.config.epoch
    }

    /// Registers a sink invoked (at barriers) for every emitted result.
    /// Must be called before streaming for complete coverage.
    pub fn set_sink(&mut self, sink: ResultSink) {
        self.core().set_sink(sink);
    }

    /// Opens a concurrent ingestion source: the returned [`SourceHandle`]
    /// can be moved to a producer thread and pushed independently of this
    /// engine handle (and of every other source). Opening a second
    /// producer switches the workers to the widened multi-producer
    /// symmetric set (see [`crate::ingest`]); with a single source the
    /// delivery order stays serial and the narrow set suffices.
    pub fn open_source(&mut self) -> SourceHandle {
        self.core().open_source()
    }

    /// Subscribes to the result stream: every join result emitted from
    /// now on is delivered on the returned channel *as it is produced* on
    /// the workers — between barriers, not only at epoch ends. The
    /// channel disconnects when the engine shuts down. A later call
    /// replaces the subscription (the previous receiver disconnects).
    ///
    /// The channel is unbounded by design: a bounded one would block
    /// workers against a stalled subscriber, and the engine thread
    /// blocking in a barrier while holding the receiver would then
    /// deadlock. The `max_inflight_roots` gate bounds *input*; the
    /// subscriber must keep pace with the *output* it asked for (join
    /// amplification means one admitted root can emit many results).
    pub fn subscribe(&mut self) -> Receiver<(QueryId, Tuple)> {
        self.core().subscribe()
    }

    /// Number of ingestion sources opened over the engine's lifetime
    /// (dropped handles included).
    pub fn sources_open(&self) -> usize {
        self.core().sources_opened
    }

    /// Roots currently in flight: allocated sequence numbers not yet
    /// covered by the completion watermark (what the
    /// `max_inflight_roots` backpressure gate bounds).
    pub fn inflight(&self) -> u64 {
        self.shared
            .sequenced()
            .saturating_sub(self.shared.progress.watermark())
    }

    /// Roots sequenced so far: the realized length of the engine's serial
    /// order (every `ingest` and every `SourceHandle::push` allocated one
    /// position).
    pub fn sequenced(&self) -> u64 {
        self.shared.sequenced()
    }

    /// Ingests one input tuple, routing it to the owning shards. Join
    /// results materialize asynchronously on the workers; they are counted
    /// and collected at the next barrier ([`Self::flush`] /
    /// [`Self::snapshot`]), so this always returns 0 pending results.
    pub fn ingest(&mut self, relation: clash_common::RelationId, tuple: Tuple) -> Result<u64> {
        self.core().ingest(relation, tuple)
    }

    /// Drains all in-flight work and merges every worker's deltas: the
    /// epoch barrier. After `flush` the coordinator's metrics, statistics
    /// and collected results reflect everything ingested so far. Panics
    /// with a diagnostic if a worker thread died.
    pub fn flush(&mut self) {
        self.core().flush();
    }

    /// Expires out-of-window tuples from every shard (drains first so the
    /// count is deterministic).
    pub fn expire_stores(&mut self) -> usize {
        self.core().expire_stores()
    }

    /// Installs (or replaces) the plan via the quiesce protocol (see
    /// [`crate::ingest`]): producer admission is paused, residual
    /// old-plan batches are flushed, the workers drain to the completion
    /// barrier, the new plan is installed on every worker and every
    /// source slot, and producers resume against it. Racing pushes block
    /// briefly at the quiesce gate instead of being dropped. Shard state
    /// with matching descriptor keys is carried over, mirroring the
    /// sequential engine's rewiring (Section VI-A/B).
    ///
    /// Returns the install position: the number of roots sequenced before
    /// the new plan took effect. Every root at or below it was fully
    /// processed under the old plan; every later root routes against the
    /// new plan — replaying the realized order through `LocalEngine` with
    /// the same plans installed at the same positions reproduces the
    /// result multiset exactly. Errors (instead of panicking mid-install)
    /// when the engine has shut down or a worker thread died; after a
    /// worker-death error the engine should be shut down.
    pub fn install_plan(&mut self, plan: TopologyPlan) -> Result<u64> {
        self.core().install_plan(plan)
    }

    /// The currently installed plan.
    pub fn plan(&self) -> Arc<TopologyPlan> {
        self.core().plan.clone()
    }

    /// Statistics snapshot for one epoch from the merged per-worker
    /// observations (what the adaptive controller consumes at barriers).
    pub fn stats_snapshot(&self, epoch: Epoch, prior: &Statistics) -> Statistics {
        self.core().stats.snapshot(epoch, prior)
    }

    /// Results collected up to the last barrier (requires
    /// `collect_results`). Order across workers is nondeterministic; sort
    /// before comparing.
    pub fn results(&self) -> Vec<(QueryId, Tuple)> {
        self.core().results.clone()
    }

    /// Clears collected results (between experiment phases).
    pub fn clear_results(&mut self) {
        self.core().results.clear();
    }

    /// Total tuples held across all shards (as of the last barrier).
    pub fn store_tuples(&self) -> usize {
        self.core().store_tuples()
    }

    /// Total bytes held across all shards (as of the last barrier).
    pub fn store_bytes(&self) -> usize {
        self.core().store_bytes()
    }

    /// Per-worker processing time accumulated so far (as of the last
    /// barrier). Shows how evenly the shards split the work — on a
    /// multi-core machine the wall-clock win tracks this distribution.
    pub fn worker_busy(&self) -> Vec<StdDuration> {
        self.core().worker_busy.clone()
    }

    /// Runs a full barrier and returns the aggregated metrics snapshot.
    /// `busy_secs` (and thus `throughput_tps`) is wall-clock time between
    /// the first ingest and the end of the drain — the end-to-end rate an
    /// external observer sees, which is the fair comparison against the
    /// sequential engine's processing time.
    pub fn snapshot(&mut self) -> MetricsSnapshot {
        self.core().snapshot()
    }

    /// Resets metrics and collected results without touching shard state.
    pub fn reset_metrics(&mut self) {
        self.core().reset_metrics();
    }

    /// Runs a barrier and renders the engine's telemetry page
    /// (Prometheus-style text): engine counters, per-query latency
    /// quantiles, per-shard latency quantiles, per-worker busy time and
    /// queue depth, per-store size/index gauges, arena counters,
    /// in-flight roots and plan installs.
    pub fn telemetry_snapshot(&mut self) -> String {
        self.core().telemetry_snapshot()
    }

    /// Runs a barrier and drains every thread's trace-event ring (the
    /// coordinator's lane included), merged and sorted by timestamp.
    /// Empty when `EngineConfig::trace_capacity` is 0.
    pub fn drain_trace(&mut self) -> Vec<clash_common::TraceEvent> {
        self.core().drain_trace()
    }

    /// [`Self::drain_trace`] rendered as Chrome trace-event JSON (load it
    /// in `chrome://tracing` or Perfetto).
    pub fn trace_json(&mut self) -> String {
        self.core().trace_json()
    }

    /// Starts the control-plane epoch driver: a background thread that
    /// watches the stream clock (advanced by every `ingest` and every
    /// `SourceHandle::push`) and, at each epoch boundary, runs a
    /// collection barrier and fires `controller.on_epoch` — so adaptive
    /// re-optimization works for source-fed deployments with zero
    /// coordinator-thread ingests (Fig. 5/8). The controller is shared:
    /// the caller keeps its handle for query registration and
    /// reconfiguration counts. A second call replaces the previous
    /// driver. The driver stops at engine shutdown, or on the first
    /// engine error (worker death), recording it for
    /// [`Self::epoch_driver_error`].
    pub fn start_epoch_driver(&mut self, controller: Arc<Mutex<AdaptiveController>>) {
        if let Some(mut old) = self.driver.take() {
            old.stop();
            self.driver_error = self.driver_error.take().or_else(|| old.error());
        }
        self.driver = Some(EpochDriver::spawn(
            self.core.clone(),
            self.shared.clone(),
            controller,
            self.config.epoch,
            self.config.epoch_tick,
        ));
    }

    /// The error that stopped the epoch driver, if any. Answers both for
    /// the running driver and post-shutdown (the error outlives the
    /// driver thread, so reconfiguration failures stay diagnosable).
    pub fn epoch_driver_error(&self) -> Option<ClashError> {
        self.driver
            .as_ref()
            .and_then(|d| d.error())
            .or_else(|| self.driver_error.clone())
    }

    /// Drains all in-flight work (delivering outstanding results to the
    /// sink and the collected-results buffer), then stops and joins the
    /// epoch driver, every worker thread and the flusher. Called
    /// automatically on drop, so results produced after the last explicit
    /// barrier are not lost; calling it explicitly makes the final
    /// collection observable before the engine goes away. Idempotent; the
    /// engine is inert afterwards (barriers no-op, `ingest` and source
    /// pushes return [`ClashError::Shutdown`]).
    pub fn shutdown(&mut self) {
        // The driver may be mid-tick holding the core lock: stop it
        // before taking the lock ourselves (keeping any recorded error
        // for post-mortem inspection).
        if let Some(mut driver) = self.driver.take() {
            driver.stop();
            self.driver_error = self.driver_error.take().or_else(|| driver.error());
        }
        self.core().shutdown();
        if let Some(mut flusher) = self.flusher.take() {
            flusher.stop();
        }
    }
}

impl Drop for ParallelEngine {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Unwinding: skip the drain (it could panic again and abort);
            // just stop the threads.
            self.shared
                .shutdown
                .store(true, std::sync::atomic::Ordering::Release);
            if let Some(mut driver) = self.driver.take() {
                driver.stop();
            }
            self.core().coord_buf.flush_to(&self.senders);
            for s in &self.senders {
                let _ = s.send(WorkerMsg::Shutdown);
            }
            for handle in self.core().handles.drain(..) {
                let _ = handle.join();
            }
            if let Some(mut flusher) = self.flusher.take() {
                flusher.stop();
            }
            return;
        }
        // Drain in-flight batches first so results produced after the
        // last explicit barrier still reach the sink / results buffer.
        self.shutdown();
    }
}

impl EngineCore {
    /// Whether the engine has been shut down (workers joined).
    pub(crate) fn is_shutdown(&self) -> bool {
        self.handles.is_empty()
    }

    fn set_sink(&mut self, sink: ResultSink) {
        self.sink = Some(sink);
        self.forward_results = true;
        self.coord_buf.flush_to(&self.senders);
        for s in &self.senders {
            let _ = s.send(WorkerMsg::ForwardResults(true));
        }
    }

    fn open_source(&mut self) -> SourceHandle {
        // Everything the coordinator ingested so far must be enqueued
        // before the new source's first push can be.
        self.coord_buf.flush_to(&self.senders);
        if self.sources_opened >= 1 {
            self.widen_symmetric();
        }
        self.sources_opened += 1;
        let slot = Arc::new(SourceSlot::new(
            self.plan.clone(),
            self.workers,
            self.config.micro_batch,
            self.config.epoch,
            self.shared.depth.clone(),
        ));
        self.shared
            .sources
            .lock()
            .expect("source registry")
            .push(slot.clone());
        SourceHandle::new(
            slot,
            self.shared.clone(),
            self.senders.clone(),
            self.catalog.clone(),
            self.config.epoch,
            self.config.max_inflight_roots,
            self.config.micro_batch_max_delay,
        )
    }

    fn subscribe(&mut self) -> Receiver<(QueryId, Tuple)> {
        let (tx, rx) = channel();
        self.coord_buf.flush_to(&self.senders);
        for s in &self.senders {
            let _ = s.send(WorkerMsg::Subscribe(tx.clone()));
        }
        rx
    }

    /// Installs the widened multi-producer symmetric set on every worker.
    /// Safe mid-stream: the exactly-once pending-prober argument holds
    /// for any symmetric set, and the message is enqueued before any
    /// delivery of the producer that triggered the widening.
    fn widen_symmetric(&mut self) {
        if self.multi_symmetric {
            return;
        }
        self.multi_symmetric = true;
        self.symmetric = Arc::new(symmetric_stores_multi(&self.plan));
        self.coord_buf.flush_to(&self.senders);
        for s in &self.senders {
            let _ = s.send(WorkerMsg::SetSymmetric(self.symmetric.clone()));
        }
    }

    /// Backpressure gate of the coordinator's own ingest path (the
    /// source-side equivalent lives in [`SourceHandle`]).
    fn wait_admission(&mut self) {
        let cap = self.config.max_inflight_roots;
        if cap == 0 {
            return;
        }
        let mut since_liveness_check = Instant::now();
        loop {
            let inflight = self
                .shared
                .sequenced()
                .saturating_sub(self.shared.progress.watermark());
            if (inflight as usize) < cap {
                return;
            }
            // Any registered slot's buffered deliveries (our own
            // included) can be what the watermark is stuck on, and
            // sources keep admitting and buffering while we wait — sweep
            // every iteration (cheap when the buffers are empty), exactly
            // like the drain barrier's straggler sweep.
            self.flush_sources();
            self.shared
                .progress
                .wait_for_change(StdDuration::from_millis(1));
            if since_liveness_check.elapsed() >= StdDuration::from_secs(1) {
                since_liveness_check = Instant::now();
                if let Some(dead) = self.handles.iter().position(|h| h.is_finished()) {
                    panic!(
                        "parallel engine backpressure stalled: worker {dead} died \
                         (watermark {})",
                        self.shared.progress.watermark()
                    );
                }
            }
        }
    }

    fn ingest(&mut self, relation: clash_common::RelationId, tuple: Tuple) -> Result<u64> {
        if self.handles.is_empty() {
            return Err(ClashError::Shutdown);
        }
        if self.catalog.relation(relation).is_err() {
            return Err(ClashError::unknown(format!("relation {relation}")));
        }
        if self.sources_opened > 0 && !self.multi_symmetric {
            // The coordinator becomes a second concurrent producer beside
            // the open source: widen the symmetric set before this
            // delivery can race a source's.
            self.widen_symmetric();
        }
        self.wait_admission();
        if self.active_since.is_none() {
            self.active_since = Some(Instant::now());
        }
        let trace_started = if self.trace.enabled() {
            trace_clock_us()
        } else {
            0
        };
        let started = Instant::now();
        self.metrics.tuples_ingested += 1;
        self.max_ts = self.max_ts.max(tuple.ts);
        self.shared.advance_clock(tuple.ts.as_millis());
        let epoch = self.config.epoch.epoch_of(tuple.ts);
        self.stats.record_arrival(epoch, relation);

        let seq = self.shared.next_seq.fetch_add(1, Ordering::SeqCst);
        let root = RootHandle::new(seq, self.shared.progress.clone());
        {
            let mut inner = self.coord_buf.inner.lock().expect("coordinator buffer");
            route_root(
                &self.plan,
                self.workers,
                relation,
                &tuple,
                seq,
                &root,
                started,
                &mut self.metrics,
                &mut inner.buf,
            );
            // Micro-batching: ship the buffered deliveries only once the
            // size or time trigger fires (or at the next barrier/expiry),
            // coalescing many ingests into one channel message per worker.
            // The flusher thread sweeps this buffer too, covering the
            // idle-coordinator case this check cannot.
            if inner.buf.is_full() || inner.buf.is_stale(self.config.micro_batch_max_delay) {
                let buffered = inner.buf.len() as u64;
                if let Some(age) = inner.buf.flush(&self.senders) {
                    inner.metrics.flush_age.record(age);
                    self.trace
                        .record(TraceEventKind::Flush, buffered, age.as_micros() as u64);
                }
            }
        }
        self.trace.record_span(
            TraceEventKind::Route,
            trace_started,
            seq,
            u64::from(relation.0),
        );

        self.since_expiry += 1;
        if self.config.expire_every > 0 && self.since_expiry >= self.config.expire_every {
            // Keep channel order: buffered inserts must reach the workers
            // before the expiry that might otherwise run ahead of them.
            self.coord_buf.flush_to(&self.senders);
            for s in &self.senders {
                let _ = s.send(WorkerMsg::Expire { upto: self.max_ts });
            }
            self.since_expiry = 0;
        }
        Ok(0)
    }

    /// Flushes every registered slot's locally buffered deliveries to
    /// the workers — the coordinator's own micro-batch buffer and every
    /// open source (barrier prelude; re-run inside drain loops so a push
    /// that raced the first pass still ships).
    fn flush_sources(&self) {
        for slot in self.shared.slots() {
            slot.flush_to(&self.senders);
        }
    }

    /// Drains every source slot's metrics/statistics deltas into the
    /// coordinator aggregates and prunes slots whose handle was dropped
    /// and whose buffer is empty.
    fn drain_source_deltas(&mut self) {
        let slots = self.shared.slots();
        let mut any_closed = false;
        for slot in &slots {
            let mut inner = slot.inner.lock().expect("source slot");
            inner.flush(&self.senders);
            self.metrics.merge(&std::mem::take(&mut inner.metrics));
            self.stats.merge(inner.stats.take_delta());
            self.max_ts = self.max_ts.max(inner.max_ts);
            any_closed |= inner.closed;
        }
        if any_closed {
            self.shared
                .sources
                .lock()
                .expect("source registry")
                .retain(|slot| {
                    let inner = slot.inner.lock().expect("source slot");
                    !(inner.closed && inner.buf.is_empty())
                });
        }
    }

    /// The drain loop behind every barrier and the shutdown path. Ships
    /// the coordinator's and every source's buffered deliveries, then
    /// waits for the completion watermark to cover every root allocated
    /// so far. Returns `false` (instead of panicking) when a worker died
    /// or `deadline` elapsed.
    fn try_drain(&mut self, deadline: Option<StdDuration>) -> bool {
        // Ship any micro-batched deliveries first (the coordinator's own
        // slot included), or their roots could never complete and the
        // drain would stall.
        self.flush_sources();
        let last = self.shared.sequenced();
        let started = Instant::now();
        let mut since_liveness_check = Instant::now();
        while self.shared.progress.watermark() < last {
            self.shared
                .progress
                .wait_for_change(StdDuration::from_millis(1));
            // A producer may have allocated a sequence number covered by
            // `last` but buffered its deliveries after the prelude flush;
            // keep sweeping so those roots can complete.
            self.flush_sources();
            if deadline.is_some_and(|d| started.elapsed() >= d) {
                return false;
            }
            if since_liveness_check.elapsed() >= StdDuration::from_secs(1) {
                since_liveness_check = Instant::now();
                if self.handles.iter().any(|h| h.is_finished()) {
                    return false;
                }
            }
        }
        true
    }

    /// Runs a collection round: every worker replies with its deltas,
    /// which are merged into the coordinator aggregates. Must only be
    /// called after a successful drain. Returns the number of tuples
    /// removed when `expire_upto` is set.
    fn collect(&mut self, expire_upto: Option<Timestamp>) -> Result<usize> {
        self.collect_inner(expire_upto, false)
    }

    fn collect_inner(&mut self, expire_upto: Option<Timestamp>, lenient: bool) -> Result<usize> {
        self.drain_source_deltas();
        self.token += 1;
        let token = self.token;
        let trace_started = if self.trace.enabled() {
            trace_clock_us()
        } else {
            0
        };
        for s in &self.senders {
            if s.send(WorkerMsg::Collect { token, expire_upto }).is_err() && !lenient {
                return Err(ClashError::Runtime(
                    "collection barrier failed: a worker thread is gone".into(),
                ));
            }
        }
        let expired = self.await_acks(token, lenient)?;
        self.trace.record_span(
            TraceEventKind::Barrier,
            trace_started,
            token,
            expired as u64,
        );
        Ok(expired)
    }

    /// Receives one ack per worker for `token`, merging all deltas. In
    /// lenient mode (shutdown path) a dead worker aborts the round
    /// without error.
    fn await_acks(&mut self, token: u64, lenient: bool) -> Result<usize> {
        let mut acked = vec![false; self.workers];
        let mut expired = 0;
        let timeout = if lenient {
            StdDuration::from_secs(5)
        } else {
            StdDuration::from_secs(30)
        };
        while acked.iter().any(|a| !a) {
            match self.ack_rx.recv_timeout(timeout) {
                Ok(ack) => {
                    assert_eq!(ack.token, token, "barrier tokens are strictly ordered");
                    acked[ack.worker] = true;
                    expired += ack.expired;
                    self.worker_busy[ack.worker] += ack.metrics.busy;
                    // Per-shard latency view: fold this worker's delta in
                    // before the per-query merge consumes the histograms.
                    self.worker_latency[ack.worker].merge(&ack.metrics.combined_latency());
                    self.metrics.merge(&ack.metrics);
                    self.stats.merge(ack.stats);
                    self.worker_store_totals[ack.worker] = (ack.store_tuples, ack.store_bytes);
                    self.worker_arena[ack.worker] = ack.arena;
                    self.worker_stores[ack.worker] = ack.per_store;
                    self.absorb_trace(ack.trace);
                    for (query, tuple) in ack.results {
                        if let Some(sink) = &mut self.sink {
                            sink(query, &tuple);
                        }
                        if self.config.collect_results {
                            self.results.push((query, tuple));
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if lenient {
                        break;
                    }
                    return Err(ClashError::Runtime(
                        "parallel engine barrier timed out: a worker thread died".into(),
                    ));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if lenient {
                        break;
                    }
                    return Err(ClashError::Runtime(
                        "parallel engine barrier failed: all workers gone".into(),
                    ));
                }
            }
        }
        Ok(expired)
    }

    /// The fallible epoch barrier: drain + collect. `Ok(())` when the
    /// engine has already shut down (barriers are no-ops then).
    pub(crate) fn try_flush(&mut self) -> Result<()> {
        if self.handles.is_empty() {
            return Ok(());
        }
        if !self.try_drain(None) {
            return Err(ClashError::Runtime(format!(
                "parallel engine drain barrier failed: a worker thread died \
                 (watermark {})",
                self.shared.progress.watermark()
            )));
        }
        self.collect(None)?;
        if let Some(started) = self.active_since.take() {
            self.wall_busy += started.elapsed();
        }
        Ok(())
    }

    /// The panicking epoch barrier of the owning thread's API (the
    /// driver uses [`Self::try_flush`] and stops on error instead).
    pub(crate) fn flush(&mut self) {
        if let Err(e) = self.try_flush() {
            panic!("{e}");
        }
    }

    fn expire_stores(&mut self) -> usize {
        if self.handles.is_empty() {
            return 0; // already shut down
        }
        if !self.try_drain(None) {
            panic!(
                "parallel engine drain barrier failed: a worker thread died \
                 (watermark {})",
                self.shared.progress.watermark()
            );
        }
        // Fold the source slots' stream clocks in before computing the
        // horizon: on source-fed streams `self.max_ts` only advances when
        // deltas are drained, and the expiry horizon must cover
        // everything pushed so far.
        self.drain_source_deltas();
        let expired = self.collect(Some(self.max_ts)).expect("expiry barrier");
        if let Some(started) = self.active_since.take() {
            self.wall_busy += started.elapsed();
        }
        expired
    }

    /// The quiesced plan install (see `ParallelEngine::install_plan`).
    pub(crate) fn install_plan(&mut self, plan: TopologyPlan) -> Result<u64> {
        if self.handles.is_empty() {
            return Err(ClashError::Shutdown);
        }
        // Phase 0 — static verification: an invalid plan is rejected
        // before anything is quiesced, so the running plan and every
        // in-flight tuple are untouched by the failed install.
        if let Err(e) = clash_analyzer::gate(&self.catalog, &plan) {
            self.metrics.plan_rejections += 1;
            return Err(e);
        }
        // Phase 1 — quiesce: pause admission on every producer and wait
        // for in-flight pushes to finish routing. The guard resumes
        // admission when dropped, so every exit path (including errors)
        // releases blocked producers. (Local Arc clone: the guard must
        // not borrow `self` across the mutating phases below.)
        self.trace.record(TraceEventKind::QuiesceBegin, 0, 0);
        let shared = self.shared.clone();
        let quiesced = shared.gate.quiesce();
        // Phase 2 — flush residual old-plan batches and drain the workers
        // to the completion barrier: every sequenced root is now fully
        // processed under the old plan, and its results are collected.
        if !self.try_drain(None) {
            return Err(ClashError::Runtime(format!(
                "plan install aborted: a worker thread died during the quiesce \
                 drain (watermark {})",
                self.shared.progress.watermark()
            )));
        }
        self.collect(None)?;
        if let Some(started) = self.active_since.take() {
            self.wall_busy += started.elapsed();
        }
        let install_seq = self.shared.sequenced();
        self.trace
            .record(TraceEventKind::QuiesceEnd, install_seq, 0);
        // Phase 3 — install: swap the plan on the coordinator, on every
        // source slot (their buffers are empty after the drain) and on
        // every worker, then wait for the install acks.
        let plan = Arc::new(plan);
        let layout = Arc::new(StoreLayout::derive(&self.catalog, &plan));
        self.symmetric = Arc::new(if self.multi_symmetric {
            symmetric_stores_multi(&plan)
        } else {
            symmetric_stores(&plan)
        });
        self.plan = plan.clone();
        for slot in self.shared.slots() {
            let mut inner = slot.inner.lock().expect("source slot");
            debug_assert!(
                inner.buf.is_empty(),
                "source slot still buffered after quiesce drain"
            );
            inner.flush(&self.senders);
            inner.plan = plan.clone();
        }
        self.token += 1;
        let token = self.token;
        for s in &self.senders {
            if s.send(WorkerMsg::Install {
                token,
                plan: plan.clone(),
                layout: layout.clone(),
                symmetric: self.symmetric.clone(),
            })
            .is_err()
            {
                return Err(ClashError::Runtime(
                    "plan install failed: a worker thread is gone (shut the \
                     engine down)"
                        .into(),
                ));
            }
        }
        self.await_acks(token, false).map_err(|e| {
            ClashError::Runtime(format!(
                "plan install failed mid-reconfiguration ({e}); the engine \
                 should be shut down"
            ))
        })?;
        self.installs += 1;
        self.trace.record(
            TraceEventKind::PlanInstall,
            install_seq,
            self.plan.stores.len() as u64,
        );
        // Phase 4 — resume: blocked pushes proceed against the new plan.
        drop(quiesced);
        Ok(install_seq)
    }

    fn store_tuples(&self) -> usize {
        self.worker_store_totals.iter().map(|(t, _)| t).sum()
    }

    fn store_bytes(&self) -> usize {
        self.worker_store_totals.iter().map(|(_, b)| b).sum()
    }

    fn snapshot(&mut self) -> MetricsSnapshot {
        self.flush();
        let busy = self.wall_busy.as_secs_f64();
        MetricsSnapshot {
            tuples_ingested: self.metrics.tuples_ingested,
            tuples_sent: self.metrics.tuples_sent,
            broadcasts: self.metrics.broadcasts,
            probes: self.metrics.probes,
            results: self
                .metrics
                .results
                .iter()
                .map(|(q, n)| (q.0, *n))
                .collect(),
            latency: self.metrics.latency(),
            latency_per_query: self.metrics.latency_per_query_stats(),
            store_bytes: self.store_bytes(),
            store_tuples: self.store_tuples(),
            num_stores: self.plan.num_stores(),
            busy_secs: busy,
            throughput_tps: if busy > 0.0 {
                self.metrics.tuples_ingested as f64 / busy
            } else {
                0.0
            },
        }
    }

    fn reset_metrics(&mut self) {
        self.flush();
        self.metrics = EngineMetrics::default();
        self.results.clear();
        self.wall_busy = StdDuration::ZERO;
        self.worker_busy = vec![StdDuration::ZERO; self.workers];
        self.worker_latency = vec![LatencyHistogram::new(); self.workers];
    }

    /// Absorbs one worker's trace delta, dropping the oldest buffered
    /// events once the buffer exceeds one ring's worth per thread lane.
    fn absorb_trace(&mut self, events: Vec<TraceEvent>) {
        if events.is_empty() {
            return;
        }
        self.trace_buf.extend(events);
        let cap = self.config.trace_capacity * (self.workers + 1);
        if self.trace_buf.len() > cap {
            let excess = self.trace_buf.len() - cap;
            self.trace_buf.drain(..excess);
        }
    }

    /// Records the epoch-driver's boundary observation on the
    /// coordinator's trace lane.
    pub(crate) fn record_epoch_tick(&mut self, epoch: Epoch) {
        self.trace.record(TraceEventKind::EpochTick, epoch.0, 0);
    }

    /// Records an adaptive-controller evaluation (cost-model output and
    /// whether a reconfiguration was installed) on the coordinator's lane.
    pub(crate) fn record_controller_decision(&mut self, decision: &ControllerDecision) {
        self.trace.record(
            TraceEventKind::ControllerDecision,
            (decision.shared_cost * 1000.0) as u64,
            u64::from(decision.installed),
        );
    }

    /// Runs a barrier (pulling every worker's ring) and drains all trace
    /// events accumulated so far, merged across lanes and sorted by
    /// timestamp. Returns an empty vector when tracing is disabled.
    pub(crate) fn drain_trace(&mut self) -> Vec<TraceEvent> {
        if self.config.trace_capacity > 0 && !self.handles.is_empty() {
            self.flush();
        }
        let mut events = std::mem::take(&mut self.trace_buf);
        events.extend(self.trace.drain());
        events.sort_by_key(|e| e.ts_us);
        events
    }

    /// [`Self::drain_trace`] rendered as Chrome trace-event JSON.
    pub(crate) fn trace_json(&mut self) -> String {
        let events = self.drain_trace();
        chrome_trace_json(&events)
    }

    /// Runs a barrier and renders the telemetry page: the shared engine /
    /// store / arena sections plus the parallel runtime's own gauges
    /// (per-shard latency quantiles, per-worker busy time and queue
    /// depth, in-flight roots, plan installs).
    pub(crate) fn telemetry_snapshot(&mut self) -> String {
        if !self.handles.is_empty() {
            self.flush();
        }
        let mut page = Exposition::new();
        crate::exposition::engine_sections(&mut page, &self.metrics);

        page.declare(
            "clash_shard_latency_us",
            "Ingest-to-emit latency per worker shard (µs).",
            "summary",
        );
        for (worker, hist) in self.worker_latency.iter().enumerate() {
            page.quantiles(
                "clash_shard_latency_us",
                &[("worker", &worker.to_string())],
                hist,
            );
        }
        page.declare(
            "clash_worker_busy_seconds",
            "Processing time accumulated per worker thread.",
            "gauge",
        );
        page.declare(
            "clash_worker_queue_depth",
            "Deliveries enqueued to a worker and not yet processed.",
            "gauge",
        );
        for worker in 0..self.workers {
            let label = worker.to_string();
            page.sample(
                "clash_worker_busy_seconds",
                &[("worker", &label)],
                self.worker_busy[worker].as_secs_f64(),
            );
            page.sample(
                "clash_worker_queue_depth",
                &[("worker", &label)],
                self.shared.depth.depth(worker) as f64,
            );
        }
        page.declare(
            "clash_inflight_roots",
            "Sequenced roots not yet covered by the completion watermark.",
            "gauge",
        );
        let inflight = self
            .shared
            .sequenced()
            .saturating_sub(self.shared.progress.watermark());
        page.sample("clash_inflight_roots", &[], inflight as f64);
        page.declare(
            "clash_plan_installs_total",
            "Plan installs performed (quiesced reconfigurations).",
            "counter",
        );
        page.sample("clash_plan_installs_total", &[], self.installs as f64);

        // Per-store gauges, summed across the workers' shards.
        let mut by_store: Vec<StoreDetail> = Vec::new();
        for detail in self.worker_stores.iter().flatten() {
            match by_store.iter_mut().find(|d| d.store == detail.store) {
                Some(d) => {
                    d.tuples += detail.tuples;
                    d.bytes += detail.bytes;
                    d.posting_lists += detail.posting_lists;
                    d.spilled_postings += detail.spilled_postings;
                    d.segments += detail.segments;
                    d.segment_bytes += detail.segment_bytes;
                    d.compactions += detail.compactions;
                }
                None => by_store.push(*detail),
            }
        }
        by_store.sort_unstable_by_key(|d| d.store.0);
        crate::exposition::store_sections(&mut page, &by_store);

        crate::exposition::arena_sections(
            &mut page,
            self.worker_arena
                .iter()
                .enumerate()
                .map(|(w, stats)| (format!("worker-{w}"), stats)),
        );
        page.finish()
    }

    fn shutdown(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        // Quiesce, then refuse new pushes: a producer racing the shutdown
        // either completes its push (covered by the drain below) or gets
        // `ClashError::Shutdown` — never a silent drop.
        {
            let shared = self.shared.clone();
            let quiesced = shared.gate.quiesce();
            self.shared
                .shutdown
                .store(true, std::sync::atomic::Ordering::Release);
            drop(quiesced);
        }
        let workers_alive = !self.handles.iter().any(|h| h.is_finished());
        if workers_alive && self.try_drain(Some(StdDuration::from_secs(10))) {
            let _ = self.collect_inner(None, true);
            if let Some(started) = self.active_since.take() {
                self.wall_busy += started.elapsed();
            }
        }
        for s in &self.senders {
            let _ = s.send(WorkerMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl EngineControl for EngineCore {
    fn install_plan(&mut self, plan: TopologyPlan) -> Result<()> {
        EngineCore::install_plan(self, plan).map(|_| ())
    }

    fn plan(&self) -> &TopologyPlan {
        &self.plan
    }

    fn stats_collector(&self) -> &StatsCollector {
        &self.stats
    }

    fn stats_collector_mut(&mut self) -> &mut StatsCollector {
        &mut self.stats
    }
}

/// One worker per partition of the widest store (minimum 1).
pub fn auto_workers(plan: &TopologyPlan) -> usize {
    plan.stores
        .iter()
        .map(|s| s.descriptor.parallelism)
        .max()
        .unwrap_or(1)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LocalEngine;
    use clash_common::{TupleBuilder, Window};
    use clash_optimizer::{Planner, Strategy};
    use clash_query::parse_query;

    /// The running example of the engine tests: R(a), S(a,b), T(b) and a
    /// second query sharing S and T.
    fn setup(parallelism: usize) -> (Catalog, Vec<clash_query::JoinQuery>, Statistics) {
        let mut catalog = Catalog::new();
        catalog.register("R", ["a"], Window::secs(3600), 1).unwrap();
        catalog
            .register("S", ["a", "b"], Window::secs(3600), parallelism)
            .unwrap();
        catalog
            .register("T", ["b", "c"], Window::secs(3600), parallelism)
            .unwrap();
        catalog.register("U", ["c"], Window::secs(3600), 1).unwrap();
        let mut stats = Statistics::new();
        for m in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            stats.set_rate(m, 100.0);
        }
        let q1 = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b,c), U(c)").unwrap();
        (catalog, vec![q1, q2], stats)
    }

    fn tuple(catalog: &Catalog, relation: &str, ts: u64, values: &[(&str, i64)]) -> Tuple {
        let meta = catalog.relation_by_name(relation).unwrap();
        let mut b = TupleBuilder::new(&meta.schema, Timestamp::from_millis(ts));
        for (attr, v) in values {
            b = b.set(attr, *v);
        }
        b.build()
    }

    fn workload(catalog: &Catalog) -> Vec<(clash_common::RelationId, Tuple)> {
        let mut ts = 0u64;
        let mut next_ts = || {
            ts += 10;
            ts
        };
        let mut stream = Vec::new();
        for a in 1..=3i64 {
            stream.push((
                catalog.relation_id("R").unwrap(),
                tuple(catalog, "R", next_ts(), &[("a", a)]),
            ));
        }
        for (a, b) in [(1, 10), (1, 20), (2, 10), (9, 30)] {
            stream.push((
                catalog.relation_id("S").unwrap(),
                tuple(catalog, "S", next_ts(), &[("a", a), ("b", b)]),
            ));
        }
        for (b, c) in [(10, 100), (20, 100), (30, 200)] {
            stream.push((
                catalog.relation_id("T").unwrap(),
                tuple(catalog, "T", next_ts(), &[("b", b), ("c", c)]),
            ));
        }
        for c in [100i64, 300] {
            stream.push((
                catalog.relation_id("U").unwrap(),
                tuple(catalog, "U", next_ts(), &[("c", c)]),
            ));
        }
        stream
    }

    fn engines_agree(strategy: Strategy, parallelism: usize, workers: usize) {
        let (catalog, queries, stats) = setup(parallelism);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, strategy).unwrap();
        let config = EngineConfig {
            collect_results: true,
            ..EngineConfig::default()
        };
        let mut local = LocalEngine::new(catalog.clone(), report.plan.clone(), config);
        let mut parallel = ParallelEngine::new(catalog.clone(), report.plan, config, workers);
        for (relation, t) in workload(&catalog) {
            local.ingest(relation, t.clone()).unwrap();
            parallel.ingest(relation, t).unwrap();
        }
        let ls = local.snapshot();
        let ps = parallel.snapshot();
        assert_eq!(
            ls.results_for(QueryId::new(0)),
            ps.results_for(QueryId::new(0)),
            "{strategy:?} q1 with {workers} workers"
        );
        assert_eq!(
            ls.results_for(QueryId::new(1)),
            ps.results_for(QueryId::new(1)),
            "{strategy:?} q2 with {workers} workers"
        );
        assert_eq!(ls.tuples_sent, ps.tuples_sent, "{strategy:?} probe cost");
        assert_eq!(ls.broadcasts, ps.broadcasts, "{strategy:?} broadcasts");
        assert_eq!(ls.probes, ps.probes, "{strategy:?} probe count");
        assert_eq!(ls.store_tuples, ps.store_tuples, "{strategy:?} store state");
        // The emitted result multisets are identical (order differs).
        let mut lr: Vec<String> = local
            .results()
            .iter()
            .map(|(q, t)| format!("{q}{t}"))
            .collect();
        let mut pr: Vec<String> = parallel
            .results()
            .iter()
            .map(|(q, t)| format!("{q}{t}"))
            .collect();
        lr.sort();
        pr.sort();
        assert_eq!(lr, pr, "{strategy:?} result multisets");
    }

    #[test]
    fn matches_local_engine_across_strategies_and_worker_counts() {
        for strategy in [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp] {
            for (parallelism, workers) in [(1, 1), (2, 2), (4, 4), (4, 2), (4, 8)] {
                engines_agree(strategy, parallelism, workers);
            }
        }
    }

    #[test]
    fn gathered_statistics_match_local_engine() {
        // The adaptive controller consumes StatsCollector snapshots; the
        // merged per-worker deltas must yield the same arrival rates and
        // (for broadcast-probed stores, exactly; for hashed probes, up to
        // shard-balance extrapolation) the same selectivities.
        let (catalog, queries, stats) = setup(4);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let config = EngineConfig::default();
        let mut local = LocalEngine::new(catalog.clone(), report.plan.clone(), config);
        let mut parallel = ParallelEngine::new(catalog.clone(), report.plan, config, 4);
        // A few hundred tuples so the hashed-probe whole-store
        // extrapolation (shard size x sharing workers) converges; on toy
        // streams single partitions hold 0-2 tuples and the estimate is
        // dominated by sampling noise.
        let mut ts = 0u64;
        for i in 0..200i64 {
            ts += 7;
            for (name, vals) in [
                ("R", vec![("a", i % 17)]),
                ("S", vec![("a", i % 17), ("b", i % 13)]),
                ("T", vec![("b", i % 13), ("c", i % 11)]),
                ("U", vec![("c", i % 11)]),
            ] {
                let t = tuple(&catalog, name, ts, &vals);
                let id = catalog.relation_id(name).unwrap();
                local.ingest(id, t.clone()).unwrap();
                parallel.ingest(id, t).unwrap();
            }
        }
        parallel.flush();
        let prior = Statistics::new();
        let ls = local
            .stats_collector()
            .snapshot(clash_common::Epoch(0), &prior);
        let ps = parallel.stats_snapshot(clash_common::Epoch(0), &prior);
        for meta in catalog.iter() {
            assert!(
                (ls.rate(meta.id) - ps.rate(meta.id)).abs() < 1e-9,
                "rate of {} diverges",
                meta.schema.name
            );
        }
        for (l, r) in [
            (
                catalog.attr("R", "a").unwrap(),
                catalog.attr("S", "a").unwrap(),
            ),
            (
                catalog.attr("S", "b").unwrap(),
                catalog.attr("T", "b").unwrap(),
            ),
            (
                catalog.attr("T", "c").unwrap(),
                catalog.attr("U", "c").unwrap(),
            ),
        ] {
            let lsel = ls.selectivity(l, r);
            let psel = ps.selectivity(l, r);
            assert!(
                psel > lsel * 0.5 && psel < lsel * 2.0 + 1e-12,
                "selectivity {l}={r} diverges: local {lsel}, parallel {psel}"
            );
        }
    }

    #[test]
    fn micro_batch_sizes_do_not_change_results() {
        // Send-per-ingest (1), mid-stream flushes (4) and barrier-only
        // flushing (huge) must all produce the local engine's results.
        let (catalog, queries, stats) = setup(4);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let base_config = EngineConfig {
            collect_results: true,
            ..EngineConfig::default()
        };
        let mut local = LocalEngine::new(catalog.clone(), report.plan.clone(), base_config);
        for (relation, t) in workload(&catalog) {
            local.ingest(relation, t).unwrap();
        }
        let mut lr: Vec<String> = local
            .results()
            .iter()
            .map(|(q, t)| format!("{q}{t}"))
            .collect();
        lr.sort();
        for micro_batch in [1usize, 4, 1 << 20] {
            let config = EngineConfig {
                micro_batch,
                ..base_config
            };
            let mut engine = ParallelEngine::new(catalog.clone(), report.plan.clone(), config, 4);
            for (relation, t) in workload(&catalog) {
                engine.ingest(relation, t).unwrap();
            }
            engine.flush();
            let mut pr: Vec<String> = engine
                .results()
                .iter()
                .map(|(q, t)| format!("{q}{t}"))
                .collect();
            pr.sort();
            assert_eq!(lr, pr, "micro_batch={micro_batch} result multisets");
        }
    }

    #[test]
    fn auto_workers_follows_catalog_parallelism() {
        let (catalog, queries, stats) = setup(4);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        assert_eq!(auto_workers(&report.plan), 4);
        let engine = ParallelEngine::new(catalog, report.plan, EngineConfig::default(), 0);
        assert_eq!(engine.workers(), 4);
    }

    #[test]
    fn sink_receives_all_results_at_barriers() {
        let (catalog, queries, stats) = setup(2);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let mut engine =
            ParallelEngine::new(catalog.clone(), report.plan, EngineConfig::default(), 2);
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c2 = counter.clone();
        engine.set_sink(Box::new(move |_, _| {
            c2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }));
        for (relation, t) in workload(&catalog) {
            engine.ingest(relation, t).unwrap();
        }
        let snap = engine.snapshot();
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            snap.total_results()
        );
    }

    #[test]
    fn install_plan_preserves_matching_store_state() {
        let (catalog, queries, stats) = setup(2);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let mut engine = ParallelEngine::new(
            catalog.clone(),
            report.plan.clone(),
            EngineConfig::default(),
            2,
        );
        for (relation, t) in workload(&catalog) {
            engine.ingest(relation, t).unwrap();
        }
        engine.flush();
        let before = engine.store_tuples();
        assert!(before > 0);
        let pos = engine.install_plan(report.plan).unwrap();
        assert_eq!(
            pos,
            engine.sequenced(),
            "install position covers every sequenced root"
        );
        assert_eq!(engine.store_tuples(), before, "same plan keeps state");
        engine.install_plan(TopologyPlan::default()).unwrap();
        assert_eq!(engine.store_tuples(), 0, "empty plan drops all stores");
    }

    #[test]
    fn install_plan_after_shutdown_errors() {
        let (catalog, queries, stats) = setup(2);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let mut engine = ParallelEngine::new(
            catalog.clone(),
            report.plan.clone(),
            EngineConfig::default(),
            2,
        );
        engine.shutdown();
        assert_eq!(
            engine.install_plan(report.plan).unwrap_err(),
            ClashError::Shutdown
        );
    }

    #[test]
    fn expiry_removes_out_of_window_state() {
        let (catalog, queries, stats) = setup(2);
        let mut catalog = catalog;
        for id in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            catalog.set_window(id, Window::secs(1)).unwrap();
        }
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let mut engine = ParallelEngine::new(
            catalog.clone(),
            report.plan,
            EngineConfig {
                expire_every: 0,
                ..EngineConfig::default()
            },
            2,
        );
        let s_id = catalog.relation_id("S").unwrap();
        for i in 0..50u64 {
            let t = tuple(&catalog, "S", i * 100, &[("a", 1), ("b", 1)]);
            engine.ingest(s_id, t).unwrap();
        }
        engine.flush();
        let before = engine.store_tuples();
        let removed = engine.expire_stores();
        assert!(removed > 0);
        assert!(engine.store_tuples() < before);
    }

    #[test]
    fn unknown_relation_is_rejected() {
        let (catalog, queries, stats) = setup(1);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let mut engine =
            ParallelEngine::new(catalog.clone(), report.plan, EngineConfig::default(), 2);
        let t = tuple(&catalog, "R", 10, &[("a", 1)]);
        assert!(engine.ingest(clash_common::RelationId::new(42), t).is_err());
    }
}
