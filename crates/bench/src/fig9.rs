//! Fig. 9: ILP optimization experiments.
//!
//! Random 3-relation (or larger) queries are drawn over a pool of 10 or
//! 100 input relations with uniform rates and `1/rate` selectivities; for
//! every workload size the driver reports the average probe cost with and
//! without multi-query sharing (Fig. 9a / 9c), the ILP problem size
//! (Fig. 9b / 9d) and the optimization runtime (Fig. 9e / 9f).

use clash_datagen::{SyntheticEnv, SyntheticWorkloadConfig};
use clash_ilp::SolverConfig;
use clash_optimizer::{Planner, PlannerConfig, Strategy};
use serde::Serialize;
use std::time::Duration;

/// One row of the probe-cost / problem-size sweep (Fig. 9a–9e).
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Row {
    /// Number of input relations in the pool (10 or 100).
    pub num_relations: usize,
    /// Number of queries optimized together.
    pub num_queries: usize,
    /// Query size (relations per query).
    pub query_size: usize,
    /// Average probe cost per query without sharing ("Individual").
    pub individual_cost: f64,
    /// Average probe cost per query with multi-query sharing ("MQO").
    pub mqo_cost: f64,
    /// Number of ILP variables (Fig. 9b / 9d).
    pub variables: usize,
    /// Number of candidate probe orders (Fig. 9b / 9d).
    pub probe_orders: usize,
    /// End-to-end optimization runtime in milliseconds (Fig. 9e / 9f).
    pub runtime_ms: f64,
}

fn planner_config() -> PlannerConfig {
    PlannerConfig {
        solver: SolverConfig {
            node_limit: 20_000,
            time_limit: Duration::from_secs(2),
            ..SolverConfig::default()
        },
        ..PlannerConfig::default()
    }
}

/// Optimizes one randomly generated workload and reports the Fig. 9
/// quantities.
pub fn optimize_random_workload(
    num_relations: usize,
    num_queries: usize,
    query_size: usize,
    seed: u64,
) -> Fig9Row {
    let env_config = SyntheticWorkloadConfig {
        num_relations,
        ..SyntheticWorkloadConfig::default()
    };
    let mut env = SyntheticEnv::new(env_config, seed).expect("environment");
    let queries = env
        .random_queries(num_queries, query_size)
        .expect("queries");
    let planner = Planner::new(&env.catalog, &env.stats, planner_config());
    let report = planner.plan(&queries, Strategy::GlobalIlp).expect("plan");
    let n = queries.len().max(1) as f64;
    Fig9Row {
        num_relations,
        num_queries: queries.len(),
        query_size,
        individual_cost: report.individual_cost / n,
        mqo_cost: report.shared_cost / n,
        variables: report.model_stats.map(|s| s.variables).unwrap_or(0),
        probe_orders: report.num_probe_orders,
        runtime_ms: report.optimization_time.as_secs_f64() * 1000.0,
    }
}

/// Fig. 9a–9e: sweep the number of queries for a fixed pool size.
pub fn run_probe_cost_sweep(num_relations: usize, nq_values: &[usize], seed: u64) -> Vec<Fig9Row> {
    nq_values
        .iter()
        .map(|nq| optimize_random_workload(num_relations, *nq, 3, seed + *nq as u64))
        .collect()
}

/// Fig. 9f: sweep the query size for fixed workload sizes over 100
/// relations.
pub fn run_query_size_sweep(sizes: &[usize], nq_values: &[usize], seed: u64) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for &size in sizes {
        for &nq in nq_values {
            rows.push(optimize_random_workload(
                100,
                nq,
                size,
                seed + (size * 1000 + nq) as u64,
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mqo_cost_is_never_above_individual_cost() {
        for nq in [5, 15] {
            let row = optimize_random_workload(10, nq, 3, 11);
            assert!(row.mqo_cost <= row.individual_cost + 1e-6);
            assert!(row.variables > 0);
            assert!(row.probe_orders > 0);
            assert!(row.runtime_ms >= 0.0);
        }
    }

    #[test]
    fn dense_pools_share_more_than_sparse_pools() {
        // 10 relations: heavy overlap between random queries; 100
        // relations: little overlap (Fig. 9a vs 9c).
        let dense = optimize_random_workload(10, 25, 3, 3);
        let sparse = optimize_random_workload(100, 25, 3, 3);
        let dense_saving = 1.0 - dense.mqo_cost / dense.individual_cost;
        let sparse_saving = 1.0 - sparse.mqo_cost / sparse.individual_cost;
        assert!(
            dense_saving >= sparse_saving - 0.05,
            "dense saving {dense_saving} vs sparse {sparse_saving}"
        );
    }

    #[test]
    fn problem_size_grows_with_workload() {
        let small = optimize_random_workload(10, 5, 3, 9);
        let large = optimize_random_workload(10, 30, 3, 9);
        assert!(large.variables > small.variables);
        assert!(large.probe_orders >= small.probe_orders);
    }
}
