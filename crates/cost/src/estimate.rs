//! Cardinality estimation for (intermediate) join results.

use clash_catalog::{Catalog, Statistics};
use clash_common::{RelationSet, Window};
use clash_query::JoinQuery;
use serde::{Deserialize, Serialize};

/// Configuration of the cardinality estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostConfig {
    /// Length of the "time unit" the rates are normalized to, in seconds.
    /// The estimated cardinality of a base relation is
    /// `rate · min(window, horizon) / time_unit`, i.e. with the default of
    /// 1 s and an unbounded window the cardinality equals the arrival rate
    /// — the rate-based model used throughout the paper's examples.
    pub time_unit_secs: f64,
    /// Cap on the window length (in seconds) considered for cardinality
    /// estimation. Unbounded windows are treated as this horizon.
    pub window_horizon_secs: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            time_unit_secs: 1.0,
            window_horizon_secs: 1.0,
        }
    }
}

/// Estimates the cardinality of base relations and connected joins from a
/// statistics snapshot.
#[derive(Debug, Clone)]
pub struct CardinalityEstimator<'a> {
    catalog: &'a Catalog,
    stats: &'a Statistics,
    config: CostConfig,
}

impl<'a> CardinalityEstimator<'a> {
    /// Creates an estimator over a catalog and statistics snapshot.
    pub fn new(catalog: &'a Catalog, stats: &'a Statistics, config: CostConfig) -> Self {
        CardinalityEstimator {
            catalog,
            stats,
            config,
        }
    }

    /// Creates an estimator with the default configuration (rate-based).
    pub fn rate_based(catalog: &'a Catalog, stats: &'a Statistics) -> Self {
        Self::new(catalog, stats, CostConfig::default())
    }

    /// Effective window length (in "time units") of a relation under a
    /// query: the query's window override if present, otherwise the
    /// catalog's per-relation window, capped at the configured horizon.
    fn window_factor(&self, query: &JoinQuery, relation: clash_common::RelationId) -> f64 {
        let window: Window = query.window.unwrap_or_else(|| {
            self.catalog
                .relation(relation)
                .map(|m| m.window)
                .unwrap_or_default()
        });
        let secs = window.length.as_secs_f64();
        let capped = secs.min(self.config.window_horizon_secs);
        (capped / self.config.time_unit_secs).max(f64::MIN_POSITIVE)
    }

    /// Estimated number of tuples of a single relation that are live inside
    /// its window.
    pub fn base_cardinality(&self, query: &JoinQuery, relation: clash_common::RelationId) -> f64 {
        self.stats.rate(relation) * self.window_factor(query, relation)
    }

    /// Estimated size of the join over a (connected) subset of the query's
    /// relations: the product of the base cardinalities times the
    /// selectivity of every predicate contained in the subset.
    ///
    /// Disconnected subsets are estimated as the cross product of their
    /// components, which is what the paper's plan space explicitly avoids —
    /// the enumeration never asks for them, but the estimator stays total.
    pub fn join_cardinality(&self, query: &JoinQuery, set: &RelationSet) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        let mut card: f64 = 1.0;
        for r in set.iter() {
            card *= self.base_cardinality(query, r);
        }
        for p in query.predicates_within(set) {
            card *= self.stats.selectivity(p.left, p.right);
        }
        card
    }

    /// The configuration in use.
    pub fn config(&self) -> CostConfig {
        self.config
    }

    /// The statistics snapshot in use.
    pub fn stats(&self) -> &Statistics {
        self.stats
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::{QueryId, RelationId, Window};
    use clash_query::parse_query;

    fn setup() -> (Catalog, Statistics) {
        let mut catalog = Catalog::new();
        catalog
            .register("R", ["a"], Window::unbounded(), 1)
            .unwrap();
        catalog
            .register("S", ["a", "b"], Window::unbounded(), 1)
            .unwrap();
        catalog
            .register("T", ["b"], Window::unbounded(), 1)
            .unwrap();
        let mut stats = Statistics::new();
        stats.set_rate(RelationId::new(0), 100.0);
        stats.set_rate(RelationId::new(1), 100.0);
        stats.set_rate(RelationId::new(2), 100.0);
        let rs = (
            catalog.attr("R", "a").unwrap(),
            catalog.attr("S", "a").unwrap(),
        );
        let st = (
            catalog.attr("S", "b").unwrap(),
            catalog.attr("T", "b").unwrap(),
        );
        stats.set_selectivity(rs.0, rs.1, 0.01); // |R ⋈ S| = 100
        stats.set_selectivity(st.0, st.1, 0.015); // |S ⋈ T| = 150
        (catalog, stats)
    }

    fn rs(ids: &[u32]) -> RelationSet {
        ids.iter().map(|i| RelationId::new(*i)).collect()
    }

    #[test]
    fn base_cardinality_equals_rate_for_unbounded_windows() {
        let (catalog, stats) = setup();
        let q = parse_query(&catalog, QueryId::new(0), "q", "R(a), S(a,b), T(b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);
        assert_eq!(est.base_cardinality(&q, RelationId::new(0)), 100.0);
        assert_eq!(est.join_cardinality(&q, &rs(&[1])), 100.0);
    }

    #[test]
    fn join_cardinality_matches_paper_example() {
        let (catalog, stats) = setup();
        let q = parse_query(&catalog, QueryId::new(0), "q", "R(a), S(a,b), T(b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);
        assert!((est.join_cardinality(&q, &rs(&[0, 1])) - 100.0).abs() < 1e-9);
        assert!((est.join_cardinality(&q, &rs(&[1, 2])) - 150.0).abs() < 1e-9);
        // Full join: 100·100·100 · 0.01 · 0.015 = 150.
        assert!((est.join_cardinality(&q, &rs(&[0, 1, 2])) - 150.0).abs() < 1e-9);
        assert_eq!(est.join_cardinality(&q, &RelationSet::EMPTY), 0.0);
    }

    #[test]
    fn window_override_scales_cardinality() {
        let (mut catalog, stats) = setup();
        // Bounded 500 ms windows with a 1 s horizon halve the cardinality.
        let r = catalog.relation_id("R").unwrap();
        catalog
            .set_window(r, Window::new(clash_common::Duration::from_millis(500)))
            .unwrap();
        let q = parse_query(&catalog, QueryId::new(0), "q", "R(a), S(a,b), T(b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);
        assert!((est.base_cardinality(&q, r) - 50.0).abs() < 1e-9);
        // A query-level override takes precedence over the catalog window.
        let mut q2 = q.clone();
        q2.window = Some(Window::secs(10));
        // horizon caps at 1 s -> back to 100.
        assert!((est.base_cardinality(&q2, r) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn default_selectivity_used_for_unknown_predicates() {
        let (catalog, mut stats) = setup();
        stats.default_selectivity = 0.5;
        let mut no_sel = Statistics::new();
        no_sel.default_selectivity = 0.5;
        no_sel.set_rate(RelationId::new(0), 10.0);
        no_sel.set_rate(RelationId::new(1), 10.0);
        let q = parse_query(&catalog, QueryId::new(0), "q", "R(a), S(a,b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &no_sel);
        assert!((est.join_cardinality(&q, &q.relations) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn accessors_expose_configuration() {
        let (catalog, stats) = setup();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);
        assert_eq!(est.config(), CostConfig::default());
        assert_eq!(est.stats().rate(RelationId::new(0)), 100.0);
        assert_eq!(est.catalog().len(), 3);
    }
}
