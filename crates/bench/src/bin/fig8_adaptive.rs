//! Regenerates Fig. 8: latency of adaptive vs. static execution when the
//! data characteristics change mid-run.
//!
//! Usage: `cargo run --release -p clash-bench --bin fig8_adaptive [duration_s] [rounds_per_s]`

use clash_bench::fig8::run_fig8;
use clash_bench::print_rows;

fn main() {
    let duration_s: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);
    let rounds_per_s: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let shift_s = duration_s / 2;
    println!(
        "# Fig. 8 — adaptive vs. static execution ({duration_s}s, {rounds_per_s} rounds/s, shift at {shift_s}s)\n"
    );
    let points = run_fig8(duration_s, rounds_per_s, shift_s, 7);
    print_rows("Fig. 8a series", &points);
    println!(
        "{:>6} {:>16} {:>16} {:>14} {:>14} {:>8}",
        "t[s]", "adaptive[µs]", "static[µs]", "adapt sent", "static sent", "reconf"
    );
    for p in &points {
        println!(
            "{:>6} {:>16.1} {:>16.1} {:>14} {:>14} {:>8}",
            p.time_s,
            p.adaptive_latency_us,
            p.static_latency_us,
            p.adaptive_tuples_sent,
            p.static_tuples_sent,
            p.reconfigurations
        );
    }
}
