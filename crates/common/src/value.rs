//! Runtime values carried by stream tuples.
//!
//! Equi-join predicates compare attribute values for equality, and stores
//! build hash indexes over them, so [`Value`] implements `Eq` + `Hash` for
//! every variant (floating point values are hashed by their bit pattern,
//! which is sufficient for equi-joins where both sides were produced by the
//! same generator or source).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single attribute value.
///
/// Cloning is cheap: strings are reference counted. The variants cover what
/// the evaluation workloads need (TPC-H style keys, flags, prices and
/// dates encoded as integers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent value; joins never match on `Null`.
    Null,
    /// Boolean flag.
    Bool(bool),
    /// 64-bit signed integer (keys, dates as epoch days, quantities).
    Int(i64),
    /// 64-bit float (prices, discounts).
    Float(f64),
    /// UTF-8 string (status flags, names, comments).
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload if this is a [`Value::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the string payload if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `true` when the value is `Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate number of heap + inline bytes occupied by this value.
    /// Used by the runtime to account for store memory (Fig. 7c).
    #[inline]
    pub fn approx_size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 16 + s.len(),
        }
    }

    /// Equality as used by join predicates: `Null` never matches anything,
    /// including another `Null` (SQL semantics).
    #[inline]
    pub fn join_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self == other
    }
}

impl PartialEq for Value {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_and_hash_agree_for_ints_and_strings() {
        assert_eq!(Value::from(42), Value::Int(42));
        assert_eq!(hash_of(&Value::from(42)), hash_of(&Value::Int(42)));
        assert_eq!(Value::str("abc"), Value::from("abc"));
        assert_eq!(hash_of(&Value::str("abc")), hash_of(&Value::from("abc")));
        assert_ne!(Value::Int(1), Value::Int(2));
    }

    #[test]
    fn floats_compare_by_bits() {
        assert_eq!(Value::Float(1.5), Value::Float(1.5));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        // NaN equals itself under bit comparison, which keeps Hash/Eq consistent.
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn join_eq_rejects_null() {
        assert!(!Value::Null.join_eq(&Value::Null));
        assert!(!Value::Int(1).join_eq(&Value::Null));
        assert!(Value::Int(1).join_eq(&Value::Int(1)));
        assert!(!Value::Int(1).join_eq(&Value::str("1")));
    }

    #[test]
    fn cross_type_values_never_equal() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::str("1"), Value::Int(1));
    }

    #[test]
    fn size_accounting_tracks_string_length() {
        assert_eq!(Value::Int(1).approx_size_bytes(), 8);
        assert!(Value::str("hello").approx_size_bytes() >= 5);
        assert!(
            Value::str("a longer string").approx_size_bytes() > Value::str("a").approx_size_bytes()
        );
    }

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Int(7).as_str(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("ok").to_string(), "ok");
    }
}
