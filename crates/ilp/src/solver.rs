//! Branch-and-bound solver for 0/1 ILPs.
//!
//! The solver performs depth-first branch-and-bound over the binary
//! domains, with constraint propagation (see [`crate::propagation`]) at
//! every node and the greedy construction of [`crate::greedy`] as the
//! initial incumbent. The lower bound at a node is the objective mass of
//! the variables already fixed to 1 (plus any negative coefficients still
//! free) — for the non-negative step-cost objectives produced by the
//! optimizer this is the exact cost of the partially committed plan, so
//! pruning is effective once a good incumbent is known.
//!
//! The solver is exact when it terminates within its node/time limits and
//! degrades into an anytime heuristic (returning the best incumbent) when
//! it does not, mirroring how the paper treats optimization time as a
//! budget that must stay compatible with streaming (Section VII-C).

use crate::greedy::{choice_constraints, fixed_objective, greedy};
use crate::model::{Assignment, Model, VarId};
use crate::propagation::{Domains, PropagationResult, Propagator};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Termination status of a solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// The returned solution is provably optimal.
    Optimal,
    /// A feasible solution was found but a limit stopped the proof of
    /// optimality.
    Feasible,
    /// The model has no feasible 0/1 assignment.
    Infeasible,
    /// A limit was hit before any feasible solution was found.
    Unknown,
}

/// Solver limits and tolerances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Maximum number of branch-and-bound nodes to explore.
    pub node_limit: u64,
    /// Wall-clock time limit.
    pub time_limit: Duration,
    /// Feasibility / optimality tolerance.
    pub tolerance: f64,
    /// When `true`, skip the greedy warm start (used by the ablation
    /// benchmark to quantify its benefit).
    pub disable_warm_start: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            node_limit: 200_000,
            time_limit: Duration::from_secs(10),
            tolerance: 1e-6,
            disable_warm_start: false,
        }
    }
}

impl SolverConfig {
    /// A configuration with a tight node budget, useful when optimization
    /// runs inside an epoch boundary.
    pub fn quick() -> Self {
        SolverConfig {
            node_limit: 20_000,
            time_limit: Duration::from_millis(500),
            ..SolverConfig::default()
        }
    }
}

/// Result of a solve call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Termination status.
    pub status: SolveStatus,
    /// Best assignment found (absent for `Infeasible` / `Unknown`).
    pub assignment: Option<Assignment>,
    /// Objective value of the best assignment (`f64::INFINITY` if none).
    pub objective: f64,
    /// Number of branch-and-bound nodes explored.
    pub nodes: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl Solution {
    /// `true` when a feasible assignment is available.
    pub fn is_feasible(&self) -> bool {
        self.assignment.is_some()
    }
}

/// Fixed-width bitset over the model's variables, used for the
/// "necessary steps" lower bound.
type VarBitset = Vec<u64>;

fn bitset_new(n_vars: usize) -> VarBitset {
    vec![0u64; n_vars.div_ceil(64)]
}

fn bitset_set(b: &mut VarBitset, v: VarId) {
    b[v.index() / 64] |= 1u64 << (v.index() % 64);
}

struct SearchState<'a> {
    model: &'a Model,
    propagator: Propagator<'a>,
    choices: Vec<usize>,
    /// For every variable that appears in a choice constraint: the set of
    /// variables that are forced to 1 when it is selected at the root
    /// (computed once by propagation). Used for the lower bound: whatever
    /// alternative of an unsatisfied choice group is eventually selected,
    /// the intersection of the requirement sets of its still-free
    /// alternatives will be paid for.
    requirements: Vec<Option<VarBitset>>,
    config: SolverConfig,
    started: Instant,
    nodes: u64,
    limit_hit: bool,
    incumbent: Option<(Assignment, f64)>,
}

impl<'a> SearchState<'a> {
    /// Precomputes the requirement bitsets of all choice-alternative
    /// variables by propagating `x = 1` from the root domains.
    fn precompute_requirements(
        model: &Model,
        propagator: &Propagator<'_>,
        root: &Domains,
        choices: &[usize],
    ) -> Vec<Option<VarBitset>> {
        let mut requirements: Vec<Option<VarBitset>> = vec![None; model.num_vars()];
        for &ci in choices {
            for (x, _) in model.constraints()[ci].expr.terms() {
                if requirements[x.index()].is_some() {
                    continue;
                }
                let mut trial = root.clone();
                if !trial.fix(*x, true) {
                    continue;
                }
                if let PropagationResult::Conflict(_) = propagator.propagate_from(&mut trial, *x) {
                    // Selecting this alternative is impossible; leave the
                    // requirement empty (the search will discover the
                    // conflict itself).
                    requirements[x.index()] = Some(bitset_new(model.num_vars()));
                    continue;
                }
                let mut bits = bitset_new(model.num_vars());
                for v in trial.ones() {
                    bitset_set(&mut bits, v);
                }
                requirements[x.index()] = Some(bits);
            }
        }
        requirements
    }

    fn lower_bound(&self, domains: &Domains) -> f64 {
        let mut bound = fixed_objective(self.model, domains);
        // Negative coefficients of free variables can only decrease the
        // objective further; account for them to keep the bound admissible
        // for general models.
        for v in self.model.vars() {
            if domains.is_free(v) {
                let c = self.model.objective_coeff(v);
                if c < 0.0 {
                    bound += c;
                }
            }
        }
        // Sequential-minimum bound over the unsatisfied choice groups.
        //
        // Whatever alternative a group eventually selects, the still-free
        // positive-cost variables in its requirement set must be paid for.
        // Processing groups in a fixed order and blocking (via `counted`)
        // every variable that *any* alternative of an earlier group could
        // have provided makes the per-group minima additive without double
        // counting, so the sum stays an admissible lower bound even when
        // groups share steps.
        let words = self.model.num_vars().div_ceil(64);
        let mut counted: VarBitset = vec![0u64; words];
        for &ci in &self.choices {
            let c = &self.model.constraints()[ci];
            if c.expr
                .terms()
                .iter()
                .any(|(v, _)| domains.get(*v) == Some(true))
            {
                continue;
            }
            let mut group_min: Option<f64> = None;
            let mut group_union: VarBitset = vec![0u64; words];
            let mut has_free_alt = false;
            for (x, _) in c.expr.terms() {
                if !domains.is_free(*x) {
                    continue;
                }
                let Some(req) = &self.requirements[x.index()] else {
                    group_min = None;
                    has_free_alt = false;
                    break;
                };
                has_free_alt = true;
                let mut alt_cost = 0.0;
                for (word_idx, word) in req.iter().enumerate() {
                    let mut w = *word & !counted[word_idx];
                    group_union[word_idx] |= *word;
                    while w != 0 {
                        let bit = w.trailing_zeros() as usize;
                        w &= w - 1;
                        let v = VarId((word_idx * 64 + bit) as u32);
                        if v.index() < self.model.num_vars() && domains.is_free(v) {
                            let coeff = self.model.objective_coeff(v);
                            if coeff > 0.0 {
                                alt_cost += coeff;
                            }
                        }
                    }
                }
                group_min = Some(group_min.map_or(alt_cost, |m: f64| m.min(alt_cost)));
            }
            if has_free_alt {
                if let Some(m) = group_min {
                    bound += m;
                    for (cw, gw) in counted.iter_mut().zip(&group_union) {
                        *cw |= gw;
                    }
                }
            }
        }
        bound
    }

    fn out_of_budget(&mut self) -> bool {
        if self.nodes >= self.config.node_limit || self.started.elapsed() >= self.config.time_limit
        {
            self.limit_hit = true;
            return true;
        }
        false
    }

    /// Chooses the next variable to branch on: a free member of the most
    /// constrained unsatisfied choice constraint, falling back to the first
    /// free variable.
    fn branching_variable(&self, domains: &Domains) -> Option<VarId> {
        let mut best: Option<(VarId, usize)> = None;
        for &ci in &self.choices {
            let c = &self.model.constraints()[ci];
            if c.expr
                .terms()
                .iter()
                .any(|(v, _)| domains.get(*v) == Some(true))
            {
                continue;
            }
            let free: Vec<VarId> = c
                .expr
                .terms()
                .iter()
                .map(|(v, _)| *v)
                .filter(|v| domains.is_free(*v))
                .collect();
            if free.is_empty() {
                continue;
            }
            if best.map(|(_, n)| free.len() < n).unwrap_or(true) {
                best = Some((free[0], free.len()));
            }
        }
        best.map(|(v, _)| v).or_else(|| domains.first_free())
    }

    fn maybe_accept(&mut self, domains: &Domains) {
        let assignment = domains.to_assignment();
        if !self.model.is_feasible(&assignment, self.config.tolerance) {
            return;
        }
        let objective = self.model.objective_value(&assignment);
        let improves = self
            .incumbent
            .as_ref()
            .map(|(_, best)| objective < best - self.config.tolerance)
            .unwrap_or(true);
        if improves {
            self.incumbent = Some((assignment, objective));
        }
    }

    fn search(&mut self, domains: Domains) {
        self.nodes += 1;
        if self.out_of_budget() {
            return;
        }
        // Bound.
        if let Some((_, best)) = &self.incumbent {
            if self.lower_bound(&domains) >= *best - self.config.tolerance {
                return;
            }
        }
        // Even with free variables left, mapping them to 0 may already be a
        // feasible (and, given the bound above, improving) solution.
        self.maybe_accept(&domains);
        if domains.is_complete() {
            return;
        }
        let Some(var) = self.branching_variable(&domains) else {
            return;
        };
        for value in [true, false] {
            let mut child = domains.clone();
            if !child.fix(var, value) {
                continue;
            }
            match self.propagator.propagate_from(&mut child, var) {
                PropagationResult::Conflict(_) => continue,
                PropagationResult::Fixpoint(_) => self.search(child),
            }
            if self.limit_hit {
                return;
            }
        }
    }
}

/// Solves a 0/1 ILP.
pub fn solve(model: &Model, config: SolverConfig) -> Solution {
    let started = Instant::now();
    let propagator = Propagator::new(model);
    let mut root = Domains::free(model.num_vars());
    if let PropagationResult::Conflict(_) = propagator.propagate_all(&mut root) {
        return Solution {
            status: SolveStatus::Infeasible,
            assignment: None,
            objective: f64::INFINITY,
            nodes: 0,
            elapsed: started.elapsed(),
        };
    }

    let incumbent = if config.disable_warm_start {
        None
    } else {
        greedy(model)
    };

    let choices = choice_constraints(model);
    let requirements =
        SearchState::precompute_requirements(model, &Propagator::new(model), &root, &choices);
    let mut state = SearchState {
        model,
        propagator,
        choices,
        requirements,
        config,
        started,
        nodes: 0,
        limit_hit: false,
        incumbent,
    };
    state.search(root);

    let elapsed = started.elapsed();
    match state.incumbent {
        Some((assignment, objective)) => Solution {
            status: if state.limit_hit {
                SolveStatus::Feasible
            } else {
                SolveStatus::Optimal
            },
            assignment: Some(assignment),
            objective,
            nodes: state.nodes,
            elapsed,
        },
        None => Solution {
            status: if state.limit_hit {
                SolveStatus::Unknown
            } else {
                SolveStatus::Infeasible
            },
            assignment: None,
            objective: f64::INFINITY,
            nodes: state.nodes,
            elapsed,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Sense};

    fn assert_optimal(solution: &Solution, expected: f64) {
        assert_eq!(solution.status, SolveStatus::Optimal, "{solution:?}");
        assert!(
            (solution.objective - expected).abs() < 1e-6,
            "objective {} != {expected}",
            solution.objective
        );
    }

    #[test]
    fn solves_simple_choice_model() {
        // min 2a + 3b st a + b = 1  -> a.
        let mut m = Model::new();
        let a = m.add_binary("a", 2.0);
        let b = m.add_binary("b", 3.0);
        m.add_choose_one("c", [a, b]);
        let s = solve(&m, SolverConfig::default());
        assert_optimal(&s, 2.0);
        assert!(s.assignment.as_ref().unwrap().get(a));
        assert!(!s.assignment.as_ref().unwrap().get(b));
    }

    #[test]
    fn solves_sharing_example_optimally() {
        // The Section V-2 example: sharing ⟨S,T⟩ between q1 and q2 gives 250.
        let mut m = Model::new();
        let y_sr = m.add_binary("y_SR", 100.0);
        let y_srt = m.add_binary("y_SRT", 50.0);
        let y_st = m.add_binary("y_ST", 100.0);
        let y_str = m.add_binary("y_STR", 75.0);
        let y_stu = m.add_binary("y_STU", 75.0);
        let x1 = m.add_binary("x1", 0.0);
        let x2 = m.add_binary("x2", 0.0);
        let x3 = m.add_binary("x3", 0.0);
        m.add_choose_one("q1_S", [x1, x2]);
        m.add_choose_one("q2_S", [x3]);
        m.add_constraint(
            "cost_x1",
            LinExpr::from_terms([(x1, -150.0), (y_sr, 100.0), (y_srt, 50.0)]),
            Sense::Ge,
            0.0,
        );
        m.add_constraint(
            "cost_x2",
            LinExpr::from_terms([(x2, -175.0), (y_st, 100.0), (y_str, 75.0)]),
            Sense::Ge,
            0.0,
        );
        m.add_constraint(
            "cost_x3",
            LinExpr::from_terms([(x3, -175.0), (y_st, 100.0), (y_stu, 75.0)]),
            Sense::Ge,
            0.0,
        );
        let s = solve(&m, SolverConfig::default());
        assert_optimal(&s, 250.0);
        let asg = s.assignment.unwrap();
        assert!(asg.get(x2) && asg.get(x3) && !asg.get(x1));
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new();
        let a = m.add_binary("a", 1.0);
        m.add_constraint("ge", LinExpr::sum([a]), Sense::Ge, 2.0);
        let s = solve(&m, SolverConfig::default());
        assert_eq!(s.status, SolveStatus::Infeasible);
        assert!(!s.is_feasible());
    }

    #[test]
    fn empty_model_is_trivially_optimal() {
        let m = Model::new();
        let s = solve(&m, SolverConfig::default());
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn warm_start_can_be_disabled() {
        let mut m = Model::new();
        let a = m.add_binary("a", 2.0);
        let b = m.add_binary("b", 3.0);
        m.add_choose_one("c", [a, b]);
        let cfg = SolverConfig {
            disable_warm_start: true,
            ..SolverConfig::default()
        };
        let s = solve(&m, cfg);
        assert_optimal(&s, 2.0);
    }

    #[test]
    fn node_limit_returns_best_incumbent() {
        // Build a model big enough that one node cannot close it, and check
        // the anytime behaviour.
        let mut m = Model::new();
        let mut groups = Vec::new();
        for g in 0..20 {
            let steps: Vec<VarId> = (0..4)
                .map(|i| m.add_binary(format!("y_{g}_{i}"), (i + 1) as f64))
                .collect();
            let alts: Vec<VarId> = (0..4)
                .map(|i| m.add_binary(format!("x_{g}_{i}"), 0.0))
                .collect();
            for (i, x) in alts.iter().enumerate() {
                m.add_constraint(
                    format!("cost_{g}_{i}"),
                    LinExpr::from_terms([(*x, -((i + 1) as f64)), (steps[i], (i + 1) as f64)]),
                    Sense::Ge,
                    0.0,
                );
            }
            m.add_choose_one(format!("choice_{g}"), alts.clone());
            groups.push(alts);
        }
        // A zero time budget stops the search at the first node; the greedy
        // warm start still provides a feasible incumbent (anytime behaviour).
        let cfg = SolverConfig {
            time_limit: Duration::ZERO,
            ..SolverConfig::default()
        };
        let s = solve(&m, cfg);
        assert_eq!(s.status, SolveStatus::Feasible);
        assert!(s.is_feasible());
        assert!(s.nodes <= 1);
        // Optimal is picking the cost-1 alternative everywhere = 20.
        let full = solve(&m, SolverConfig::default());
        assert_optimal(&full, 20.0);
        assert!(full.objective <= s.objective + 1e-9);
    }

    #[test]
    fn negative_objective_coefficients_are_handled() {
        // min -5a + 1b st a + b >= 1 -> a=1 (b free to be 0), objective -5.
        let mut m = Model::new();
        let a = m.add_binary("a", -5.0);
        let b = m.add_binary("b", 1.0);
        m.add_constraint("cover", LinExpr::sum([a, b]), Sense::Ge, 1.0);
        let s = solve(&m, SolverConfig::default());
        assert_optimal(&s, -5.0);
        assert!(s.assignment.unwrap().get(a));
    }
}
