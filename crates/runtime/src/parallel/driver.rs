//! The control-plane epoch driver: adaptivity for source-fed engines.
//!
//! Before this module, `AdaptiveController::on_epoch` only ever fired
//! from the coordinator's ingest path — a stream fed exclusively through
//! [`crate::ingest::SourceHandle`]s was never re-optimized, even though
//! epoch-based re-optimization (Section VI, Fig. 5/8) is the paper's
//! headline feature. The driver moves the cadence to the control plane:
//! a background thread (the same pattern as the ingest flusher) watches
//! the shared stream clock — advanced by every producer push and every
//! coordinator ingest — and, whenever it crosses an epoch boundary, takes
//! the engine core's lock, runs a collection barrier so the merged
//! per-worker statistics are current, and fires the controller. Plan
//! installs triggered this way go through the coordinator's quiesce
//! protocol, so they are lossless under the very producers that advanced
//! the clock.
//!
//! Skipped epochs are routine here (a sparse stream can jump the clock
//! several epochs between ticks; a burst can cross many boundaries within
//! one tick): the driver fires once with the *latest* epoch and relies on
//! the controller's idempotent pending-activation and its empty-epoch
//! re-planning guard.

use crate::adaptive::AdaptiveController;
use crate::ingest::shared::ControlShared;
use crate::parallel::coordinator::EngineCore;
use clash_common::{ClashError, Epoch, EpochConfig, Timestamp};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration as StdDuration;

/// Handle to the running epoch-driver thread (engine-owned).
#[derive(Debug)]
pub(crate) struct EpochDriver {
    stop: Arc<AtomicBool>,
    /// First engine error that stopped the driver (worker death during a
    /// barrier or install), surfaced via
    /// `ParallelEngine::epoch_driver_error`.
    error: Arc<Mutex<Option<ClashError>>>,
    handle: Option<JoinHandle<()>>,
}

impl EpochDriver {
    /// Spawns the driver over the engine core and the shared controller.
    pub fn spawn(
        core: Arc<Mutex<EngineCore>>,
        shared: Arc<ControlShared>,
        controller: Arc<Mutex<AdaptiveController>>,
        epoch: EpochConfig,
        tick: StdDuration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let error = Arc::new(Mutex::new(None));
        let stop_flag = stop.clone();
        let error_slot = error.clone();
        let tick = tick.clamp(StdDuration::from_micros(100), StdDuration::from_secs(1));
        let handle = std::thread::Builder::new()
            .name("clash-epoch-driver".into())
            .spawn(move || {
                let mut last_epoch = Epoch::ZERO;
                while !stop_flag.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    if shared.is_shutdown() {
                        break;
                    }
                    let clock = Timestamp::from_millis(shared.stream_clock.load(Ordering::Acquire));
                    let current = epoch.epoch_of(clock);
                    if current <= last_epoch {
                        continue;
                    }
                    last_epoch = current;
                    // A poisoned core means a barrier panicked on the
                    // owning thread; the driver has nothing left to drive.
                    let Ok(mut core) = core.lock() else { break };
                    if core.is_shutdown() {
                        break;
                    }
                    // Epoch barrier: merge the per-worker statistics
                    // deltas before the controller evaluates them.
                    if let Err(e) = core.try_flush() {
                        *error_slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(e);
                        break;
                    }
                    core.record_epoch_tick(current);
                    let mut controller = controller.lock().unwrap_or_else(PoisonError::into_inner);
                    let before = controller.last_decision.map(|d| d.epoch);
                    if let Err(e) = controller.on_epoch(&mut *core, current) {
                        *error_slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(e);
                        break;
                    }
                    // Trace the cost-model output of a fresh evaluation
                    // (boundaries that skipped re-planning leave the last
                    // decision untouched).
                    if let Some(decision) = controller.last_decision {
                        if before != Some(decision.epoch) {
                            core.record_controller_decision(&decision);
                        }
                    }
                }
            })
            .expect("spawn epoch driver thread");
        EpochDriver {
            stop,
            error,
            handle: Some(handle),
        }
    }

    /// The error that stopped the driver, if any.
    pub fn error(&self) -> Option<ClashError> {
        self.error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Stops and joins the driver thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for EpochDriver {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use crate::adaptive::{AdaptiveConfig, AdaptiveController};
    use crate::engine::EngineConfig;
    use crate::parallel::ParallelEngine;
    use clash_catalog::{Catalog, Statistics};
    use clash_common::{QueryId, Timestamp, TupleBuilder, Window};
    use clash_query::parse_query;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration as StdDuration, Instant};

    /// The acceptance scenario of the control-plane driver: an engine fed
    /// exclusively through a `SourceHandle` (zero coordinator-thread
    /// ingests) re-optimizes — the driver fires the controller off the
    /// stream clock, and the install goes through the quiesce protocol
    /// while the producer keeps pushing.
    #[test]
    fn source_fed_engine_reconfigures_without_coordinator_ingests() {
        let mut catalog = Catalog::new();
        catalog.register("R", ["a"], Window::secs(3600), 2).unwrap();
        catalog
            .register("S", ["a", "b"], Window::secs(3600), 2)
            .unwrap();
        catalog.register("T", ["b"], Window::secs(3600), 2).unwrap();
        let mut stats = Statistics::new();
        for m in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            stats.set_rate(m, 100.0);
        }
        let q1 = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let (controller, plan) =
            AdaptiveController::new(catalog.clone(), vec![q1], stats, AdaptiveConfig::default())
                .unwrap();
        let config = EngineConfig {
            epoch_tick: StdDuration::from_millis(1),
            ..EngineConfig::default()
        };
        let mut engine = ParallelEngine::new(catalog.clone(), plan, config, 2);
        let controller = Arc::new(Mutex::new(controller));
        engine.start_epoch_driver(controller.clone());
        let mut handle = engine.open_source();
        // A query-set change guarantees the next evaluated boundary
        // schedules a different plan (two epochs later it installs).
        let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b)").unwrap();
        controller.lock().unwrap().add_query(q2);

        let r = catalog.relation_by_name("R").unwrap();
        let s = catalog.relation_by_name("S").unwrap();
        let deadline = Instant::now() + StdDuration::from_secs(30);
        let mut ts = 0u64;
        let mut pushes = 0u64;
        let reconfigured = loop {
            // Advance stream time ~1/3 epoch per round so the driver sees
            // several boundaries.
            ts += 333;
            let rt = TupleBuilder::new(&r.schema, Timestamp::from_millis(ts))
                .set("a", (ts % 5) as i64)
                .build();
            handle.push(r.id, rt).unwrap();
            let st = TupleBuilder::new(&s.schema, Timestamp::from_millis(ts))
                .set("a", (ts % 5) as i64)
                .set("b", (ts % 3) as i64)
                .build();
            handle.push(s.id, st).unwrap();
            pushes += 2;
            if controller.lock().unwrap().reconfigurations > 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(StdDuration::from_millis(2));
        };
        assert!(
            reconfigured,
            "control-plane driver never installed a reconfiguration \
             (driver error: {:?})",
            engine.epoch_driver_error()
        );
        assert!(engine.epoch_driver_error().is_none());
        // The producer outlived the install: pushes after the quiesce
        // still work and the engine drains cleanly.
        handle
            .push(
                r.id,
                TupleBuilder::new(&r.schema, Timestamp::from_millis(ts + 10))
                    .set("a", 1)
                    .build(),
            )
            .unwrap();
        pushes += 1;
        let snap = engine.snapshot();
        assert_eq!(
            snap.tuples_ingested, pushes,
            "every push must be accounted; none dropped by the install"
        );
    }
}
