//! Criterion benches for the DESIGN.md ablations: solver warm start and
//! plan-space switches.

use clash_bench::ablation::{plan_space_ablation, warm_start_ablation};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("solver_warm_start", |b| {
        b.iter(|| warm_start_ablation(10, 3));
    });
    group.bench_function("plan_space_switches", |b| {
        b.iter(|| plan_space_ablation(10, 3));
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
