//! Metadata describing a registered streamed relation.

use clash_common::{LeafLayout, RelationId, SchemaRef, Window};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Metadata of a streamed input relation.
///
/// Besides the schema this carries the two deployment knobs the paper's
/// cost model depends on:
///
/// * `window` — the per-relation join window (Section I-A),
/// * `parallelism` — the number of worker partitions of this relation's
///   store. The broadcast factor χ of Equation 1 equals this parallelism
///   whenever a probing tuple does not know the store's partitioning
///   attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelationMeta {
    /// Identifier assigned by the catalog at registration time.
    pub id: RelationId,
    /// Relation name (unique within a catalog).
    pub name: String,
    /// Attribute schema.
    pub schema: SchemaRef,
    /// Cached leaf construction layout (width + name→slot map), derived
    /// from the schema once at registration so ingest-side
    /// [`clash_common::TupleBuilder`]s skip the per-attribute schema walk.
    pub layout: Arc<LeafLayout>,
    /// Join window for tuples of this relation.
    pub window: Window,
    /// Number of partitions the relation's store is split into.
    pub parallelism: usize,
}

impl RelationMeta {
    /// Returns the parallelism as a floating point broadcast factor.
    pub fn broadcast_factor(&self) -> f64 {
        self.parallelism.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::Schema;
    use std::sync::Arc;

    #[test]
    fn broadcast_factor_is_at_least_one() {
        let schema = Arc::new(Schema::new(RelationId::new(0), "R", ["a"]));
        let meta = RelationMeta {
            id: RelationId::new(0),
            name: "R".into(),
            layout: Arc::new(LeafLayout::of_schema(&schema)),
            schema,
            window: Window::secs(5),
            parallelism: 0,
        };
        assert_eq!(meta.broadcast_factor(), 1.0);
        let meta = RelationMeta {
            parallelism: 5,
            ..meta
        };
        assert_eq!(meta.broadcast_factor(), 5.0);
    }
}
