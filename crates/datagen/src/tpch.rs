//! TPC-H-shaped streaming schema, workloads and data generator.

use clash_catalog::{Catalog, Statistics};
use clash_common::{QueryId, RelationId, Result, Timestamp, Tuple, TupleBuilder, Value, Window};
use clash_query::{JoinQuery, QueryBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The TPC-H-shaped workload: catalog, statistics prior and query sets.
#[derive(Debug)]
pub struct TpchWorkload {
    /// Catalog with the eight TPC-H relations registered.
    pub catalog: Catalog,
    /// Statistics prior reflecting the relative TPC-H cardinalities.
    pub stats: Statistics,
}

/// Relative cardinality weights of the TPC-H relations (per scale factor):
/// lineitem 6M, orders 1.5M, partsupp 800k, part 200k, customer 150k,
/// supplier 10k, nation 25, region 5.
const REL_WEIGHTS: &[(&str, f64)] = &[
    ("region", 5.0),
    ("nation", 25.0),
    ("supplier", 10_000.0),
    ("customer", 150_000.0),
    ("part", 200_000.0),
    ("partsupp", 800_000.0),
    ("orders", 1_500_000.0),
    ("lineitem", 6_000_000.0),
];

impl TpchWorkload {
    /// Builds the catalog and statistics. `parallelism` is the number of
    /// partitions per store; `window` applies to every relation.
    pub fn new(parallelism: usize, window: Window) -> Result<Self> {
        let mut catalog = Catalog::new();
        catalog.register("region", ["regionkey", "name"], window, 1)?;
        catalog.register("nation", ["nationkey", "regionkey", "name"], window, 1)?;
        catalog.register(
            "supplier",
            ["suppkey", "nationkey", "acctbal"],
            window,
            parallelism,
        )?;
        catalog.register(
            "customer",
            ["custkey", "nationkey", "mktsegment"],
            window,
            parallelism,
        )?;
        catalog.register("part", ["partkey", "brand", "size"], window, parallelism)?;
        catalog.register(
            "partsupp",
            ["partkey", "suppkey", "supplycost"],
            window,
            parallelism,
        )?;
        catalog.register(
            "orders",
            ["orderkey", "custkey", "orderstatus", "totalprice"],
            window,
            parallelism,
        )?;
        catalog.register(
            "lineitem",
            ["orderkey", "partkey", "suppkey", "linestatus", "quantity"],
            window,
            parallelism,
        )?;

        let mut stats = Statistics::new();
        let total: f64 = REL_WEIGHTS.iter().map(|(_, w)| w).sum();
        for (name, weight) in REL_WEIGHTS {
            let id = catalog.relation_id(name).expect("registered");
            // Normalize to a combined arrival rate of ~10k tuples/second.
            stats.set_rate(id, 10_000.0 * weight / total);
        }
        // Primary/foreign-key joins: selectivity ~ 1/|referenced keys|.
        let pk_fk = [
            ("nation", "regionkey", "region", "regionkey", 1.0 / 5.0),
            ("supplier", "nationkey", "nation", "nationkey", 1.0 / 25.0),
            ("customer", "nationkey", "nation", "nationkey", 1.0 / 25.0),
            ("partsupp", "suppkey", "supplier", "suppkey", 1.0 / 10_000.0),
            ("partsupp", "partkey", "part", "partkey", 1.0 / 200_000.0),
            ("orders", "custkey", "customer", "custkey", 1.0 / 150_000.0),
            (
                "lineitem",
                "orderkey",
                "orders",
                "orderkey",
                1.0 / 1_500_000.0,
            ),
            ("lineitem", "partkey", "part", "partkey", 1.0 / 200_000.0),
            ("lineitem", "suppkey", "supplier", "suppkey", 1.0 / 10_000.0),
        ];
        for (r1, a1, r2, a2, sel) in pk_fk {
            stats.set_selectivity(catalog.attr(r1, a1)?, catalog.attr(r2, a2)?, sel);
        }
        // The high-selectivity status join the paper singles out:
        // lineitem.linestatus = orders.orderstatus over a 3-value domain.
        stats.set_selectivity(
            catalog.attr("lineitem", "linestatus")?,
            catalog.attr("orders", "orderstatus")?,
            1.0 / 3.0,
        );
        Ok(TpchWorkload { catalog, stats })
    }

    /// The five queries of Fig. 7a:
    /// q1: region–nation–supplier–partsupp, q2: nation–supplier–partsupp–part,
    /// q3: supplier–partsupp–part–lineitem, q4: supplier–partsupp–lineitem–orders,
    /// q5: part–partsupp–lineitem–orders.
    pub fn five_queries(&self) -> Result<Vec<JoinQuery>> {
        let c = &self.catalog;
        let q = |id: u32, name: &str| QueryBuilder::new(QueryId::new(id), name, c);
        Ok(vec![
            q(0, "q1")
                .join("region", "regionkey", "nation", "regionkey")?
                .join("nation", "nationkey", "supplier", "nationkey")?
                .join("supplier", "suppkey", "partsupp", "suppkey")?
                .build()?,
            q(1, "q2")
                .join("nation", "nationkey", "supplier", "nationkey")?
                .join("supplier", "suppkey", "partsupp", "suppkey")?
                .join("partsupp", "partkey", "part", "partkey")?
                .build()?,
            q(2, "q3")
                .join("supplier", "suppkey", "partsupp", "suppkey")?
                .join("partsupp", "partkey", "part", "partkey")?
                .join("part", "partkey", "lineitem", "partkey")?
                .build()?,
            q(3, "q4")
                .join("supplier", "suppkey", "partsupp", "suppkey")?
                .join("partsupp", "partkey", "lineitem", "partkey")?
                .join("lineitem", "orderkey", "orders", "orderkey")?
                .build()?,
            q(4, "q5")
                .join("part", "partkey", "partsupp", "partkey")?
                .join("partsupp", "suppkey", "lineitem", "suppkey")?
                .join("lineitem", "orderkey", "orders", "orderkey")?
                .build()?,
        ])
    }

    /// The extended ten-query workload: the five queries of Fig. 7a plus
    /// five more with partly overlapping joins (customer/orders/lineitem
    /// chains and the high-selectivity status join).
    pub fn ten_queries(&self) -> Result<Vec<JoinQuery>> {
        let c = &self.catalog;
        let mut queries = self.five_queries()?;
        let q = |id: u32, name: &str| QueryBuilder::new(QueryId::new(id), name, c);
        queries.push(
            q(5, "q6")
                .join("customer", "nationkey", "nation", "nationkey")?
                .join("nation", "regionkey", "region", "regionkey")?
                .build()?,
        );
        queries.push(
            q(6, "q7")
                .join("customer", "custkey", "orders", "custkey")?
                .join("orders", "orderkey", "lineitem", "orderkey")?
                .build()?,
        );
        queries.push(
            q(7, "q8")
                .join("orders", "orderkey", "lineitem", "orderkey")?
                .join("lineitem", "suppkey", "supplier", "suppkey")?
                .build()?,
        );
        queries.push(
            q(8, "q9")
                .join("orders", "orderstatus", "lineitem", "linestatus")?
                .build()?,
        );
        queries.push(
            q(9, "q10")
                .join("supplier", "nationkey", "nation", "nationkey")?
                .join("supplier", "suppkey", "lineitem", "suppkey")?
                .join("lineitem", "orderkey", "orders", "orderkey")?
                .build()?,
        );
        Ok(queries)
    }
}

/// Streaming tuple generator over the TPC-H-shaped schema.
///
/// Key domains scale with `scale`: e.g. `scale = 0.01` yields 100 supplier
/// keys and 2 000 part keys, keeping join hit rates proportional to the
/// original data while staying laptop-sized.
#[derive(Debug)]
pub struct TpchGenerator {
    rng: StdRng,
    scale: f64,
    next_ts: u64,
    ts_step: u64,
    counter: u64,
    /// Interned categorical string values: repeated flags share one
    /// `Arc<str>` across every generated tuple (and therefore across every
    /// store index key built from them) instead of allocating a fresh
    /// string per tuple.
    statuses: [Value; 3],
    region_name: Value,
    nation_name: Value,
    mktsegment: Value,
}

impl TpchGenerator {
    /// Creates a generator with the given scale factor and RNG seed.
    pub fn new(scale: f64, seed: u64) -> Self {
        TpchGenerator {
            rng: StdRng::seed_from_u64(seed),
            scale: scale.max(1e-6),
            next_ts: 0,
            ts_step: 1,
            counter: 0,
            statuses: [Value::str("F"), Value::str("O"), Value::str("P")],
            region_name: Value::str("REGION"),
            nation_name: Value::str("NATION"),
            mktsegment: Value::str("BUILDING"),
        }
    }

    fn key(&mut self, base: f64) -> i64 {
        let domain = (base * self.scale).ceil().max(1.0) as i64;
        self.rng.gen_range(0..domain)
    }

    fn ts(&mut self) -> Timestamp {
        self.next_ts += self.ts_step;
        Timestamp::from_millis(self.next_ts)
    }

    /// Generates the next tuple of the named relation. Builders run
    /// through the catalog's cached [`clash_common::LeafLayout`] (arena-
    /// backed leaf buffers, precomputed slot map); categorical strings are
    /// interned `Arc<str>` clones, not fresh allocations.
    pub fn tuple(&mut self, workload: &TpchWorkload, relation: &str) -> Result<Tuple> {
        let meta = workload.catalog.relation_by_name(relation)?;
        let ts = self.ts();
        self.counter += 1;
        let builder = TupleBuilder::with_layout(&meta.schema, &meta.layout, ts);
        let t = match relation {
            "region" => builder
                .set("regionkey", self.rng.gen_range(0..5i64))
                .set("name", self.region_name.clone())
                .build(),
            "nation" => builder
                .set("nationkey", self.rng.gen_range(0..25i64))
                .set("regionkey", self.rng.gen_range(0..5i64))
                .set("name", self.nation_name.clone())
                .build(),
            "supplier" => {
                let k = self.key(10_000.0);
                builder
                    .set("suppkey", k)
                    .set("nationkey", self.rng.gen_range(0..25i64))
                    .set("acctbal", self.rng.gen_range(0..100_000i64))
                    .build()
            }
            "customer" => {
                let k = self.key(150_000.0);
                builder
                    .set("custkey", k)
                    .set("nationkey", self.rng.gen_range(0..25i64))
                    .set("mktsegment", self.mktsegment.clone())
                    .build()
            }
            "part" => {
                let k = self.key(200_000.0);
                builder
                    .set("partkey", k)
                    .set("brand", self.rng.gen_range(0..25i64))
                    .set("size", self.rng.gen_range(1..50i64))
                    .build()
            }
            "partsupp" => {
                let pk = self.key(200_000.0);
                let sk = self.key(10_000.0);
                builder
                    .set("partkey", pk)
                    .set("suppkey", sk)
                    .set("supplycost", self.rng.gen_range(1..1_000i64))
                    .build()
            }
            "orders" => {
                let ok = self.key(1_500_000.0);
                let ck = self.key(150_000.0);
                builder
                    .set("orderkey", ok)
                    .set("custkey", ck)
                    .set(
                        "orderstatus",
                        self.statuses[self.rng.gen_range(0..3)].clone(),
                    )
                    .set("totalprice", self.rng.gen_range(1..500_000i64))
                    .build()
            }
            "lineitem" => {
                let ok = self.key(1_500_000.0);
                let pk = self.key(200_000.0);
                let sk = self.key(10_000.0);
                builder
                    .set("orderkey", ok)
                    .set("partkey", pk)
                    .set("suppkey", sk)
                    .set(
                        "linestatus",
                        self.statuses[self.rng.gen_range(0..3)].clone(),
                    )
                    .set("quantity", self.rng.gen_range(1..50i64))
                    .build()
            }
            other => {
                return Err(clash_common::ClashError::unknown(format!(
                    "TPC-H relation {other}"
                )))
            }
        };
        Ok(t)
    }

    /// Generates a mixed stream of `n` tuples whose per-relation frequency
    /// follows the TPC-H cardinality weights. Returns `(relation, tuple)`
    /// pairs in timestamp order.
    pub fn mixed_stream(
        &mut self,
        workload: &TpchWorkload,
        n: usize,
    ) -> Result<Vec<(RelationId, Tuple)>> {
        let total: f64 = REL_WEIGHTS.iter().map(|(_, w)| w).sum();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut pick = self.rng.gen_range(0.0..total);
            let mut chosen = REL_WEIGHTS[REL_WEIGHTS.len() - 1].0;
            for (name, w) in REL_WEIGHTS {
                if pick < *w {
                    chosen = name;
                    break;
                }
                pick -= w;
            }
            let id = workload.catalog.relation_id(chosen).expect("registered");
            let tuple = self.tuple(workload, chosen)?;
            out.push((id, tuple));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_all_relations_and_queries() {
        let w = TpchWorkload::new(2, Window::secs(60)).unwrap();
        assert_eq!(w.catalog.len(), 8);
        let five = w.five_queries().unwrap();
        assert_eq!(five.len(), 5);
        assert!(five.iter().all(|q| q.size() == 4));
        let ten = w.ten_queries().unwrap();
        assert_eq!(ten.len(), 10);
        for q in &ten {
            assert!(q.validate().is_ok());
        }
        // Query ids are unique.
        let mut ids: Vec<u32> = ten.iter().map(|q| q.id.0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn statistics_reflect_cardinality_ordering() {
        let w = TpchWorkload::new(1, Window::secs(60)).unwrap();
        let lineitem = w.catalog.relation_id("lineitem").unwrap();
        let region = w.catalog.relation_id("region").unwrap();
        assert!(w.stats.rate(lineitem) > w.stats.rate(region));
        // The status join is high selectivity (1/3), the key joins are low.
        let hi = w.stats.selectivity(
            w.catalog.attr("lineitem", "linestatus").unwrap(),
            w.catalog.attr("orders", "orderstatus").unwrap(),
        );
        let lo = w.stats.selectivity(
            w.catalog.attr("lineitem", "orderkey").unwrap(),
            w.catalog.attr("orders", "orderkey").unwrap(),
        );
        assert!(hi > lo * 100.0);
    }

    #[test]
    fn generator_produces_schema_conforming_tuples() {
        let w = TpchWorkload::new(1, Window::secs(60)).unwrap();
        let mut gen = TpchGenerator::new(0.01, 7);
        for name in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            let t = gen.tuple(&w, name).unwrap();
            let meta = w.catalog.relation_by_name(name).unwrap();
            assert_eq!(t.arity(), meta.schema.arity(), "{name} arity");
            assert!(t.relations.contains(meta.id));
        }
        assert!(gen.tuple(&w, "bogus").is_err());
    }

    #[test]
    fn mixed_stream_is_timestamp_ordered_and_weighted() {
        let w = TpchWorkload::new(1, Window::secs(60)).unwrap();
        let mut gen = TpchGenerator::new(0.01, 42);
        let stream = gen.mixed_stream(&w, 2_000).unwrap();
        assert_eq!(stream.len(), 2_000);
        for win in stream.windows(2) {
            assert!(win[0].1.ts <= win[1].1.ts);
        }
        let lineitem = w.catalog.relation_id("lineitem").unwrap();
        let region = w.catalog.relation_id("region").unwrap();
        let li_count = stream.iter().filter(|(r, _)| *r == lineitem).count();
        let re_count = stream.iter().filter(|(r, _)| *r == region).count();
        assert!(li_count > re_count, "lineitem dominates the stream");
    }

    #[test]
    fn categorical_strings_are_interned_across_tuples() {
        let w = TpchWorkload::new(1, Window::secs(60)).unwrap();
        let mut gen = TpchGenerator::new(0.01, 3);
        let name_attr = w.catalog.attr("region", "name").unwrap();
        let a = gen.tuple(&w, "region").unwrap();
        let b = gen.tuple(&w, "region").unwrap();
        let (sa, sb) = (
            a.get(&name_attr).unwrap().as_str().unwrap(),
            b.get(&name_attr).unwrap().as_str().unwrap(),
        );
        assert_eq!(sa, "REGION");
        // Same backing Arc<str>, not merely equal content.
        assert!(
            std::ptr::eq(sa.as_ptr(), sb.as_ptr()),
            "repeated categorical value must share one interned allocation"
        );
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let w = TpchWorkload::new(1, Window::secs(60)).unwrap();
        let a: Vec<_> = TpchGenerator::new(0.01, 9).mixed_stream(&w, 100).unwrap();
        let b: Vec<_> = TpchGenerator::new(0.01, 9).mixed_stream(&w, 100).unwrap();
        assert_eq!(a, b);
        let c: Vec<_> = TpchGenerator::new(0.01, 10).mixed_stream(&w, 100).unwrap();
        assert_ne!(a, c);
    }
}
