//! Runtime metrics: the quantities behind Fig. 7b–7d and Fig. 8.

use clash_common::{FxHashMap, QueryId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Aggregated latency statistics in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Maximum latency (µs).
    pub max_us: f64,
}

/// Mutable metrics accumulated by the engine.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    /// Input tuples ingested per relation (keyed by raw relation id).
    pub tuples_ingested: u64,
    /// Tuple copies sent between stores (the probe cost actually paid).
    pub tuples_sent: u64,
    /// Messages that were broadcast to every partition of a store.
    pub broadcasts: u64,
    /// Join results emitted per query (bumped once per emitted result —
    /// Fx-hashed so the emission path does not pay SipHash per result).
    pub results: FxHashMap<QueryId, u64>,
    /// Probe lookups performed.
    pub probes: u64,
    /// Sum and max of per-result latency (µs), per query.
    latency_sum_us: f64,
    latency_max_us: f64,
    latency_count: u64,
    /// Wall-clock processing time spent inside `ingest`.
    pub busy: Duration,
}

impl EngineMetrics {
    /// Records the latency of one emitted result.
    pub fn record_latency(&mut self, latency: Duration) {
        let us = latency.as_secs_f64() * 1e6;
        self.latency_sum_us += us;
        self.latency_max_us = self.latency_max_us.max(us);
        self.latency_count += 1;
    }

    /// Latency statistics over all emitted results.
    pub fn latency(&self) -> LatencyStats {
        LatencyStats {
            count: self.latency_count,
            mean_us: if self.latency_count == 0 {
                0.0
            } else {
                self.latency_sum_us / self.latency_count as f64
            },
            max_us: self.latency_max_us,
        }
    }

    /// Total results across all queries.
    pub fn total_results(&self) -> u64 {
        self.results.values().sum()
    }

    /// Merges another metrics accumulation into this one (used by the
    /// parallel runtime to aggregate per-worker deltas at epoch barriers).
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.tuples_ingested += other.tuples_ingested;
        self.tuples_sent += other.tuples_sent;
        self.broadcasts += other.broadcasts;
        self.probes += other.probes;
        for (query, n) in &other.results {
            *self.results.entry(*query).or_default() += n;
        }
        self.latency_sum_us += other.latency_sum_us;
        self.latency_max_us = self.latency_max_us.max(other.latency_max_us);
        self.latency_count += other.latency_count;
        self.busy += other.busy;
    }
}

/// Immutable snapshot of the engine state used by experiment drivers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Input tuples ingested.
    pub tuples_ingested: u64,
    /// Tuple copies sent between stores.
    pub tuples_sent: u64,
    /// Broadcast sends.
    pub broadcasts: u64,
    /// Probe lookups performed.
    pub probes: u64,
    /// Results per query (keyed by raw query id).
    pub results: HashMap<u32, u64>,
    /// Latency statistics.
    pub latency: LatencyStats,
    /// Total bytes held by all stores.
    pub store_bytes: usize,
    /// Total tuples held by all stores.
    pub store_tuples: usize,
    /// Number of store instances.
    pub num_stores: usize,
    /// Wall-clock time spent processing (`ingest` calls).
    pub busy_secs: f64,
    /// Throughput: ingested tuples per busy second.
    pub throughput_tps: f64,
}

impl MetricsSnapshot {
    /// Results emitted for one query.
    pub fn results_for(&self, query: QueryId) -> u64 {
        self.results.get(&query.0).copied().unwrap_or(0)
    }

    /// Total results across queries.
    pub fn total_results(&self) -> u64 {
        self.results.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_aggregation() {
        let mut m = EngineMetrics::default();
        assert_eq!(m.latency(), LatencyStats::default());
        m.record_latency(Duration::from_micros(100));
        m.record_latency(Duration::from_micros(300));
        let l = m.latency();
        assert_eq!(l.count, 2);
        assert!((l.mean_us - 200.0).abs() < 1e-6);
        assert!((l.max_us - 300.0).abs() < 1e-6);
    }

    #[test]
    fn result_counting() {
        let mut m = EngineMetrics::default();
        *m.results.entry(QueryId::new(1)).or_default() += 3;
        *m.results.entry(QueryId::new(2)).or_default() += 2;
        assert_eq!(m.total_results(), 5);
    }

    #[test]
    fn snapshot_lookups() {
        let mut s = MetricsSnapshot::default();
        s.results.insert(7, 11);
        assert_eq!(s.results_for(QueryId::new(7)), 11);
        assert_eq!(s.results_for(QueryId::new(8)), 0);
        assert_eq!(s.total_results(), 11);
    }
}
