//! Criterion bench behind Fig. 7b: end-to-end processing throughput of the
//! three strategies on the TPC-H-shaped 5-query workload.

use clash_bench::fig7::run_fig7;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_multi_query");
    group.sample_size(10);
    for num_queries in [5usize, 10] {
        group.bench_with_input(
            BenchmarkId::new("plan_and_stream", num_queries),
            &num_queries,
            |b, &nq| {
                b.iter(|| run_fig7(nq, 2_000, 0.002, 42));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
