//! Runtime observability demo: the Fig. 7 multi-query TPC-H workload
//! streamed through the sharded `ParallelEngine`, then inspected through
//! the two telemetry surfaces this crate exposes:
//!
//! 1. `telemetry_snapshot()` — a Prometheus-style text page with engine
//!    counters, per-query result counts, per-query and per-shard latency
//!    quantiles (p50/p90/p99/p999), per-store gauges and arena counters.
//! 2. `trace_json()` — the per-thread trace rings drained into Chrome
//!    trace-event JSON (load it at `chrome://tracing` or
//!    <https://ui.perfetto.dev>).
//!
//! The demo asserts the page and the trace are well-formed (nonzero
//! result counters, quantile lines present, balanced JSON, nonzero event
//! count), so it doubles as an end-to-end smoke test for the telemetry
//! layer.
//!
//! Run with: `cargo run --release --example observability`

use clash_common::Window;
use clash_datagen::{TpchGenerator, TpchWorkload};
use clash_optimizer::{Planner, PlannerConfig, Strategy};
use clash_runtime::{EngineConfig, ParallelEngine};

const NUM_TUPLES: usize = 20_000;
const WORKERS: usize = 2;

/// Minimal structural check that `text` is one JSON value with balanced
/// braces and brackets (string-aware, so `"}"` inside an event name does
/// not miscount).
fn json_is_balanced(text: &str) -> bool {
    let (mut braces, mut brackets) = (0i64, 0i64);
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            match c {
                '\\' if !escaped => escaped = true,
                '"' if !escaped => in_string = false,
                _ => escaped = false,
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => braces += 1,
            '}' => braces -= 1,
            '[' => brackets += 1,
            ']' => brackets -= 1,
            _ => {}
        }
        if braces < 0 || brackets < 0 {
            return false;
        }
    }
    braces == 0 && brackets == 0 && !in_string
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Fig. 7 five-query workload on the shared CMQO plan.
    let workload = TpchWorkload::new(WORKERS, Window::secs(3600))?;
    let queries = workload.five_queries()?;
    let planner = Planner::new(&workload.catalog, &workload.stats, PlannerConfig::default());
    let report = planner.plan(&queries, Strategy::GlobalIlp)?;
    let mut engine = ParallelEngine::new(
        workload.catalog.clone(),
        report.plan,
        EngineConfig::default(),
        WORKERS,
    );

    let mut generator = TpchGenerator::new(0.002, 42);
    let stream = generator.mixed_stream(&workload, NUM_TUPLES)?;
    println!(
        "streaming {NUM_TUPLES} TPC-H tuples through {} queries on {WORKERS} workers...\n",
        queries.len()
    );
    for (relation, tuple) in stream {
        engine.ingest(relation, tuple)?;
    }

    // --- Surface 1: the metrics exposition page. ---
    let page = engine.telemetry_snapshot();
    println!("================ telemetry_snapshot() ================");
    print!("{page}");
    println!("======================================================\n");

    // The page must carry nonzero per-query result counters...
    let results: u64 = page
        .lines()
        .filter(|l| l.starts_with("clash_results_total{query="))
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(0.0) as u64
        })
        .sum();
    assert!(results > 0, "no results reported on the exposition page");
    // ...per-query latency quantiles (Fig. 7d's tail, not just the mean)...
    assert!(
        page.contains("clash_result_latency_us{query=")
            && page.contains("quantile=\"0.99\"")
            && page.contains("quantile=\"0.999\""),
        "per-query latency quantiles missing"
    );
    // ...per-shard ingest-to-emit latency and worker gauges...
    assert!(
        page.contains("clash_shard_latency_us{worker=")
            && page.contains("clash_worker_busy_seconds{worker="),
        "per-shard telemetry missing"
    );
    // ...and the store/arena gauge sections.
    assert!(
        page.contains("clash_store_tuples{store=") && page.contains("clash_arena_reused_total"),
        "store/arena sections missing"
    );
    // The install gate must surface its rejection counter (zero here:
    // every installed plan verified clean).
    assert!(
        page.contains("clash_plan_rejections_total"),
        "plan-rejection counter missing"
    );
    // The tiered state layer must surface its cold tier: segment gauges
    // present, and a 20k-tuple stream spans enough epochs that freezing
    // (on by default) must actually have happened.
    assert!(
        page.contains("clash_segments_total{store=") && page.contains("clash_segment_bytes{store="),
        "segment gauges missing"
    );
    let compactions: f64 = page
        .lines()
        .filter(|l| l.starts_with("clash_compactions_total{store="))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum();
    assert!(
        compactions > 0.0,
        "no compactions recorded — cold epochs never froze"
    );
    // Every sample line must parse: `name{labels} value` or `name value`.
    for line in page
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let value = line.rsplit(' ').next().unwrap_or("");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable exposition line: {line}"
        );
    }

    // --- Surface 2: the Chrome trace. ---
    let trace = engine.trace_json();
    assert!(
        trace.starts_with("{\"traceEvents\":["),
        "unexpected trace envelope"
    );
    assert!(json_is_balanced(&trace), "trace JSON is unbalanced");
    let events = trace.matches("\"ph\":").count();
    assert!(events > 0, "trace ring captured no events");

    let out = std::path::Path::new("target").join("observability_trace.json");
    std::fs::create_dir_all("target")?;
    std::fs::write(&out, &trace)?;
    println!(
        "wrote {events} trace events to {} ({} bytes)",
        out.display(),
        trace.len()
    );
    println!("load it at chrome://tracing or https://ui.perfetto.dev");
    println!("\nok: exposition page parsed, {results} results, {events} trace events");
    Ok(())
}
