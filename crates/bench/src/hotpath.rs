//! Hot-path microbenchmarks: the zero-copy rope tuple core and the probe
//! path against the seed's flat representation.
//!
//! The `flat` module re-implements the seed's convenience representation
//! exactly as it shipped — `(AttrRef, Value)` pairs behind an `Arc`,
//! linear `get`, deep-copy `join`, posting-list clones on every candidate
//! lookup and drain-and-rebuild expiry — so every suite measures
//! *baseline* (seed algorithm) against *optimized* (the live code) on
//! identical inputs, with a correctness cross-check before timing.
//!
//! Suites (all reported as operations per second, best of
//! [`BEST_OF`] runs):
//!
//! * `join_chain_5way` — folding 5 base tuples into a 5-way join result,
//!   the per-hop cost a partial result pays along a probe order.
//! * `probe_get` — attribute lookups on the 5-way result (predicate
//!   evaluation): linear pair scan vs. positional rope descent.
//! * `store_insert` — inserts into an indexed epoch container.
//! * `store_probe` — index-driven probes against a filled container,
//!   including the candidate lookup (cloned vs. borrowed postings).
//! * `store_expire` — window expiry (drain-and-rebuild vs. in-place
//!   retain with incremental index repair).
//!
//! The end-to-end section replays the Fig. 7 five-query workload through
//! the optimized engine, tying the microbenchmarks to a whole-system
//! throughput number.
//!
//! The multi-source section measures the async ingestion front-end: the
//! identical two-query workload pushed through the parallel engine once
//! by the coordinator thread (the old single-producer path) and once per
//! source count by concurrent `SourceHandle` producer threads, asserting
//! identical result counts and reporting wall-clock throughput plus the
//! worker busy-balance (the hardware-independent parallelism evidence on
//! a single-core runner).
//!
//! The telemetry section replays the Fig. 7 workload with the trace ring
//! disabled and enabled, reporting the throughput ratio the bench guard
//! holds above its floor: always-on tracing must stay within a few
//! percent of the untraced hot path.

use crate::allocs::AllocSpan;
use crate::fig7::{run_fig7, Fig7Row};
use clash_catalog::{Catalog, Statistics};
use clash_common::{
    AttrId, AttrRef, Epoch, LeafLayout, QueryId, RelationId, RelationSet, Schema, SlotAccessor,
    Timestamp, Tuple, TupleBuilder, Value, Window,
};
use clash_datagen::{TpchGenerator, TpchWorkload};
use clash_optimizer::{Planner, PlannerConfig, StoreDescriptor, Strategy};
use clash_query::{parse_query, EquiPredicate};
use clash_runtime::store::{partition_hash, StoreInstance};
use clash_runtime::{EngineConfig, LocalEngine, ParallelEngine};
use std::time::Instant;

/// Every suite takes the best of this many timed runs.
pub const BEST_OF: usize = 3;

/// The seed's tuple and store representation, reproduced verbatim as the
/// measurement baseline.
pub mod flat {
    use clash_common::{AttrRef, RelationId, RelationSet, Timestamp, Value, Window};
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;
    use std::hash::{Hash, Hasher};
    use std::sync::Arc;

    /// The seed partition router: a keyed SipHash (`DefaultHasher`) per
    /// routed tuple. Baseline of the `partition_route` suite.
    pub fn flat_partition_hash(value: &Value, parallelism: usize) -> usize {
        if parallelism <= 1 {
            return 0;
        }
        let mut h = DefaultHasher::new();
        value.hash(&mut h);
        (h.finish() as usize) % parallelism
    }

    /// The seed `Tuple`: an `Arc`ed vector of `(attribute, value)` pairs.
    #[derive(Debug, Clone)]
    pub struct FlatTuple {
        pub ts: Timestamp,
        pub relations: RelationSet,
        pub values: Arc<Vec<(AttrRef, Value)>>,
    }

    impl FlatTuple {
        pub fn base(relation: RelationId, ts: Timestamp, values: Vec<(AttrRef, Value)>) -> Self {
            FlatTuple {
                ts,
                relations: RelationSet::singleton(relation),
                values: Arc::new(values),
            }
        }

        /// Linear scan, as the seed did.
        pub fn get(&self, attr: &AttrRef) -> Option<&Value> {
            self.values.iter().find(|(a, _)| a == attr).map(|(_, v)| v)
        }

        /// Deep copy of both sides into a fresh allocation, as the seed did.
        pub fn join(&self, other: &FlatTuple) -> Option<FlatTuple> {
            if !self.relations.is_disjoint(&other.relations) {
                return None;
            }
            let mut values = Vec::with_capacity(self.values.len() + other.values.len());
            values.extend(self.values.iter().cloned());
            values.extend(other.values.iter().cloned());
            Some(FlatTuple {
                ts: self.ts.max(other.ts),
                relations: self.relations.union(&other.relations),
                values: Arc::new(values),
            })
        }

        pub fn approx_size_bytes(&self) -> usize {
            let header = 32;
            let per_entry = std::mem::size_of::<(AttrRef, Value)>();
            header
                + self
                    .values
                    .iter()
                    .map(|(_, v)| per_entry + v.approx_size_bytes())
                    .sum::<usize>()
        }
    }

    /// The seed `EpochContainer`: posting-list clones on candidate
    /// lookups, drain-and-rebuild expiry.
    #[derive(Debug, Default)]
    pub struct FlatContainer {
        pub tuples: Vec<FlatTuple>,
        indexes: HashMap<AttrRef, HashMap<Value, Vec<usize>>>,
        bytes: usize,
    }

    impl FlatContainer {
        pub fn insert(&mut self, tuple: FlatTuple, indexed_attrs: &[AttrRef]) {
            let idx = self.tuples.len();
            self.bytes += tuple.approx_size_bytes();
            for attr in indexed_attrs {
                if let Some(value) = tuple.get(attr) {
                    self.indexes
                        .entry(*attr)
                        .or_default()
                        .entry(value.clone())
                        .or_default()
                        .push(idx);
                }
            }
            self.tuples.push(tuple);
        }

        /// Cloned candidate list (the seed allocated per lookup).
        pub fn candidates(&self, attr: &AttrRef, value: &Value) -> Vec<usize> {
            match self.indexes.get(attr) {
                Some(by_value) => by_value.get(value).cloned().unwrap_or_default(),
                None => (0..self.tuples.len()).collect(),
            }
        }

        /// The seed probe: clone the probe values, clone the candidate
        /// postings, linear `get` per predicate check.
        pub fn probe(
            &self,
            window: Window,
            probe: &FlatTuple,
            resolved: &[(AttrRef, AttrRef)],
        ) -> Vec<FlatTuple> {
            let mut results = Vec::new();
            let mut bound: Vec<(AttrRef, Value)> = Vec::new();
            for (stored_side, probe_side) in resolved {
                match probe.get(probe_side) {
                    Some(v) => bound.push((*stored_side, v.clone())),
                    None => return results,
                }
            }
            let candidate_idx: Vec<usize> = match bound.first() {
                Some((attr, value)) => self.candidates(attr, value),
                None => (0..self.tuples.len()).collect(),
            };
            'cand: for idx in candidate_idx {
                let stored = &self.tuples[idx];
                if stored.ts >= probe.ts || !window.contains(probe.ts, stored.ts) {
                    continue;
                }
                for (attr, value) in &bound {
                    match stored.get(attr) {
                        Some(v) if v.join_eq(value) => {}
                        _ => continue 'cand,
                    }
                }
                results.push(stored.clone());
            }
            results
        }

        fn is_empty(&self) -> bool {
            self.tuples.is_empty()
        }

        /// Drain-and-rebuild expiry plus full index rebuild, as the seed
        /// did on every expiry wave.
        pub fn expire(&mut self, horizon: Timestamp, indexed_attrs: &[AttrRef]) -> usize {
            if self.tuples.iter().all(|t| t.ts >= horizon) {
                return 0;
            }
            let before = self.tuples.len();
            let retained: Vec<FlatTuple> =
                self.tuples.drain(..).filter(|t| t.ts >= horizon).collect();
            self.indexes.clear();
            self.bytes = 0;
            for t in retained {
                self.bytes += t.approx_size_bytes();
                self.tuples.push(t);
            }
            let tuples = std::mem::take(&mut self.tuples);
            for (idx, tuple) in tuples.iter().enumerate() {
                for attr in indexed_attrs {
                    if let Some(value) = tuple.get(attr) {
                        self.indexes
                            .entry(*attr)
                            .or_default()
                            .entry(value.clone())
                            .or_default()
                            .push(idx);
                    }
                }
            }
            self.tuples = tuples;
            before - self.tuples.len()
        }
    }

    /// The seed `StoreInstance` shell around the container: a single
    /// partition of epoch-keyed containers, so the baseline pays the same
    /// epoch-map bookkeeping as the live store and only the representation
    /// differs.
    #[derive(Debug, Default)]
    pub struct FlatStore {
        epochs: HashMap<clash_common::Epoch, FlatContainer>,
    }

    impl FlatStore {
        pub fn insert(
            &mut self,
            epoch: clash_common::Epoch,
            tuple: FlatTuple,
            indexed_attrs: &[AttrRef],
        ) {
            self.epochs
                .entry(epoch)
                .or_default()
                .insert(tuple, indexed_attrs);
        }

        pub fn probe(
            &self,
            epochs: &[clash_common::Epoch],
            window: Window,
            probe: &FlatTuple,
            resolved: &[(AttrRef, AttrRef)],
        ) -> Vec<FlatTuple> {
            let mut results = Vec::new();
            for epoch in epochs {
                if let Some(container) = self.epochs.get(epoch) {
                    results.extend(container.probe(window, probe, resolved));
                }
            }
            results
        }

        pub fn expire(&mut self, horizon: Timestamp, indexed_attrs: &[AttrRef]) -> usize {
            let mut removed = 0;
            for container in self.epochs.values_mut() {
                removed += container.expire(horizon, indexed_attrs);
            }
            self.epochs.retain(|_, c| !c.is_empty());
            removed
        }

        pub fn len(&self) -> usize {
            self.epochs.values().map(|c| c.tuples.len()).sum()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// One microbench result: baseline (seed representation) vs. optimized
/// (live code) operations per second.
#[derive(Debug, Clone)]
pub struct MicroRow {
    /// Suite name.
    pub name: &'static str,
    /// What one "operation" is.
    pub unit: &'static str,
    /// Seed-representation ops/s (best of [`BEST_OF`]).
    pub baseline_ops_per_sec: f64,
    /// Live-code ops/s (best of [`BEST_OF`]).
    pub optimized_ops_per_sec: f64,
}

impl MicroRow {
    /// optimized / baseline.
    pub fn speedup(&self) -> f64 {
        if self.baseline_ops_per_sec > 0.0 {
            self.optimized_ops_per_sec / self.baseline_ops_per_sec
        } else {
            0.0
        }
    }
}

/// Full hotpath report: microbenches plus the Fig. 7 end-to-end replay.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Iterations per microbench run.
    pub iters: usize,
    /// Stream length of the end-to-end section.
    pub fig7_tuples: usize,
    /// Microbench rows.
    pub micro: Vec<MicroRow>,
    /// Allocations per ingested tuple (counting-allocator scenario).
    pub allocs: AllocsRow,
    /// Fig. 7 five-query rows on the optimized engine.
    pub fig7: Vec<Fig7Row>,
    /// Multi-source ingestion rows (coordinator baseline + source sweep).
    pub multi_source: Vec<MultiSourceRow>,
    /// Reconfiguration rows (install-free baseline + cadence sweep).
    pub reconfig: Vec<ReconfigRow>,
    /// Telemetry overhead row (trace ring off vs. on, same workload).
    pub telemetry: TelemetryOverheadRow,
}

fn best_of<F: FnMut() -> f64>(mut run: F) -> f64 {
    (0..BEST_OF).map(|_| run()).fold(0.0, f64::max)
}

/// The 5 base tuples of the join-chain suites: a TPC-H-flavored chain
/// R0 ⋈ R1 ⋈ R2 ⋈ R3 ⋈ R4 with 3 attributes each (key, payload int,
/// payload string).
fn chain_bases() -> Vec<Vec<(AttrRef, Value)>> {
    (0..5u32)
        .map(|r| {
            let rel = RelationId::new(r);
            vec![
                (AttrRef::new(rel, AttrId::new(0)), Value::Int(42)),
                (
                    AttrRef::new(rel, AttrId::new(1)),
                    Value::Int(1_000 + r as i64),
                ),
                (
                    AttrRef::new(rel, AttrId::new(2)),
                    Value::str("status-flag-payload"),
                ),
            ]
        })
        .collect()
}

/// 5-way join chain: fold the bases into one result, `iters` times.
pub fn bench_join_chain(iters: usize) -> MicroRow {
    let bases = chain_bases();
    let flat: Vec<flat::FlatTuple> = bases
        .iter()
        .enumerate()
        .map(|(i, vals)| {
            flat::FlatTuple::base(
                RelationId::new(i as u32),
                Timestamp::from_millis(10 * (i as u64 + 1)),
                vals.clone(),
            )
        })
        .collect();
    let rope: Vec<Tuple> = bases
        .iter()
        .enumerate()
        .map(|(i, vals)| {
            Tuple::base(
                RelationId::new(i as u32),
                Timestamp::from_millis(10 * (i as u64 + 1)),
                vals.clone(),
            )
        })
        .collect();
    // Correctness cross-check before timing.
    let f5 = flat[1..]
        .iter()
        .fold(flat[0].clone(), |acc, t| acc.join(t).expect("disjoint"));
    let r5 = rope[1..]
        .iter()
        .fold(rope[0].clone(), |acc, t| acc.join(t).expect("disjoint"));
    assert_eq!(f5.values.len(), r5.arity());
    for (attr, value) in f5.values.iter() {
        assert_eq!(r5.get(attr), Some(value));
    }

    let baseline = best_of(|| {
        let started = Instant::now();
        for _ in 0..iters {
            let joined = flat[1..]
                .iter()
                .fold(flat[0].clone(), |acc, t| acc.join(t).expect("disjoint"));
            std::hint::black_box(&joined);
        }
        iters as f64 / started.elapsed().as_secs_f64()
    });
    let optimized = best_of(|| {
        let started = Instant::now();
        for _ in 0..iters {
            let joined = rope[1..]
                .iter()
                .fold(rope[0].clone(), |acc, t| acc.join(t).expect("disjoint"));
            std::hint::black_box(&joined);
        }
        iters as f64 / started.elapsed().as_secs_f64()
    });
    MicroRow {
        name: "join_chain_5way",
        unit: "five_way_results_per_sec",
        baseline_ops_per_sec: baseline,
        optimized_ops_per_sec: optimized,
    }
}

/// Attribute lookups on the 5-way result: one probe-predicate-style read
/// per constituent relation per iteration.
pub fn bench_probe_get(iters: usize) -> MicroRow {
    let bases = chain_bases();
    let flat5 = bases
        .iter()
        .enumerate()
        .map(|(i, vals)| {
            flat::FlatTuple::base(
                RelationId::new(i as u32),
                Timestamp::from_millis(10),
                vals.clone(),
            )
        })
        .reduce(|acc, t| acc.join(&t).expect("disjoint"))
        .expect("nonempty");
    let rope5 = bases
        .iter()
        .enumerate()
        .map(|(i, vals)| {
            Tuple::base(
                RelationId::new(i as u32),
                Timestamp::from_millis(10),
                vals.clone(),
            )
        })
        .reduce(|acc, t| acc.join(&t).expect("disjoint"))
        .expect("nonempty");
    // Look up the *last* attribute of every relation (worst case for the
    // linear scan, representative for predicate evaluation).
    let attrs: Vec<AttrRef> = (0..5u32)
        .map(|r| AttrRef::new(RelationId::new(r), AttrId::new(2)))
        .collect();
    let slots: Vec<SlotAccessor> = attrs.iter().map(SlotAccessor::of).collect();
    for (attr, slot) in attrs.iter().zip(&slots) {
        assert_eq!(flat5.get(attr), slot.get(&rope5));
    }

    let lookups = attrs.len();
    let baseline = best_of(|| {
        let started = Instant::now();
        for _ in 0..iters {
            for attr in &attrs {
                std::hint::black_box(flat5.get(attr));
            }
        }
        (iters * lookups) as f64 / started.elapsed().as_secs_f64()
    });
    let optimized = best_of(|| {
        let started = Instant::now();
        for _ in 0..iters {
            for slot in &slots {
                std::hint::black_box(slot.get(&rope5));
            }
        }
        (iters * lookups) as f64 / started.elapsed().as_secs_f64()
    });
    MicroRow {
        name: "probe_get",
        unit: "lookups_per_sec",
        baseline_ops_per_sec: baseline,
        optimized_ops_per_sec: optimized,
    }
}

/// Schema of the tuple-construction and allocation suites: one relation
/// with a key, an integer payload and a categorical string.
fn build_schema() -> Schema {
    Schema::new(RelationId::new(0), "S", ["key", "payload", "status"])
}

/// Base-tuple construction: the seed path (assemble a `(AttrRef, Value)`
/// pair vector, then scan it into the tuple) against the layout-driven
/// arena builder (positional writes into a pooled leaf buffer).
pub fn bench_tuple_build(iters: usize) -> MicroRow {
    let schema = build_schema();
    let layout = LeafLayout::of_schema(&schema);
    let rel = schema.relation;
    let (key_ref, pay_ref, status_ref) = (
        schema.attr_ref("key").expect("key"),
        schema.attr_ref("payload").expect("payload"),
        schema.attr_ref("status").expect("status"),
    );
    let status = Value::str("status-flag");
    // Correctness cross-check: both paths produce content-equal tuples.
    let via_pairs = Tuple::base(
        rel,
        Timestamp::from_millis(7),
        vec![
            (key_ref, Value::Int(1)),
            (pay_ref, Value::Int(2)),
            (status_ref, status.clone()),
        ],
    );
    let via_builder = TupleBuilder::with_layout(&schema, &layout, Timestamp::from_millis(7))
        .set_slot(key_ref.attr, 1i64)
        .set_slot(pay_ref.attr, 2i64)
        .set_slot(status_ref.attr, status.clone())
        .build();
    assert_eq!(via_pairs, via_builder);

    let baseline = best_of(|| {
        let started = Instant::now();
        for i in 0..iters {
            let pairs = vec![
                (key_ref, Value::Int(i as i64)),
                (pay_ref, Value::Int(2)),
                (status_ref, status.clone()),
            ];
            let tuple = flat::FlatTuple::base(rel, Timestamp::from_millis(i as u64), pairs);
            std::hint::black_box(&tuple);
        }
        iters as f64 / started.elapsed().as_secs_f64()
    });
    let optimized = best_of(|| {
        let started = Instant::now();
        for i in 0..iters {
            let tuple =
                TupleBuilder::with_layout(&schema, &layout, Timestamp::from_millis(i as u64))
                    .set_slot(key_ref.attr, i as i64)
                    .set_slot(pay_ref.attr, 2i64)
                    .set_slot(status_ref.attr, status.clone())
                    .build();
            std::hint::black_box(&tuple);
        }
        iters as f64 / started.elapsed().as_secs_f64()
    });
    MicroRow {
        name: "tuple_build",
        unit: "base_tuples_per_sec",
        baseline_ops_per_sec: baseline,
        optimized_ops_per_sec: optimized,
    }
}

/// Partition routing: the seed's keyed SipHash per routed tuple against
/// the Fx router hash, over a representative mix of integer and string
/// routing keys.
pub fn bench_partition_route(iters: usize) -> MicroRow {
    let values: Vec<Value> = (0..64)
        .map(|i| {
            if i % 4 == 3 {
                Value::str(format!("key-{i}"))
            } else {
                Value::Int(i as i64 * 7919)
            }
        })
        .collect();
    // Cross-check: both hashes are stable and bounded.
    for v in &values {
        assert!(flat::flat_partition_hash(v, 8) < 8);
        assert!(partition_hash(v, 8) < 8);
        assert_eq!(partition_hash(v, 8), partition_hash(v, 8));
    }
    let baseline = best_of(|| {
        let started = Instant::now();
        for i in 0..iters {
            let v = &values[i % values.len()];
            std::hint::black_box(flat::flat_partition_hash(v, 8));
        }
        iters as f64 / started.elapsed().as_secs_f64()
    });
    let optimized = best_of(|| {
        let started = Instant::now();
        for i in 0..iters {
            let v = &values[i % values.len()];
            std::hint::black_box(partition_hash(v, 8));
        }
        iters as f64 / started.elapsed().as_secs_f64()
    });
    MicroRow {
        name: "partition_route",
        unit: "routed_keys_per_sec",
        baseline_ops_per_sec: baseline,
        optimized_ops_per_sec: optimized,
    }
}

/// Allocations per ingested tuple on the full ingest path (construct →
/// insert into an indexed store → periodic window expiry), measured with
/// the counting global allocator. Unlike the timing suites this is
/// deterministic, so CI asserts on it even on a noisy runner.
#[derive(Debug, Clone)]
pub struct AllocsRow {
    /// Tuples pushed through each pipeline.
    pub tuples: usize,
    /// Seed representation: pair-vector construction + `Vec` postings +
    /// drain-and-rebuild expiry.
    pub baseline_allocs_per_tuple: f64,
    /// Live path: arena builder + inline postings + in-place expiry.
    pub optimized_allocs_per_tuple: f64,
}

impl AllocsRow {
    /// baseline / optimized (higher is better).
    pub fn reduction(&self) -> f64 {
        if self.optimized_allocs_per_tuple > 0.0 {
            self.baseline_allocs_per_tuple / self.optimized_allocs_per_tuple
        } else {
            0.0
        }
    }
}

/// Runs the allocation scenario: `n` tuples, expiry every 1024 with a 1 s
/// window over a 1 ms-per-tuple stream, so the arena sees a steady
/// recycle stream just like a windowed deployment.
pub fn bench_ingest_allocs(n: usize) -> AllocsRow {
    let schema = build_schema();
    let layout = LeafLayout::of_schema(&schema);
    let rel = schema.relation;
    let (key_ref, pay_ref, status_ref) = (
        schema.attr_ref("key").expect("key"),
        schema.attr_ref("payload").expect("payload"),
        schema.attr_ref("status").expect("status"),
    );
    let status = Value::str("status-flag");
    let window = Window::secs(1);
    let key_domain = 512usize;
    let expire_every = 1024usize;

    // Warm both pipelines once (map capacity, arena pool) so the measured
    // pass reflects steady state, then measure a fresh store.
    let run_optimized = |count: usize| -> u64 {
        let mut store = fresh_store(window, key_ref);
        let span = AllocSpan::start();
        for i in 0..count {
            let ts = Timestamp::from_millis(i as u64);
            let tuple = TupleBuilder::with_layout(&schema, &layout, ts)
                .set_slot(key_ref.attr, (i % key_domain) as i64)
                .set_slot(pay_ref.attr, i as i64)
                .set_slot(status_ref.attr, status.clone())
                .build();
            store.insert(0, Epoch(0), tuple);
            if i % expire_every == expire_every - 1 {
                store.expire(window.horizon(ts));
            }
        }
        let allocs = span.elapsed();
        std::hint::black_box(&store);
        allocs
    };
    let run_baseline = |count: usize| -> u64 {
        let mut store = flat::FlatStore::default();
        let span = AllocSpan::start();
        for i in 0..count {
            let ts = Timestamp::from_millis(i as u64);
            let pairs = vec![
                (key_ref, Value::Int((i % key_domain) as i64)),
                (pay_ref, Value::Int(i as i64)),
                (status_ref, status.clone()),
            ];
            store.insert(Epoch(0), flat::FlatTuple::base(rel, ts, pairs), &[key_ref]);
            if i % expire_every == expire_every - 1 {
                store.expire(window.horizon(ts), &[key_ref]);
            }
        }
        let allocs = span.elapsed();
        std::hint::black_box(&store);
        allocs
    };
    run_optimized(n.min(4 * expire_every));
    run_baseline(n.min(4 * expire_every));
    let optimized = run_optimized(n);
    let baseline = run_baseline(n);
    AllocsRow {
        tuples: n,
        baseline_allocs_per_tuple: baseline as f64 / n as f64,
        optimized_allocs_per_tuple: optimized as f64 / n as f64,
    }
}

/// The store-suite schema: stored relation S(0) with key attribute S.a,
/// probing relation R(1) with key R.a, predicate S.a = R.a.
fn store_fixture() -> (AttrRef, AttrRef, EquiPredicate) {
    let stored_key = AttrRef::new(RelationId::new(0), AttrId::new(0));
    let probe_key = AttrRef::new(RelationId::new(1), AttrId::new(0));
    (
        stored_key,
        probe_key,
        EquiPredicate::new(stored_key, probe_key),
    )
}

fn stored_tuple_pairs(i: usize, key_domain: usize) -> Vec<(AttrRef, Value)> {
    let rel = RelationId::new(0);
    vec![
        (
            AttrRef::new(rel, AttrId::new(0)),
            Value::Int((i % key_domain) as i64),
        ),
        (AttrRef::new(rel, AttrId::new(1)), Value::Int(i as i64)),
        (AttrRef::new(rel, AttrId::new(2)), Value::str("payload")),
    ]
}

fn fresh_store(window: Window, stored_key: AttrRef) -> StoreInstance {
    StoreInstance::new(
        StoreDescriptor::unpartitioned(RelationSet::singleton(RelationId::new(0))),
        window,
        vec![stored_key],
    )
}

/// Inserts into an indexed container. Tuples are pre-built outside the
/// timed region (both representations arrive at a store as already-routed
/// tuples), so the suite isolates the insert path: size accounting, index
/// maintenance and the container push.
pub fn bench_store_insert(n: usize) -> MicroRow {
    let (stored_key, _, _) = store_fixture();
    let window = Window::secs(3_600);
    let key_domain = (n / 8).max(1);
    let flat_tuples: Vec<flat::FlatTuple> = (0..n)
        .map(|i| {
            flat::FlatTuple::base(
                RelationId::new(0),
                Timestamp::from_millis(i as u64),
                stored_tuple_pairs(i, key_domain),
            )
        })
        .collect();
    let rope_tuples: Vec<Tuple> = (0..n)
        .map(|i| {
            Tuple::base(
                RelationId::new(0),
                Timestamp::from_millis(i as u64),
                stored_tuple_pairs(i, key_domain),
            )
        })
        .collect();

    let baseline = best_of(|| {
        let mut store = flat::FlatStore::default();
        let started = Instant::now();
        for tuple in &flat_tuples {
            store.insert(Epoch(0), tuple.clone(), &[stored_key]);
        }
        let tps = n as f64 / started.elapsed().as_secs_f64();
        assert_eq!(store.len(), n);
        tps
    });
    let optimized = best_of(|| {
        let mut store = fresh_store(window, stored_key);
        let started = Instant::now();
        for tuple in &rope_tuples {
            store.insert(0, Epoch(0), tuple.clone());
        }
        let tps = n as f64 / started.elapsed().as_secs_f64();
        assert_eq!(store.len(), n);
        tps
    });
    MicroRow {
        name: "store_insert",
        unit: "inserts_per_sec",
        baseline_ops_per_sec: baseline,
        optimized_ops_per_sec: optimized,
    }
}

/// Index-driven probes against a filled container (includes the candidate
/// lookup: cloned postings in the baseline, borrowed in the live store).
pub fn bench_store_probe(n: usize, probes: usize) -> MicroRow {
    let (stored_key, probe_key, predicate) = store_fixture();
    let window = Window::secs(3_600);
    let key_domain = (n / 8).max(1);

    let mut flat_store = flat::FlatStore::default();
    let mut store = fresh_store(window, stored_key);
    for i in 0..n {
        let pairs = stored_tuple_pairs(i, key_domain);
        flat_store.insert(
            Epoch(0),
            flat::FlatTuple::base(
                RelationId::new(0),
                Timestamp::from_millis(i as u64),
                pairs.clone(),
            ),
            &[stored_key],
        );
        store.insert(
            0,
            Epoch(0),
            Tuple::base(RelationId::new(0), Timestamp::from_millis(i as u64), pairs),
        );
    }
    let probe_ts = Timestamp::from_millis(n as u64 + 10);
    let probe_pairs = |k: usize| {
        vec![(
            AttrRef::new(RelationId::new(1), AttrId::new(0)),
            Value::Int((k % key_domain) as i64),
        )]
    };
    // Pre-built probe tuples: the suite times the probe path, not tuple
    // construction.
    let flat_probes: Vec<flat::FlatTuple> = (0..probes)
        .map(|k| flat::FlatTuple::base(RelationId::new(1), probe_ts, probe_pairs(k)))
        .collect();
    let rope_probes: Vec<Tuple> = (0..probes)
        .map(|k| Tuple::base(RelationId::new(1), probe_ts, probe_pairs(k)))
        .collect();
    // Correctness cross-check: identical match counts on every key.
    for k in [0usize, 1, key_domain / 2] {
        let fp = flat::FlatTuple::base(RelationId::new(1), probe_ts, probe_pairs(k));
        let rp = Tuple::base(RelationId::new(1), probe_ts, probe_pairs(k));
        let fm = flat_store.probe(&[Epoch(0)], window, &fp, &[(stored_key, probe_key)]);
        let rm = store.probe(0, &[Epoch(0)], &rp, std::slice::from_ref(&predicate));
        assert_eq!(fm.len(), rm.len(), "probe key {k}");
    }

    let baseline = best_of(|| {
        let started = Instant::now();
        for probe in &flat_probes {
            std::hint::black_box(flat_store.probe(
                &[Epoch(0)],
                window,
                probe,
                &[(stored_key, probe_key)],
            ));
        }
        probes as f64 / started.elapsed().as_secs_f64()
    });
    let optimized = best_of(|| {
        let started = Instant::now();
        for probe in &rope_probes {
            std::hint::black_box(store.probe(
                0,
                &[Epoch(0)],
                probe,
                std::slice::from_ref(&predicate),
            ));
        }
        probes as f64 / started.elapsed().as_secs_f64()
    });
    MicroRow {
        name: "store_probe",
        unit: "probes_per_sec",
        baseline_ops_per_sec: baseline,
        optimized_ops_per_sec: optimized,
    }
}

/// Number of epochs the tiered-store suites spread their tuples over:
/// enough cold epochs that per-epoch probe overhead (map lookup in the
/// hot tier, bloom check in the frozen tier) dominates a miss.
const TIER_EPOCHS: usize = 32;

/// Fills a store with `n` tuples in `TIER_EPOCHS` contiguous epoch
/// blocks, drawing the key of tuple `i` from `key_of(i)`.
fn fill_tiered_store(
    n: usize,
    stored_key: AttrRef,
    window: Window,
    mut key_of: impl FnMut(usize) -> usize,
) -> StoreInstance {
    let mut store = fresh_store(window, stored_key);
    let rel = RelationId::new(0);
    for i in 0..n {
        let epoch = Epoch((i * TIER_EPOCHS / n) as u64);
        let pairs = vec![
            (
                AttrRef::new(rel, AttrId::new(0)),
                Value::Int(key_of(i) as i64),
            ),
            (AttrRef::new(rel, AttrId::new(1)), Value::Int(i as i64)),
            (AttrRef::new(rel, AttrId::new(2)), Value::str("payload")),
        ];
        store.insert(
            0,
            epoch,
            Tuple::base(rel, Timestamp::from_millis(i as u64), pairs),
        );
    }
    store
}

/// Shared body of the tiered-probe suites: identical stores, one left
/// hot (baseline) and one fully frozen (optimized), probed with the same
/// key sequence over every epoch. Unlike the other store rows this
/// compares the engine against itself — the baseline is the hot tier the
/// seed shipped, the optimized side is the frozen columnar tier — so the
/// row isolates exactly what freezing buys (or costs) on that workload.
fn bench_tiered_probe(
    name: &'static str,
    n: usize,
    store: impl Fn() -> StoreInstance,
    probe_keys: Vec<usize>,
    check_keys: Vec<usize>,
) -> MicroRow {
    let (_, _, predicate) = store_fixture();
    let live = store();
    let mut frozen = store();
    let built = frozen.freeze_before(Epoch(TIER_EPOCHS as u64));
    assert!(built > 0, "{name}: freezing produced no segments");
    assert_eq!(live.len(), frozen.len(), "{name}: freeze lost tuples");

    let epochs: Vec<Epoch> = (0..TIER_EPOCHS as u64).map(Epoch).collect();
    let probe_ts = Timestamp::from_millis(n as u64 + 10);
    let as_probe = |k: usize| {
        Tuple::base(
            RelationId::new(1),
            probe_ts,
            vec![(
                AttrRef::new(RelationId::new(1), AttrId::new(0)),
                Value::Int(k as i64),
            )],
        )
    };
    let probes: Vec<Tuple> = probe_keys.iter().map(|&k| as_probe(k)).collect();
    // Correctness cross-check over `check_keys` (callers include known
    // hits, even when the timed stream is all misses) plus a sample of
    // the timed stream: both tiers return the same match multiset
    // (content-equal tuples; stored timestamps are unique, so sorting by
    // `ts` makes the comparison order-insensitive).
    let sampled = probes.iter().step_by((probes.len() / 16).max(1)).cloned();
    let mut checked = 0usize;
    for probe in check_keys.iter().map(|&k| as_probe(k)).chain(sampled) {
        let mut lm = live.probe(0, &epochs, &probe, std::slice::from_ref(&predicate));
        let mut fm = frozen.probe(0, &epochs, &probe, std::slice::from_ref(&predicate));
        lm.sort_by_key(|t| t.ts);
        fm.sort_by_key(|t| t.ts);
        assert_eq!(lm, fm, "{name}: tiers disagree");
        checked += lm.len();
    }
    assert!(checked > 0, "{name}: cross-check never exercised a hit");

    let baseline = best_of(|| {
        let started = Instant::now();
        for probe in &probes {
            std::hint::black_box(live.probe(0, &epochs, probe, std::slice::from_ref(&predicate)));
        }
        probes.len() as f64 / started.elapsed().as_secs_f64()
    });
    let optimized = best_of(|| {
        let started = Instant::now();
        for probe in &probes {
            std::hint::black_box(frozen.probe(0, &epochs, probe, std::slice::from_ref(&predicate)));
        }
        probes.len() as f64 / started.elapsed().as_secs_f64()
    });
    MicroRow {
        name,
        unit: "probes_per_sec",
        baseline_ops_per_sec: baseline,
        optimized_ops_per_sec: optimized,
    }
}

/// Cold-store probing: uniform keys across many frozen epochs, probed
/// with keys that were never stored — the dominant outcome for a probe
/// against long-retention cold state. The hot tier pays a `Value` hash
/// plus a hash-map miss per epoch; the frozen tier hashes once per probe
/// and answers every epoch from the segment blooms. (Hit probes are
/// covered by the cross-check and by the skewed row, which times them.)
pub fn bench_store_probe_cold(n: usize, probes: usize) -> MicroRow {
    let (stored_key, _, _) = store_fixture();
    let window = Window::secs(3_600);
    let key_domain = (n / 8).max(1);
    let probe_keys = (0..probes).map(|k| key_domain + k).collect();
    // Known hits (stored keys span `0..key_domain`) plus one miss.
    let check_keys = vec![0, 1, key_domain / 2, key_domain - 1, key_domain + 5];
    bench_tiered_probe(
        "store_probe_cold",
        n,
        || fill_tiered_store(n, stored_key, window, |i| i % key_domain),
        probe_keys,
        check_keys,
    )
}

/// Skewed-store probing: stored keys drawn Zipf(s = 1) — a few hot keys
/// own most of the stream — probed uniformly over the key domain, so
/// most probes land on sparse tail keys with the occasional hot-key hit.
/// Exercises the frozen tier's sorted hash runs and its per-match tuple
/// reconstruction against the hot tier's posting lists.
pub fn bench_store_probe_skewed(n: usize, probes: usize) -> MicroRow {
    let (stored_key, _, _) = store_fixture();
    let window = Window::secs(3_600);
    let key_domain = (n / 8).max(1);
    let stored = clash_datagen::ZipfSampler::new(key_domain, 1.0, 42);
    // Exponent 0 degenerates to uniform: same sampler, disjoint seed.
    let mut probing = clash_datagen::ZipfSampler::new(key_domain, 0.0, 43);
    let probe_keys = (0..probes).map(|_| probing.next_rank()).collect();
    // Hot head ranks, a tail rank, and an out-of-domain miss.
    let check_keys = vec![0, 1, 2, key_domain - 1, key_domain + 5];
    bench_tiered_probe(
        "store_probe_skewed",
        n,
        // Clone per call: the fixture is built twice (live and frozen)
        // and both must see the identical key sequence.
        move || {
            let mut keys = stored.clone();
            fill_tiered_store(n, stored_key, window, move |_| keys.next_rank())
        },
        probe_keys,
        check_keys,
    )
}

/// Window expiry over a filled container: repeated waves each dropping
/// the oldest slice (drain-and-rebuild vs. in-place incremental repair).
pub fn bench_store_expire(n: usize) -> MicroRow {
    let (stored_key, _, _) = store_fixture();
    let window = Window::secs(3_600);
    let key_domain = (n / 8).max(1);
    let waves = 8usize;
    let tuples: Vec<Vec<(AttrRef, Value)>> =
        (0..n).map(|i| stored_tuple_pairs(i, key_domain)).collect();

    let baseline = best_of(|| {
        let mut store = flat::FlatStore::default();
        for (i, pairs) in tuples.iter().enumerate() {
            store.insert(
                Epoch(0),
                flat::FlatTuple::base(
                    RelationId::new(0),
                    Timestamp::from_millis(i as u64),
                    pairs.clone(),
                ),
                &[stored_key],
            );
        }
        let started = Instant::now();
        let mut removed = 0usize;
        for wave in 1..=waves {
            let horizon = Timestamp::from_millis((n * wave / (waves + 1)) as u64);
            removed += store.expire(horizon, &[stored_key]);
        }
        let ops = n as f64 / started.elapsed().as_secs_f64();
        assert!(removed > 0);
        ops
    });
    let optimized = best_of(|| {
        let mut store = fresh_store(window, stored_key);
        for (i, pairs) in tuples.iter().enumerate() {
            store.insert(
                0,
                Epoch(0),
                Tuple::base(
                    RelationId::new(0),
                    Timestamp::from_millis(i as u64),
                    pairs.clone(),
                ),
            );
        }
        let started = Instant::now();
        let mut removed = 0usize;
        for wave in 1..=waves {
            let horizon = Timestamp::from_millis((n * wave / (waves + 1)) as u64);
            removed += store.expire(horizon);
        }
        let ops = n as f64 / started.elapsed().as_secs_f64();
        assert!(removed > 0);
        ops
    });
    MicroRow {
        name: "store_expire",
        unit: "stored_tuples_per_sec",
        baseline_ops_per_sec: baseline,
        optimized_ops_per_sec: optimized,
    }
}

/// One row of the multi-source ingestion scenario: the same two-query
/// workload pushed through the parallel engine either by the coordinator
/// thread (the pre-ingest-subsystem baseline) or by N concurrent
/// [`clash_runtime::SourceHandle`] producer threads.
#[derive(Debug, Clone)]
pub struct MultiSourceRow {
    /// `"coordinator"` or `"sources"`.
    pub mode: &'static str,
    /// Open source handles (0 for the coordinator baseline).
    pub sources: usize,
    /// Producer threads actually spawned: source handles are grouped onto
    /// at most `available_parallelism()` threads, so a 1-core CI runner
    /// no longer reports thread oversubscription as engine regression
    /// (0 for the coordinator baseline, which pushes from the bench
    /// thread).
    pub producer_threads: usize,
    /// Input stream length.
    pub tuples: usize,
    /// End-to-end wall-clock throughput in tuples per second (ingest
    /// start to drain end).
    pub wall_tps: f64,
    /// Median per-result ingest-to-emit latency in milliseconds (from
    /// the merged per-worker histograms).
    pub latency_p50_ms: f64,
    /// 99th-percentile per-result ingest-to-emit latency in milliseconds.
    pub latency_p99_ms: f64,
    /// Total join results produced (asserted identical across rows).
    pub results: u64,
    /// Largest single worker's share of total worker busy time (0.25 is a
    /// perfect 4-way split) — the hardware-independent parallelism
    /// evidence on a single-core runner.
    pub busy_balance: f64,
}

/// Worker threads of the multi-source scenario (matches the catalog
/// parallelism of the fixture).
const MULTI_SOURCE_WORKERS: usize = 4;

/// The multi-source fixture: a 4-relation chain shared by two 3-way
/// queries, every store partitioned 4 ways.
fn multi_source_fixture() -> (Catalog, Vec<clash_query::JoinQuery>) {
    let mut catalog = Catalog::new();
    let window = Window::secs(3600);
    catalog
        .register("R", ["a"], window, MULTI_SOURCE_WORKERS)
        .expect("register");
    catalog
        .register("S", ["a", "b"], window, MULTI_SOURCE_WORKERS)
        .expect("register");
    catalog
        .register("T", ["b", "c"], window, MULTI_SOURCE_WORKERS)
        .expect("register");
    catalog
        .register("U", ["c"], window, MULTI_SOURCE_WORKERS)
        .expect("register");
    let q1 = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").expect("q1");
    let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b,c), U(c)").expect("q2");
    (catalog, vec![q1, q2])
}

/// Relations per round of the generated stream.
const MULTI_SOURCE_RELS: usize = 4;

/// Deterministic input stream for the multi-source scenario (no RNG, so
/// every row replays the identical tuple mix). Round `i` emits one tuple
/// per relation, all carrying key `i % domain`; rounds are what the
/// source split distributes, so a joining group never straddles sources.
/// `domain` is a multiple of every benched source count, making each
/// source's key set disjoint under the round-robin split — cross-source
/// pairs never join, so the result multiset is identical under any
/// producer interleaving and comparable across rows (see
/// `clash_runtime::ingest` on arrival-order semantics).
fn multi_source_stream(catalog: &Catalog, total: usize) -> Vec<(RelationId, Tuple)> {
    let domain = ((total / 16).max(64) / MULTI_SOURCE_RELS * MULTI_SOURCE_RELS) as i64;
    let names = ["R", "S", "T", "U"];
    let metas: Vec<_> = names
        .iter()
        .map(|n| catalog.relation_by_name(n).expect("relation"))
        .collect();
    let mut stream = Vec::with_capacity(total);
    let mut i = 0usize;
    while stream.len() < total {
        let key = (i as i64) % domain;
        for meta in &metas {
            if stream.len() >= total {
                break;
            }
            let ts = Timestamp::from_millis(stream.len() as u64 + 1);
            let mut b = TupleBuilder::new(&meta.schema, ts);
            for attr in &meta.schema.attributes {
                b = b.set(&attr.name, key);
            }
            stream.push((meta.id, b.build()));
        }
        i += 1;
    }
    stream
}

/// Runs the multi-source ingestion scenario: the coordinator-ingest
/// baseline plus one row per source count, each best-of-[`BEST_OF`] on a
/// fresh engine over the identical stream. Asserts that every run
/// produces the identical result count (the multi-source exactness
/// contract) before reporting throughput.
pub fn run_multi_source(total: usize, source_counts: &[usize]) -> Vec<MultiSourceRow> {
    let (catalog, queries) = multi_source_fixture();
    let stats = Statistics::new();
    let planner = Planner::with_defaults(&catalog, &stats);
    let report = planner.plan(&queries, Strategy::Shared).expect("plan");
    let stream = multi_source_stream(&catalog, total);
    let config = EngineConfig::default();
    let mut rows = Vec::new();
    let mut expected = None;

    // Coordinator-ingest baseline: the single-producer front-end.
    let mut best: Option<MultiSourceRow> = None;
    for _ in 0..BEST_OF {
        let mut engine = ParallelEngine::new(
            catalog.clone(),
            report.plan.clone(),
            config,
            MULTI_SOURCE_WORKERS,
        );
        let started = Instant::now();
        for (relation, tuple) in &stream {
            engine.ingest(*relation, tuple.clone()).expect("ingest");
        }
        engine.flush();
        let elapsed = started.elapsed().as_secs_f64();
        let snap = engine.snapshot();
        let results = snap.total_results();
        assert_eq!(*expected.get_or_insert(results), results);
        let row = MultiSourceRow {
            mode: "coordinator",
            sources: 0,
            producer_threads: 0,
            tuples: total,
            wall_tps: total as f64 / elapsed,
            latency_p50_ms: snap.latency.p50_us / 1000.0,
            latency_p99_ms: snap.latency.p99_us / 1000.0,
            results,
            busy_balance: busy_balance(&engine),
        };
        if best.as_ref().is_none_or(|b| row.wall_tps > b.wall_tps) {
            best = Some(row);
        }
    }
    rows.push(best.expect("baseline row"));
    let expected = expected.expect("baseline results");

    // Producer threads are capped at the machine's parallelism: more
    // pushing threads than cores measures scheduler thrash, not the
    // engine. Handles beyond the cap share a thread (rounds interleaved
    // across the thread's handles, so the push pattern stays
    // source-alternating); the cap is recorded per row.
    let thread_cap = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for &sources in source_counts {
        let producer_threads = sources.clamp(1, thread_cap);
        let mut best: Option<MultiSourceRow> = None;
        for _ in 0..BEST_OF {
            let mut engine = ParallelEngine::new(
                catalog.clone(),
                report.plan.clone(),
                config,
                MULTI_SOURCE_WORKERS,
            );
            let handles: Vec<_> = (0..sources).map(|_| engine.open_source()).collect();
            // Round-robin split by round (not by tuple): each producer
            // pushes whole joining groups in stream order, and the domain
            // choice in `multi_source_stream` makes the sources' key sets
            // disjoint.
            let mut slices: Vec<Vec<(RelationId, Tuple)>> =
                (0..sources).map(|_| Vec::new()).collect();
            for (idx, entry) in stream.iter().enumerate() {
                slices[(idx / MULTI_SOURCE_RELS) % sources].push(entry.clone());
            }
            let mut groups: Vec<Vec<_>> = (0..producer_threads).map(|_| Vec::new()).collect();
            for (idx, pair) in handles.into_iter().zip(slices).enumerate() {
                groups[idx % producer_threads].push(pair);
            }
            let started = Instant::now();
            let producers: Vec<_> = groups
                .into_iter()
                .map(|mut group| {
                    std::thread::spawn(move || {
                        let mut cursors = vec![0usize; group.len()];
                        loop {
                            let mut progressed = false;
                            for (gi, (handle, slice)) in group.iter_mut().enumerate() {
                                let start = cursors[gi];
                                if start >= slice.len() {
                                    continue;
                                }
                                let end = (start + MULTI_SOURCE_RELS).min(slice.len());
                                for (relation, tuple) in &slice[start..end] {
                                    handle.push(*relation, tuple.clone()).expect("push");
                                }
                                cursors[gi] = end;
                                progressed = true;
                            }
                            if !progressed {
                                break;
                            }
                        }
                    })
                })
                .collect();
            for producer in producers {
                producer.join().expect("producer thread");
            }
            engine.flush();
            let elapsed = started.elapsed().as_secs_f64();
            let snap = engine.snapshot();
            assert_eq!(
                snap.total_results(),
                expected,
                "multi-source run ({sources} sources) diverged from the coordinator baseline"
            );
            let row = MultiSourceRow {
                mode: "sources",
                sources,
                producer_threads,
                tuples: total,
                wall_tps: total as f64 / elapsed,
                latency_p50_ms: snap.latency.p50_us / 1000.0,
                latency_p99_ms: snap.latency.p99_us / 1000.0,
                results: snap.total_results(),
                busy_balance: busy_balance(&engine),
            };
            if best.as_ref().is_none_or(|b| row.wall_tps > b.wall_tps) {
                best = Some(row);
            }
        }
        rows.push(best.expect("source row"));
    }
    rows
}

/// One row of the reconfiguration scenario: the multi-source workload
/// with a forced plan install every `installs_every` sequenced roots
/// (0 = the install-free baseline). Installs go through the quiesce
/// protocol under live producers, so the row measures what adaptive
/// re-optimization costs the ingest path — and asserts it costs no
/// results.
#[derive(Debug, Clone)]
pub struct ReconfigRow {
    /// Forced install cadence in sequenced roots (0 = no installs).
    pub installs_every: usize,
    /// Plan installs actually performed during the run.
    pub installs: usize,
    /// Input stream length.
    pub tuples: usize,
    /// End-to-end wall-clock throughput in tuples per second.
    pub wall_tps: f64,
    /// Total join results produced (asserted identical across rows: the
    /// quiesced installs must be lossless).
    pub results: u64,
}

/// Runs the reconfiguration scenario: 2 concurrent sources push the
/// multi-source workload while the main thread force-installs the same
/// plan every `installs_every` roots (state carries over by descriptor
/// key, so the result multiset must stay identical to the install-free
/// baseline — any dropped push would change it). One row per cadence,
/// best of [`BEST_OF`].
pub fn run_reconfig(total: usize, cadences: &[usize]) -> Vec<ReconfigRow> {
    let (catalog, queries) = multi_source_fixture();
    let stats = Statistics::new();
    let planner = Planner::with_defaults(&catalog, &stats);
    let report = planner.plan(&queries, Strategy::Shared).expect("plan");
    let stream = multi_source_stream(&catalog, total);
    let config = EngineConfig::default();
    let sources = 2usize;
    let mut rows = Vec::new();
    let mut expected = None;
    let mut all_cadences = vec![0usize];
    all_cadences.extend_from_slice(cadences);
    for cadence in all_cadences {
        let mut best: Option<ReconfigRow> = None;
        for _ in 0..BEST_OF {
            let mut engine = ParallelEngine::new(
                catalog.clone(),
                report.plan.clone(),
                config,
                MULTI_SOURCE_WORKERS,
            );
            let handles: Vec<_> = (0..sources).map(|_| engine.open_source()).collect();
            let mut slices: Vec<Vec<(RelationId, Tuple)>> =
                (0..sources).map(|_| Vec::new()).collect();
            for (idx, entry) in stream.iter().enumerate() {
                slices[(idx / MULTI_SOURCE_RELS) % sources].push(entry.clone());
            }
            let started = Instant::now();
            let producers: Vec<_> = handles
                .into_iter()
                .zip(slices)
                .map(|(mut handle, slice)| {
                    std::thread::spawn(move || {
                        for (relation, tuple) in slice {
                            handle.push(relation, tuple).expect("push");
                        }
                    })
                })
                .collect();
            let mut installs = 0usize;
            if cadence > 0 {
                let mut next_at = cadence as u64;
                while producers.iter().any(|p| !p.is_finished()) {
                    if engine.sequenced() >= next_at {
                        engine
                            .install_plan(report.plan.clone())
                            .expect("quiesced install");
                        installs += 1;
                        next_at = engine.sequenced() + cadence as u64;
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
            for producer in producers {
                producer.join().expect("producer thread");
            }
            engine.flush();
            let elapsed = started.elapsed().as_secs_f64();
            let snap = engine.snapshot();
            let results = snap.total_results();
            assert_eq!(
                *expected.get_or_insert(results),
                results,
                "reconfig run (cadence {cadence}) lost or duplicated results"
            );
            let row = ReconfigRow {
                installs_every: cadence,
                installs,
                tuples: total,
                wall_tps: total as f64 / elapsed,
                results,
            };
            if best.as_ref().is_none_or(|b| row.wall_tps > b.wall_tps) {
                best = Some(row);
            }
        }
        rows.push(best.expect("reconfig row"));
    }
    rows
}

/// Largest worker's share of the summed busy time (1.0 when a single
/// shard did everything).
fn busy_balance(engine: &ParallelEngine) -> f64 {
    let busy: Vec<f64> = engine
        .worker_busy()
        .iter()
        .map(|d| d.as_secs_f64())
        .collect();
    let total: f64 = busy.iter().sum();
    let max = busy.iter().cloned().fold(0.0f64, f64::max);
    if total > 0.0 {
        max / total
    } else {
        1.0
    }
}

/// Telemetry overhead on the ingest hot path: the Fig. 7 five-query
/// workload replayed on the sequential engine with the trace ring
/// disabled (`trace_capacity = 0`, the one-branch fast path) and enabled
/// (the default capacity, every event paying its ring write), best of
/// [`BEST_OF`] each. The ratio is what `bench_guard` holds above the
/// floor in `ci/bench_floors.json`: tracing must stay within a few
/// percent of the untraced throughput, or it is not always-on telemetry.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryOverheadRow {
    /// Input stream length.
    pub tuples: usize,
    /// Wall-clock throughput with the trace ring disabled (tuples/sec).
    pub untraced_tps: f64,
    /// Wall-clock throughput with the default trace ring (tuples/sec).
    pub traced_tps: f64,
    /// Events left in the ring after the traced run (caps at the ring
    /// capacity; nonzero proves the traced run actually recorded).
    pub trace_events: usize,
}

impl TelemetryOverheadRow {
    /// traced / untraced throughput: 1.0 means tracing is free, 0.97
    /// means a 3% hot-path tax.
    pub fn throughput_ratio(&self) -> f64 {
        if self.untraced_tps > 0.0 {
            self.traced_tps / self.untraced_tps
        } else {
            0.0
        }
    }
}

/// Runs the telemetry overhead scenario. Asserts the traced and untraced
/// runs produce identical result counts (observation must not perturb
/// the join) and that the traced run recorded events.
pub fn run_telemetry_overhead(num_tuples: usize) -> TelemetryOverheadRow {
    let workload = TpchWorkload::new(2, Window::secs(3600)).expect("workload");
    let queries = workload.five_queries().expect("queries");
    let planner = Planner::new(&workload.catalog, &workload.stats, PlannerConfig::default());
    let report = planner.plan(&queries, Strategy::GlobalIlp).expect("plan");
    let mut generator = TpchGenerator::new(0.002, 42);
    let stream = generator
        .mixed_stream(&workload, num_tuples)
        .expect("stream");

    let mut expected: Option<u64> = None;
    let mut trace_events = 0usize;
    let mut tps = [0.0f64; 2];
    for (which, capacity) in [0usize, EngineConfig::default().trace_capacity]
        .into_iter()
        .enumerate()
    {
        for _ in 0..BEST_OF {
            let config = EngineConfig {
                trace_capacity: capacity,
                ..EngineConfig::default()
            };
            let mut engine =
                LocalEngine::new(workload.catalog.clone(), report.plan.clone(), config);
            let started = Instant::now();
            for (relation, tuple) in &stream {
                engine.ingest(*relation, tuple.clone()).expect("ingest");
            }
            let elapsed = started.elapsed().as_secs_f64();
            let results = engine.snapshot().total_results();
            assert_eq!(
                *expected.get_or_insert(results),
                results,
                "tracing changed the result count (capacity {capacity})"
            );
            let events = engine.drain_trace().len();
            if capacity == 0 {
                assert_eq!(events, 0, "disabled ring must record nothing");
            } else {
                assert!(events > 0, "enabled ring recorded nothing");
                trace_events = trace_events.max(events);
            }
            tps[which] = tps[which].max(num_tuples as f64 / elapsed);
        }
    }
    TelemetryOverheadRow {
        tuples: num_tuples,
        untraced_tps: tps[0],
        traced_tps: tps[1],
        trace_events,
    }
}

/// Runs every suite plus the Fig. 7 end-to-end replay and the
/// multi-source ingestion scenario.
pub fn run_hotpath(iters: usize, fig7_tuples: usize) -> HotpathReport {
    let store_n = (iters / 4).clamp(512, 200_000);
    let micro = vec![
        bench_join_chain(iters),
        bench_probe_get(iters),
        bench_tuple_build(iters),
        bench_partition_route(iters),
        bench_store_insert(store_n),
        bench_store_probe(store_n, (iters / 2).max(256)),
        bench_store_probe_cold(store_n, (iters / 2).max(256)),
        bench_store_probe_skewed(store_n, (iters / 2).max(256)),
        bench_store_expire(store_n),
    ];
    let allocs = bench_ingest_allocs((iters / 2).clamp(4_096, 200_000));
    let fig7 = run_fig7(5, fig7_tuples, 0.002, 42);
    let multi_source = run_multi_source(fig7_tuples.clamp(1_000, 100_000), &[1, 2, 4]);
    let reconfig_total = fig7_tuples.clamp(1_000, 100_000);
    let reconfig = run_reconfig(reconfig_total, &[reconfig_total / 4, reconfig_total / 16]);
    let telemetry = run_telemetry_overhead(fig7_tuples.clamp(1_000, 100_000));
    HotpathReport {
        iters,
        fig7_tuples,
        micro,
        allocs,
        fig7,
        multi_source,
        reconfig,
        telemetry,
    }
}

/// Renders the report as a JSON document. Hand-rolled because the
/// vendored serde stub cannot serialize; every string is a fixed
/// identifier, so no escaping is required.
pub fn report_to_json(report: &HotpathReport) -> String {
    let mut out = String::with_capacity(2_048);
    out.push_str("{\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"iters\": {}, \"fig7_tuples\": {}, \"best_of\": {}}},\n",
        report.iters, report.fig7_tuples, BEST_OF
    ));
    out.push_str("  \"micro\": [\n");
    for (i, row) in report.micro.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"baseline_ops_per_sec\": {:.1}, \
             \"optimized_ops_per_sec\": {:.1}, \"speedup\": {:.3}}}{}\n",
            row.name,
            row.unit,
            row.baseline_ops_per_sec,
            row.optimized_ops_per_sec,
            row.speedup(),
            if i + 1 < report.micro.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"allocs\": {{\"tuples\": {}, \"baseline_allocs_per_tuple\": {:.3}, \
         \"optimized_allocs_per_tuple\": {:.3}, \"reduction\": {:.3}}},\n",
        report.allocs.tuples,
        report.allocs.baseline_allocs_per_tuple,
        report.allocs.optimized_allocs_per_tuple,
        report.allocs.reduction()
    ));
    out.push_str("  \"fig7\": [\n");
    for (i, row) in report.fig7.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"num_queries\": {}, \"strategy\": \"{}\", \"throughput_tps\": {:.1}, \
             \"memory_mb\": {:.3}, \"latency_ms\": {:.3}, \"latency_p50_ms\": {:.3}, \
             \"latency_p99_ms\": {:.3}, \"results\": {}, \"tuples_sent\": {}, \
             \"compactions\": {}}}{}\n",
            row.num_queries,
            row.strategy,
            row.throughput_tps,
            row.memory_mb,
            row.latency_ms,
            row.latency_p50_ms,
            row.latency_p99_ms,
            row.results,
            row.tuples_sent,
            row.compactions,
            if i + 1 < report.fig7.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"multi_source\": [\n");
    for (i, row) in report.multi_source.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"sources\": {}, \"producer_threads\": {}, \
             \"tuples\": {}, \"wall_tps\": {:.1}, \
             \"latency_p50_ms\": {:.3}, \"latency_p99_ms\": {:.3}, \
             \"results\": {}, \"busy_balance\": {:.3}}}{}\n",
            row.mode,
            row.sources,
            row.producer_threads,
            row.tuples,
            row.wall_tps,
            row.latency_p50_ms,
            row.latency_p99_ms,
            row.results,
            row.busy_balance,
            if i + 1 < report.multi_source.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"reconfig\": [\n");
    for (i, row) in report.reconfig.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"installs_every\": {}, \"installs\": {}, \"tuples\": {}, \
             \"wall_tps\": {:.1}, \"results\": {}}}{}\n",
            row.installs_every,
            row.installs,
            row.tuples,
            row.wall_tps,
            row.results,
            if i + 1 < report.reconfig.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"telemetry\": {{\"tuples\": {}, \"untraced_tps\": {:.1}, \"traced_tps\": {:.1}, \
         \"throughput_ratio\": {:.3}, \"trace_events\": {}}}\n",
        report.telemetry.tuples,
        report.telemetry.untraced_tps,
        report.telemetry.traced_tps,
        report.telemetry.throughput_ratio(),
        report.telemetry.trace_events
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_run_and_report_positive_rates() {
        // Tiny iteration counts: this validates plumbing and the
        // correctness cross-checks inside each suite, not timings.
        for row in [
            bench_join_chain(200),
            bench_probe_get(200),
            bench_tuple_build(200),
            bench_partition_route(200),
            bench_store_insert(512),
            bench_store_probe(512, 256),
            bench_store_probe_cold(512, 256),
            bench_store_probe_skewed(512, 256),
            bench_store_expire(512),
        ] {
            assert!(
                row.baseline_ops_per_sec > 0.0 && row.optimized_ops_per_sec > 0.0,
                "{} produced a non-positive rate",
                row.name
            );
        }
    }

    #[test]
    fn multi_source_rows_agree_with_coordinator_baseline() {
        // Small stream: validates the exactness assertion inside the
        // scenario plus the row plumbing, not timings.
        let rows = run_multi_source(1_200, &[1, 2]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].mode, "coordinator");
        assert_eq!(rows[0].producer_threads, 0);
        assert!(rows[0].results > 0, "workload must produce results");
        let cap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for row in &rows {
            assert_eq!(row.results, rows[0].results, "{} sources", row.sources);
            assert!(row.wall_tps > 0.0);
            assert!(row.busy_balance > 0.0 && row.busy_balance <= 1.0);
            if row.mode == "sources" {
                assert!(row.producer_threads >= 1);
                assert!(
                    row.producer_threads <= cap && row.producer_threads <= row.sources,
                    "{} threads for {} sources (cap {cap})",
                    row.producer_threads,
                    row.sources
                );
            }
        }
    }

    #[test]
    fn ingest_allocation_scenario_shows_arena_savings() {
        let row = bench_ingest_allocs(8_192);
        assert!(row.baseline_allocs_per_tuple > 0.0);
        assert!(row.optimized_allocs_per_tuple > 0.0);
        assert!(
            row.optimized_allocs_per_tuple < row.baseline_allocs_per_tuple,
            "arena path must allocate less: {} vs {}",
            row.optimized_allocs_per_tuple,
            row.baseline_allocs_per_tuple
        );
    }

    #[test]
    fn reconfig_rows_lose_no_results() {
        // Small stream: validates the lossless-install assertion inside
        // the scenario plus the row plumbing, not timings.
        let rows = run_reconfig(1_200, &[200]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].installs_every, 0);
        assert_eq!(rows[0].installs, 0);
        assert!(rows[0].results > 0, "workload must produce results");
        for row in &rows {
            assert_eq!(
                row.results, rows[0].results,
                "cadence {}",
                row.installs_every
            );
            assert!(row.wall_tps > 0.0);
        }
    }

    #[test]
    fn telemetry_overhead_row_is_consistent() {
        // Small stream: validates the identical-results assertion inside
        // the scenario plus the row plumbing, not timings.
        let row = run_telemetry_overhead(1_500);
        assert_eq!(row.tuples, 1_500);
        assert!(row.untraced_tps > 0.0 && row.traced_tps > 0.0);
        assert!(row.throughput_ratio() > 0.0);
        assert!(row.trace_events > 0, "traced run must record events");
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = HotpathReport {
            iters: 10,
            fig7_tuples: 0,
            micro: vec![MicroRow {
                name: "join_chain_5way",
                unit: "five_way_results_per_sec",
                baseline_ops_per_sec: 1.0,
                optimized_ops_per_sec: 2.0,
            }],
            allocs: AllocsRow {
                tuples: 100,
                baseline_allocs_per_tuple: 6.0,
                optimized_allocs_per_tuple: 2.0,
            },
            fig7: Vec::new(),
            multi_source: vec![MultiSourceRow {
                mode: "sources",
                sources: 2,
                producer_threads: 1,
                tuples: 100,
                wall_tps: 10.0,
                latency_p50_ms: 0.2,
                latency_p99_ms: 0.9,
                results: 5,
                busy_balance: 0.5,
            }],
            reconfig: vec![ReconfigRow {
                installs_every: 64,
                installs: 3,
                tuples: 100,
                wall_tps: 10.0,
                results: 5,
            }],
            telemetry: TelemetryOverheadRow {
                tuples: 100,
                untraced_tps: 100.0,
                traced_tps: 99.0,
                trace_events: 42,
            },
        };
        let json = report_to_json(&report);
        assert!(json.contains("\"speedup\": 2.000"));
        assert!(json.contains("\"allocs\""));
        assert!(json.contains("\"baseline_allocs_per_tuple\": 6.000"));
        assert!(json.contains("\"reduction\": 3.000"));
        assert!(json.contains("\"producer_threads\": 1"));
        assert!(json.contains("\"multi_source\""));
        assert!(json.contains("\"busy_balance\": 0.500"));
        assert!(json.contains("\"reconfig\""));
        assert!(json.contains("\"installs_every\": 64"));
        assert!(json.contains("\"latency_p50_ms\": 0.200"));
        assert!(json.contains("\"latency_p99_ms\": 0.900"));
        assert!(json.contains("\"telemetry\""));
        assert!(json.contains("\"throughput_ratio\": 0.990"));
        assert!(json.contains("\"trace_events\": 42"));
        // Balanced braces/brackets (no serde_json in the offline build).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
