//! Mutation tests for the static plan verifier (`clash-analyzer`).
//!
//! Strategy: build a known-good plan — the Fig. 7 five-query TPC-H
//! workload under the Shared strategy — assert it verifies clean, then
//! corrupt one structural invariant at a time and assert the analyzer
//! reports the *specific* diagnostic code that invariant maps to. Each
//! mutation mirrors a bug class an optimizer or hand-written plan could
//! realistically exhibit (dangling references, missing rule sets, broken
//! routing, forward cycles, partition-unsafe sends, ...).
//!
//! A property test at the end closes the loop from the other side: every
//! plan the optimizer builds over random synthetic workloads, under all
//! three strategies, must verify with zero errors.

use clash_analyzer::{errors, verify_plan, verify_plan_with_queries};
use clash_common::{
    AttrId, AttrRef, Diagnostic, EdgeId, QueryId, RelationId, RelationSet, StoreId, Window,
};
use clash_datagen::{SyntheticEnv, SyntheticWorkloadConfig, TpchWorkload};
use clash_optimizer::{
    OutputAction, Planner, PlannerConfig, Rule, SendTarget, StoreDef, StoreDescriptor, Strategy,
    TopologyPlan,
};
use clash_query::JoinQuery;
use proptest::prelude::*;

/// The known-good baseline: Fig. 7's five-query TPC-H workload planned
/// with state sharing on two workers.
fn fig7() -> (TpchWorkload, Vec<JoinQuery>, TopologyPlan) {
    let workload = TpchWorkload::new(2, Window::secs(3600)).expect("tpch workload");
    let queries = workload.five_queries().expect("five queries");
    let planner = Planner::new(&workload.catalog, &workload.stats, PlannerConfig::default());
    let report = planner
        .plan(&queries, Strategy::Shared)
        .expect("shared plan");
    (workload, queries, report.plan)
}

fn has(diags: &[Diagnostic], code: &str) -> bool {
    diags.iter().any(|d| d.code == code)
}

/// First `(route_idx, target_idx)` whose target lands on a rule set
/// containing a `Probe` rule.
fn probe_site(plan: &TopologyPlan) -> (usize, usize) {
    for (ri, route) in plan.ingest.iter().enumerate() {
        for (ti, t) in route.targets.iter().enumerate() {
            if let Some(rules) = plan.rules.get(&(t.store, t.edge)) {
                if rules.iter().any(|r| matches!(r, Rule::Probe { .. })) {
                    return (ri, ti);
                }
            }
        }
    }
    panic!("fig7 plan has no reachable probe rule set");
}

#[test]
fn fig7_shared_plan_verifies_clean() {
    let (workload, queries, plan) = fig7();
    let diags = verify_plan_with_queries(&workload.catalog, &queries, &plan);
    assert!(diags.is_empty(), "expected clean plan, got: {diags:?}");
    // The gate view (no query definitions) must agree.
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(diags.is_empty(), "gate view not clean: {diags:?}");
}

#[test]
fn dangling_store_reference_is_p001() {
    let (workload, _, mut plan) = fig7();
    plan.ingest[0].targets[0].store = StoreId::new(999);
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P001"), "{diags:?}");
}

#[test]
fn dangling_edge_reference_is_p002() {
    let (workload, _, mut plan) = fig7();
    plan.ingest[0].targets[0].edge = EdgeId::new(9999);
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P002"), "{diags:?}");
}

#[test]
fn removed_rule_set_is_p002() {
    let (workload, _, mut plan) = fig7();
    let t = plan.ingest[0].targets[0];
    plan.rules.remove(&(t.store, t.edge)).expect("rule set");
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P002"), "{diags:?}");
}

#[test]
fn orphan_rule_set_is_p003_warning_only() {
    let (workload, _, mut plan) = fig7();
    plan.rules
        .insert((StoreId::new(0), EdgeId::new(5000)), vec![Rule::Store]);
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P003"), "{diags:?}");
    // Dead weight, not a correctness hazard: must not block installs.
    assert!(errors(&diags).is_empty(), "{diags:?}");
}

#[test]
fn unknown_probe_attribute_is_p004() {
    let (workload, _, mut plan) = fig7();
    let (ri, ti) = probe_site(&plan);
    let t = plan.ingest[ri].targets[ti];
    let rules = plan.rules.get_mut(&(t.store, t.edge)).unwrap();
    for rule in rules {
        if let Rule::Probe { predicates, .. } = rule {
            predicates[0].left.attr = AttrId::new(99);
            break;
        }
    }
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P004"), "{diags:?}");
}

#[test]
fn routing_key_of_foreign_relation_is_p005() {
    let (workload, _, mut plan) = fig7();
    // Pick a routed ingest target and re-key it with an attribute of a
    // *different* input relation — the sent tuple does not carry it.
    let relations: Vec<RelationId> = plan.ingest.iter().map(|r| r.relation).collect();
    let route = plan
        .ingest
        .iter_mut()
        .find(|r| r.targets.iter().any(|t| t.routing_key.is_some()))
        .expect("fig7 plan routes by key somewhere");
    let foreign = *relations
        .iter()
        .find(|r| **r != route.relation)
        .expect("more than one input relation");
    let target = route
        .targets
        .iter_mut()
        .find(|t| t.routing_key.is_some())
        .unwrap();
    target.routing_key = Some(AttrRef {
        relation: foreign,
        attr: AttrId::new(0),
    });
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P005"), "{diags:?}");
}

#[test]
fn declared_query_without_emit_is_p006() {
    let (workload, _, mut plan) = fig7();
    plan.queries.push(QueryId::new(77));
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P006"), "{diags:?}");
}

#[test]
fn emit_redirected_to_wrong_query_is_p007() {
    let (workload, queries, mut plan) = fig7();
    // Rewire one query's Emit to another query joining a different
    // relation set: the emitted head no longer matches.
    let mut mutated = false;
    'outer: for rules in plan.rules.values_mut() {
        for rule in rules.iter_mut() {
            if let Rule::Probe { outputs, .. } = rule {
                for out in outputs.iter_mut() {
                    if let OutputAction::Emit { query } = out {
                        let victim = queries
                            .iter()
                            .find(|q| {
                                q.id != *query
                                    && q.relations
                                        != queries
                                            .iter()
                                            .find(|p| p.id == *query)
                                            .unwrap()
                                            .relations
                            })
                            .expect("two queries with different relation sets");
                        *query = victim.id;
                        mutated = true;
                        break 'outer;
                    }
                }
            }
        }
    }
    assert!(mutated, "fig7 plan has no Emit output");
    let diags = verify_plan_with_queries(&workload.catalog, &queries, &plan);
    assert!(has(&diags, "P007"), "{diags:?}");
}

#[test]
fn unfed_mir_store_is_p008() {
    let (workload, _, mut plan) = fig7();
    let mir: RelationSet = [plan.ingest[0].relation, plan.ingest[1].relation]
        .into_iter()
        .collect();
    plan.stores.push(StoreDef {
        id: StoreId::new(plan.stores.len() as u32),
        descriptor: StoreDescriptor::unpartitioned(mir),
    });
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P008"), "{diags:?}");
}

#[test]
fn relation_never_stored_is_p009() {
    let (workload, queries, mut plan) = fig7();
    // Pick an input relation that some multi-way query joins, then strip
    // every Store-rule target from its ingest route: tuples of that
    // relation probe but are never remembered.
    let route_idx = plan
        .ingest
        .iter()
        .position(|r| {
            queries
                .iter()
                .any(|q| q.relations.len() >= 2 && q.relations.contains(r.relation))
        })
        .expect("some routed relation participates in a join");
    let keep: Vec<SendTarget> = plan.ingest[route_idx]
        .targets
        .iter()
        .filter(|t| {
            plan.rules
                .get(&(t.store, t.edge))
                .is_none_or(|rules| !rules.iter().any(|r| matches!(r, Rule::Store)))
        })
        .copied()
        .collect();
    plan.ingest[route_idx].targets = keep;
    let diags = verify_plan_with_queries(&workload.catalog, &queries, &plan);
    assert!(has(&diags, "P009"), "{diags:?}");
}

#[test]
fn forward_cycle_is_p010() {
    let (workload, _, mut plan) = fig7();
    // Find a probe-only node A forwarding to a probe-only node B, then
    // add a broadcast Forward from B back to A.
    let mut back_edge = None;
    'outer: for ((store, edge), rules) in &plan.rules {
        if rules.iter().any(|r| matches!(r, Rule::Store)) {
            continue;
        }
        for rule in rules {
            if let Rule::Probe { outputs, .. } = rule {
                for out in outputs {
                    if let OutputAction::Forward(t) = out {
                        let downstream_probe_only = plan
                            .rules
                            .get(&(t.store, t.edge))
                            .is_some_and(|rs| rs.iter().all(|r| matches!(r, Rule::Probe { .. })));
                        if downstream_probe_only {
                            back_edge = Some(((t.store, t.edge), (*store, *edge)));
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    let ((from_store, from_edge), (to_store, to_edge)) =
        back_edge.expect("fig7 plan has a probe-to-probe Forward");
    let rules = plan.rules.get_mut(&(from_store, from_edge)).unwrap();
    for rule in rules {
        if let Rule::Probe { outputs, .. } = rule {
            outputs.push(OutputAction::Forward(SendTarget {
                edge: to_edge,
                store: to_store,
                routing_key: None,
            }));
            break;
        }
    }
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P010"), "{diags:?}");
}

#[test]
fn partition_unsafe_routing_key_is_p011() {
    let (workload, _, mut plan) = fig7();
    // All attributes mentioned by any probe predicate: any attribute
    // *outside* this set forms a singleton join-equivalence class, so
    // re-keying a partitioned send with one must break partition safety.
    let mut pred_attrs: Vec<AttrRef> = Vec::new();
    for rules in plan.rules.values() {
        for rule in rules {
            if let Rule::Probe { predicates, .. } = rule {
                for p in predicates {
                    pred_attrs.push(p.left);
                    pred_attrs.push(p.right);
                }
            }
        }
    }
    let mut site = None;
    'outer: for (ri, route) in plan.ingest.iter().enumerate() {
        let arity = workload
            .catalog
            .schema(route.relation)
            .expect("schema")
            .arity();
        for (ti, t) in route.targets.iter().enumerate() {
            if t.routing_key.is_none() {
                continue;
            }
            let def = plan.store(t.store).expect("store");
            let partitioned = def.descriptor.partition.is_some() && def.descriptor.parallelism > 1;
            if !partitioned {
                continue;
            }
            for a in 0..arity {
                let cand = AttrRef {
                    relation: route.relation,
                    attr: AttrId::new(a as u32),
                };
                if Some(cand) != def.descriptor.partition && !pred_attrs.contains(&cand) {
                    site = Some((ri, ti, cand));
                    break 'outer;
                }
            }
        }
    }
    let (ri, ti, cand) = site.expect(
        "fig7 plan must have a keyed send into a partitioned store and a \
         spare non-join attribute to re-key it with",
    );
    plan.ingest[ri].targets[ti].routing_key = Some(cand);
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P011"), "{diags:?}");
}

#[test]
fn unknown_relation_in_store_is_p012() {
    let (workload, _, mut plan) = fig7();
    plan.stores[0].descriptor.relations = RelationSet::singleton(RelationId::new(99));
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P012"), "{diags:?}");
}

#[test]
fn store_rule_head_mismatch_is_p013() {
    let (workload, _, mut plan) = fig7();
    // Route relation B's tuples into relation A's Store rule: the head
    // arriving there no longer matches what the store covers.
    let store_target = plan.ingest[0]
        .targets
        .iter()
        .find(|t| {
            plan.rules
                .get(&(t.store, t.edge))
                .is_some_and(|rules| rules.iter().any(|r| matches!(r, Rule::Store)))
        })
        .copied()
        .expect("route 0 feeds a Store rule");
    let misdelivered = SendTarget {
        routing_key: None, // broadcast: isolate P013 from P005/P011
        ..store_target
    };
    plan.ingest[1].targets.push(misdelivered);
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P013"), "{diags:?}");
}

#[test]
fn emit_for_undeclared_query_is_p014() {
    let (workload, _, mut plan) = fig7();
    let (ri, ti) = probe_site(&plan);
    let t = plan.ingest[ri].targets[ti];
    let rules = plan.rules.get_mut(&(t.store, t.edge)).unwrap();
    for rule in rules {
        if let Rule::Probe { outputs, .. } = rule {
            outputs.push(OutputAction::Emit {
                query: QueryId::new(123),
            });
            break;
        }
    }
    let diags = verify_plan(&workload.catalog, &plan);
    assert!(has(&diags, "P014"), "{diags:?}");
}

proptest! {
    /// Every plan the optimizer builds over a random synthetic workload —
    /// any strategy, shared or not — verifies with zero errors. This is
    /// the completeness contract the install gate relies on: a rejected
    /// plan is always a genuinely broken plan.
    #[test]
    fn optimizer_plans_verify_clean(
        seed in 0u64..1000,
        n_queries in 1usize..4,
        query_size in 2usize..4,
        parallelism in 1usize..4,
    ) {
        let config = SyntheticWorkloadConfig {
            parallelism,
            ..SyntheticWorkloadConfig::default()
        };
        let mut env = SyntheticEnv::new(config, seed).expect("synthetic env");
        let queries = env
            .random_queries(n_queries, query_size)
            .expect("random queries");
        for strategy in [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp] {
            let planner = Planner::new(&env.catalog, &env.stats, PlannerConfig::default());
            let report = planner.plan(&queries, strategy).expect("plan");
            let diags = verify_plan_with_queries(&env.catalog, &queries, &report.plan);
            let errs = errors(&diags);
            prop_assert!(
                errs.is_empty(),
                "strategy {:?} produced an invalid plan: {:?}",
                strategy,
                errs
            );
        }
    }
}
