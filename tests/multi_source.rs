//! Exactness and liveness of the async multi-source ingestion front-end.
//!
//! The contract under test is linearizability: K producer threads pushing
//! concurrently through their own `SourceHandle`s — with out-of-order
//! timestamps and any interleaving the scheduler picks — must produce
//! exactly the result multiset of single-threaded `LocalEngine` ingestion
//! of the same tuples in the realized serial order (`push` returns each
//! tuple's allocated sequence number, so that order is observable).
//! Sources with disjoint join keys additionally produce one deterministic
//! multiset under *any* interleaving, which pins the contract without
//! replaying the realized order. On top of exactness: results stream to
//! subscribers between barriers, backpressure bounds in-flight roots, the
//! time trigger flushes sparse streams, and engine drop drains whatever
//! the last explicit barrier did not cover.

use clash_catalog::{Catalog, Statistics};
use clash_common::{QueryId, RelationId, Timestamp, Tuple, TupleBuilder, Window};
use clash_optimizer::{Planner, Strategy, TopologyPlan};
use clash_query::parse_query;
use clash_runtime::{EngineConfig, LocalEngine, ParallelEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn catalog_with_parallelism(parallelism: usize) -> (Catalog, Vec<clash_query::JoinQuery>) {
    let mut catalog = Catalog::new();
    catalog
        .register("A", ["x"], Window::secs(3600), parallelism)
        .unwrap();
    catalog
        .register("B", ["x", "y"], Window::secs(3600), parallelism)
        .unwrap();
    catalog
        .register("C", ["y", "z"], Window::secs(3600), parallelism)
        .unwrap();
    catalog.register("D", ["z"], Window::secs(3600), 1).unwrap();
    let q1 = parse_query(&catalog, QueryId::new(0), "q1", "A(x), B(x,y), C(y)").unwrap();
    let q2 = parse_query(&catalog, QueryId::new(1), "q2", "B(y), C(y,z), D(z)").unwrap();
    (catalog, vec![q1, q2])
}

fn planned(
    catalog: &Catalog,
    queries: &[clash_query::JoinQuery],
    strategy: Strategy,
) -> TopologyPlan {
    let stats = Statistics::new();
    let planner = Planner::with_defaults(catalog, &stats);
    planner.plan(queries, strategy).unwrap().plan
}

/// Random stream over all four relations with keys drawn from
/// `key_lo..key_hi` and out-of-order timestamps (a tuple may carry a
/// smaller timestamp than an earlier one in the stream).
fn random_stream(
    catalog: &Catalog,
    n_per_relation: usize,
    key_lo: i64,
    key_hi: i64,
    seed: u64,
) -> Vec<(RelationId, Tuple)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::new();
    let mut ts = 0u64;
    for _ in 0..n_per_relation {
        for name in ["A", "B", "C", "D"] {
            let meta = catalog.relation_by_name(name).unwrap();
            ts += 5;
            let jitter = rng.gen_range(0..10u64);
            let mut b = TupleBuilder::new(&meta.schema, Timestamp::from_millis(ts + jitter));
            for attr in &meta.schema.attributes {
                b = b.set(&attr.name, rng.gen_range(key_lo..key_hi));
            }
            stream.push((meta.id, b.build()));
        }
    }
    stream
}

/// Canonical sortable rendering of a result multiset.
fn result_multiset(results: &[(QueryId, Tuple)]) -> Vec<String> {
    let mut rendered: Vec<String> = results
        .iter()
        .map(|(q, t)| {
            let mut attrs: Vec<String> = t.iter().map(|(a, v)| format!("{a}={v}")).collect();
            attrs.sort();
            format!("{q}|{}|{}", t.ts, attrs.join(","))
        })
        .collect();
    rendered.sort();
    rendered
}

fn run_local(
    catalog: &Catalog,
    plan: &TopologyPlan,
    stream: &[(RelationId, Tuple)],
) -> Vec<String> {
    let config = EngineConfig {
        collect_results: true,
        ..EngineConfig::default()
    };
    let mut engine = LocalEngine::new(catalog.clone(), plan.clone(), config);
    for (relation, tuple) in stream {
        engine.ingest(*relation, tuple.clone()).unwrap();
    }
    result_multiset(engine.results())
}

fn collecting_config() -> EngineConfig {
    EngineConfig {
        collect_results: true,
        ..EngineConfig::default()
    }
}

/// Splits `stream` round-robin across `sources` producer threads, each
/// pushing its slice through its own `SourceHandle` while recording the
/// sequence numbers `push` returns. Returns the collected multiset plus
/// the realized serial order (all pushes sorted by sequence number).
fn run_multi_source_recorded(
    catalog: &Catalog,
    plan: &TopologyPlan,
    stream: &[(RelationId, Tuple)],
    sources: usize,
    workers: usize,
    config: EngineConfig,
) -> (Vec<String>, Vec<(RelationId, Tuple)>) {
    let mut engine = ParallelEngine::new(catalog.clone(), plan.clone(), config, workers);
    let mut slices: Vec<Vec<(RelationId, Tuple)>> = (0..sources).map(|_| Vec::new()).collect();
    for (idx, entry) in stream.iter().enumerate() {
        slices[idx % sources].push(entry.clone());
    }
    let producers: Vec<_> = slices
        .into_iter()
        .map(|slice| {
            let mut handle = engine.open_source();
            std::thread::spawn(move || {
                let mut log = Vec::with_capacity(slice.len());
                for (relation, tuple) in slice {
                    let seq = handle.push(relation, tuple.clone()).unwrap();
                    log.push((seq, relation, tuple));
                }
                log
            })
        })
        .collect();
    let mut realized: Vec<(u64, RelationId, Tuple)> = Vec::new();
    for producer in producers {
        realized.extend(producer.join().expect("producer thread"));
    }
    realized.sort_by_key(|(seq, _, _)| *seq);
    engine.flush();
    (
        result_multiset(&engine.results()),
        realized.into_iter().map(|(_, r, t)| (r, t)).collect(),
    )
}

proptest! {
    /// The headline exactness property: K concurrent sources with
    /// out-of-order timestamps produce the same result multiset as
    /// single-threaded `LocalEngine` ingestion of the realized serial
    /// order (linearizability — the scheduler picks the interleaving,
    /// `push`'s returned sequence numbers expose it).
    #[test]
    fn concurrent_sources_are_linearizable(
        seed in 0u64..10_000,
        sources in 2usize..5,
    ) {
        let (catalog, queries) = catalog_with_parallelism(4);
        let plan = planned(&catalog, &queries, Strategy::Shared);
        let stream = random_stream(&catalog, 12, 0, 5, seed);
        let (multi, realized) =
            run_multi_source_recorded(&catalog, &plan, &stream, sources, 4, collecting_config());
        prop_assert_eq!(realized.len(), stream.len(), "every push sequenced exactly once");
        let local = run_local(&catalog, &plan, &realized);
        prop_assert_eq!(local, multi, "seed {}, {} sources", seed, sources);
    }

    /// Sources with disjoint join keys produce one deterministic multiset
    /// under any interleaving: the original stream order and every
    /// realized order agree, so multi-source ingestion must reproduce
    /// `LocalEngine` on the stream as written.
    #[test]
    fn disjoint_key_sources_match_local_on_stream_order(
        seed in 0u64..10_000,
        sources in 2usize..4,
    ) {
        let (catalog, queries) = catalog_with_parallelism(4);
        let plan = planned(&catalog, &queries, Strategy::Shared);
        // Per-source slices drawn from non-overlapping key ranges; the
        // round-robin split in the runner maps stream[i] to source
        // i % sources, so build the stream interleaved the same way.
        let per_source: Vec<Vec<(RelationId, Tuple)>> = (0..sources)
            .map(|s| {
                let lo = (s as i64) * 100;
                random_stream(&catalog, 12, lo, lo + 4, seed.wrapping_add(s as u64))
            })
            .collect();
        let mut stream = Vec::new();
        for idx in 0..per_source[0].len() * sources {
            stream.push(per_source[idx % sources][idx / sources].clone());
        }
        let local = run_local(&catalog, &plan, &stream);
        let (multi, _) =
            run_multi_source_recorded(&catalog, &plan, &stream, sources, 4, collecting_config());
        prop_assert_eq!(local, multi, "seed {}, {} sources", seed, sources);
    }
}

#[test]
fn many_sources_and_strategies_are_linearizable() {
    // Heavier deterministic sweep across strategies, source counts and
    // worker counts (the proptests above fix Shared/4 for case volume).
    let (catalog, queries) = catalog_with_parallelism(4);
    for strategy in [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp] {
        let plan = planned(&catalog, &queries, strategy);
        let stream = random_stream(&catalog, 40, 0, 6, 0xBEEF);
        for (sources, workers) in [(1, 4), (2, 2), (3, 4), (4, 7)] {
            let (multi, realized) = run_multi_source_recorded(
                &catalog,
                &plan,
                &stream,
                sources,
                workers,
                collecting_config(),
            );
            let local = run_local(&catalog, &plan, &realized);
            assert!(!local.is_empty(), "workload must produce results");
            assert_eq!(
                local, multi,
                "{strategy:?}, {sources} sources, {workers} workers"
            );
        }
    }
}

#[test]
fn single_source_matches_local_on_stream_order() {
    // One source realizes exactly its push order, so no recording is
    // needed: the multiset must equal LocalEngine on the stream as
    // written, out-of-order timestamps included.
    let (catalog, queries) = catalog_with_parallelism(4);
    let plan = planned(&catalog, &queries, Strategy::GlobalIlp);
    for seed in [1u64, 2, 3] {
        let stream = random_stream(&catalog, 30, 0, 5, seed);
        let local = run_local(&catalog, &plan, &stream);
        assert!(!local.is_empty());
        let (multi, realized) =
            run_multi_source_recorded(&catalog, &plan, &stream, 1, 4, collecting_config());
        assert_eq!(realized, stream, "a single source realizes push order");
        assert_eq!(local, multi, "seed {seed}");
    }
}

#[test]
fn micro_batch_and_backpressure_extremes_stay_exact() {
    // Send-per-push, tiny in-flight bounds (every push waits on the
    // admission gate) and barrier-only batching must not change results.
    let (catalog, queries) = catalog_with_parallelism(2);
    let plan = planned(&catalog, &queries, Strategy::Shared);
    let stream = random_stream(&catalog, 25, 0, 4, 7);
    for (micro_batch, max_inflight) in [(1usize, 1usize), (4, 2), (1 << 20, 8), (64, 0)] {
        let config = EngineConfig {
            micro_batch,
            max_inflight_roots: max_inflight,
            ..collecting_config()
        };
        let (multi, realized) = run_multi_source_recorded(&catalog, &plan, &stream, 3, 2, config);
        let local = run_local(&catalog, &plan, &realized);
        assert_eq!(
            local, multi,
            "micro_batch={micro_batch}, max_inflight_roots={max_inflight}"
        );
    }
}

#[test]
fn coordinator_and_sources_may_ingest_concurrently() {
    // The coordinator's own ingest is just another producer. Its slice
    // and the source's slice use disjoint key ranges, so the combined
    // multiset is interleaving-independent and must equal LocalEngine on
    // the two slices back to back.
    let (catalog, queries) = catalog_with_parallelism(4);
    let plan = planned(&catalog, &queries, Strategy::Shared);
    let coordinator_slice = random_stream(&catalog, 30, 0, 5, 21);
    let source_slice = random_stream(&catalog, 30, 100, 105, 22);
    let mut combined = coordinator_slice.clone();
    combined.extend(source_slice.iter().cloned());
    let local = run_local(&catalog, &plan, &combined);
    let mut engine = ParallelEngine::new(catalog.clone(), plan, collecting_config(), 4);
    let mut handle = engine.open_source();
    let producer = std::thread::spawn(move || {
        for (relation, tuple) in source_slice {
            handle.push(relation, tuple).unwrap();
        }
    });
    for (relation, tuple) in &coordinator_slice {
        engine.ingest(*relation, tuple.clone()).unwrap();
    }
    producer.join().expect("producer thread");
    engine.flush();
    assert_eq!(local, result_multiset(&engine.results()));
}

#[test]
fn subscription_streams_results_before_any_barrier() {
    let (catalog, queries) = catalog_with_parallelism(2);
    let plan = planned(&catalog, &queries, Strategy::Shared);
    let stream = random_stream(&catalog, 30, 0, 4, 3);
    let expected = run_local(&catalog, &plan, &stream).len();
    assert!(expected > 0);
    // Send-per-push so nothing lingers in a batch buffer.
    let config = EngineConfig {
        micro_batch: 1,
        ..EngineConfig::default()
    };
    let mut engine = ParallelEngine::new(catalog.clone(), plan, config, 2);
    let rx = engine.subscribe();
    let mut handle = engine.open_source();
    let producer = std::thread::spawn(move || {
        for (relation, tuple) in stream {
            handle.push(relation, tuple).unwrap();
        }
    });
    // Every result must arrive on the subscription without any flush /
    // snapshot barrier being run.
    let mut streamed = 0usize;
    while streamed < expected {
        match rx.recv_timeout(Duration::from_secs(10)) {
            Ok(_) => streamed += 1,
            Err(e) => panic!("subscription stalled after {streamed}/{expected} results: {e}"),
        }
    }
    producer.join().expect("producer thread");
    // No duplicates: the barrier must not re-deliver anything.
    engine.flush();
    assert!(
        rx.try_recv().is_err(),
        "subscription delivered more results than the sequential engine produces"
    );
}

#[test]
fn backpressure_bounds_inflight_roots() {
    let (catalog, queries) = catalog_with_parallelism(2);
    let plan = planned(&catalog, &queries, Strategy::Shared);
    let stream = random_stream(&catalog, 100, 0, 4, 11);
    let cap = 4usize;
    let config = EngineConfig {
        max_inflight_roots: cap,
        collect_results: true,
        ..EngineConfig::default()
    };
    let mut engine = ParallelEngine::new(catalog.clone(), plan.clone(), config, 2);
    let mut handle = engine.open_source();
    let pushed = stream.clone();
    let producer = std::thread::spawn(move || {
        for (relation, tuple) in pushed {
            handle.push(relation, tuple).unwrap();
        }
    });
    // Sample the in-flight gauge while the producer runs: the admission
    // gate must keep it at or below the bound (the watermark is read
    // monotonically, so a sample can only under-report).
    let mut max_seen = 0u64;
    while !producer.is_finished() {
        max_seen = max_seen.max(engine.inflight());
    }
    producer.join().expect("producer thread");
    assert!(
        max_seen <= cap as u64,
        "in-flight roots reached {max_seen}, bound is {cap}"
    );
    engine.flush();
    // A single source realizes push order: results must match the local
    // engine on the stream as written despite the throttling.
    assert_eq!(
        run_local(&catalog, &plan, &stream),
        result_multiset(&engine.results())
    );
}

#[test]
fn time_trigger_flushes_sparse_streams_without_barriers() {
    // A barrier-sized micro-batch would hold these three tuples forever;
    // the time trigger (coordinator check + flusher thread for idle
    // sources) must push them out and stream the join result.
    let (catalog, queries) = catalog_with_parallelism(2);
    let plan = planned(&catalog, &queries, Strategy::Shared);
    let config = EngineConfig {
        micro_batch: 1 << 20,
        micro_batch_max_delay: Duration::from_millis(5),
        ..EngineConfig::default()
    };
    let mut engine = ParallelEngine::new(catalog.clone(), plan, config, 2);
    let rx = engine.subscribe();
    let mut handle = engine.open_source();
    let tuple = |name: &str, ts: u64, values: &[(&str, i64)]| {
        let meta = catalog.relation_by_name(name).unwrap();
        let mut b = TupleBuilder::new(&meta.schema, Timestamp::from_millis(ts));
        for (attr, v) in values {
            b = b.set(attr, *v);
        }
        (meta.id, b.build())
    };
    for (relation, t) in [
        tuple("A", 10, &[("x", 1)]),
        tuple("B", 20, &[("x", 1), ("y", 2)]),
        tuple("C", 30, &[("y", 2), ("z", 3)]),
    ] {
        handle.push(relation, t).unwrap();
    }
    // The A(x) ⋈ B(x,y) ⋈ C(y) result must stream out with no flush, no
    // further pushes and no barrier: only the flusher thread can ship the
    // third delivery.
    let deadline = Instant::now() + Duration::from_secs(10);
    let result = rx.recv_timeout(deadline - Instant::now());
    assert!(
        result.is_ok(),
        "time-triggered flush never delivered the sparse stream's result"
    );
}

#[test]
fn drop_without_barrier_drains_inflight_results() {
    let (catalog, queries) = catalog_with_parallelism(2);
    let plan = planned(&catalog, &queries, Strategy::Shared);
    let stream = random_stream(&catalog, 30, 0, 4, 5);
    let expected = run_local(&catalog, &plan, &stream).len() as u64;
    assert!(expected > 0);
    let mut engine = ParallelEngine::new(catalog.clone(), plan, EngineConfig::default(), 2);
    let delivered = Arc::new(AtomicU64::new(0));
    let counter = delivered.clone();
    engine.set_sink(Box::new(move |_, _| {
        counter.fetch_add(1, Ordering::Relaxed);
    }));
    for (relation, tuple) in &stream {
        engine.ingest(*relation, tuple.clone()).unwrap();
    }
    // No flush, no snapshot: dropping the engine must drain in-flight
    // batches and deliver every outstanding result to the sink before
    // joining the workers.
    drop(engine);
    assert_eq!(delivered.load(Ordering::Relaxed), expected);
}

/// Outcome of [`run_with_installs`]: collected multiset, realized serial
/// order, and realized install points `(position, plan index)`.
type InstallRaceOutcome = (Vec<String>, Vec<(RelationId, Tuple)>, Vec<(u64, usize)>);

/// Runs `sources` producer threads over round-robin slices of `stream`
/// while the main thread force-installs `plans` (cycled) whenever
/// `installs_every` further roots have been sequenced. Returns the
/// collected multiset, the realized serial order, and the realized
/// install points `(position, plan index)` — position `p` meaning roots
/// `1..=p` ran under the previous plan and later roots under the new one.
fn run_with_installs(
    catalog: &Catalog,
    plans: &[TopologyPlan],
    stream: &[(RelationId, Tuple)],
    sources: usize,
    workers: usize,
    installs_every: u64,
    config: EngineConfig,
) -> InstallRaceOutcome {
    let mut engine = ParallelEngine::new(catalog.clone(), plans[0].clone(), config, workers);
    let mut slices: Vec<Vec<(RelationId, Tuple)>> = (0..sources).map(|_| Vec::new()).collect();
    for (idx, entry) in stream.iter().enumerate() {
        slices[idx % sources].push(entry.clone());
    }
    let producers: Vec<_> = slices
        .into_iter()
        .map(|slice| {
            let mut handle = engine.open_source();
            std::thread::spawn(move || {
                let mut log = Vec::with_capacity(slice.len());
                for (relation, tuple) in slice {
                    let seq = handle.push(relation, tuple.clone()).unwrap();
                    log.push((seq, relation, tuple));
                }
                log
            })
        })
        .collect();
    // Force plan installs while the producers run: every time
    // `installs_every` further roots have been sequenced, install the
    // next plan of the cycle. This is the exact race that used to drop
    // pushes — workers switching plans under concurrent producers.
    let mut installs = Vec::new();
    let mut next_install_at = installs_every;
    let mut plan_idx = 0usize;
    while producers.iter().any(|p| !p.is_finished()) {
        if engine.sequenced() >= next_install_at {
            plan_idx = (plan_idx + 1) % plans.len();
            let pos = engine.install_plan(plans[plan_idx].clone()).unwrap();
            installs.push((pos, plan_idx));
            next_install_at = engine.sequenced() + installs_every;
        }
        std::thread::yield_now();
    }
    let mut realized: Vec<(u64, RelationId, Tuple)> = Vec::new();
    for producer in producers {
        realized.extend(producer.join().expect("producer thread"));
    }
    realized.sort_by_key(|(seq, _, _)| *seq);
    engine.flush();
    (
        result_multiset(&engine.results()),
        realized.into_iter().map(|(_, r, t)| (r, t)).collect(),
        installs,
    )
}

proptest! {
    /// The install-race exactness property (the bug this PR fixes): N
    /// producer threads pushing continuously across M forced
    /// `install_plan` calls lose nothing — the multiset equals
    /// `LocalEngine` on the realized sequence order. The re-installed
    /// plan is identical, so state carry-over makes the replay
    /// install-free; any dropped or stale-routed push would show up as a
    /// missing or extra result.
    #[test]
    fn producers_racing_installs_lose_nothing(
        seed in 0u64..10_000,
        sources in 2usize..4,
    ) {
        let (catalog, queries) = catalog_with_parallelism(4);
        let plan = planned(&catalog, &queries, Strategy::Shared);
        let stream = random_stream(&catalog, 12, 0, 5, seed);
        let plans = vec![plan];
        let (multi, realized, installs) = run_with_installs(
            &catalog, &plans, &stream, sources, 4, 8, collecting_config());
        prop_assert_eq!(realized.len(), stream.len(), "every push sequenced exactly once");
        let local = run_local(&catalog, &plans[0], &realized);
        prop_assert_eq!(local, multi, "seed {}, {} sources, {} installs", seed, sources, installs.len());
    }
}

#[test]
fn installs_alternating_plans_match_local_replay_at_install_points() {
    // The strong form of the quiesce contract: with *different* plans
    // alternating under live producers, the engine equals `LocalEngine`
    // replaying the realized order with the same plans installed at the
    // same realized positions (`install_plan` returns them). Descriptor
    // key carry-over applies on both sides.
    let (catalog, queries) = catalog_with_parallelism(4);
    let plans = vec![
        planned(&catalog, &queries, Strategy::Shared),
        planned(&catalog, &queries, Strategy::Independent),
    ];
    for seed in [11u64, 12, 13] {
        let stream = random_stream(&catalog, 25, 0, 5, seed);
        let (multi, realized, installs) =
            run_with_installs(&catalog, &plans, &stream, 3, 4, 20, collecting_config());
        assert_eq!(realized.len(), stream.len());
        // Replay through LocalEngine with identical install points.
        let config = collecting_config();
        let mut local = LocalEngine::new(catalog.clone(), plans[0].clone(), config);
        let mut install_iter = installs.iter().peekable();
        for (i, (relation, tuple)) in realized.iter().enumerate() {
            while install_iter.peek().is_some_and(|(pos, _)| *pos <= i as u64) {
                let (_, idx) = install_iter.next().expect("peeked");
                local.install_plan(plans[*idx].clone()).unwrap();
            }
            local.ingest(*relation, tuple.clone()).unwrap();
        }
        for (_, idx) in install_iter {
            local.install_plan(plans[*idx].clone()).unwrap();
        }
        assert_eq!(
            result_multiset(local.results()),
            multi,
            "seed {seed}: {} installs at {:?}",
            installs.len(),
            installs
        );
    }
}

#[test]
fn no_push_blocks_past_the_quiesce_window() {
    // Reconfiguration-under-load liveness: with repeated installs racing
    // K producers, every push completes and none blocks anywhere near
    // the backpressure stall threshold — pushes only ever wait for the
    // bounded quiesce window (pause -> drain -> install -> resume).
    let (catalog, queries) = catalog_with_parallelism(2);
    let plan = planned(&catalog, &queries, Strategy::Shared);
    let stream = random_stream(&catalog, 50, 0, 4, 17);
    let mut engine = ParallelEngine::new(catalog.clone(), plan.clone(), collecting_config(), 2);
    let mut slices: Vec<Vec<(RelationId, Tuple)>> = (0..3).map(|_| Vec::new()).collect();
    for (idx, entry) in stream.iter().enumerate() {
        slices[idx % 3].push(entry.clone());
    }
    let producers: Vec<_> = slices
        .into_iter()
        .map(|slice| {
            let mut handle = engine.open_source();
            std::thread::spawn(move || {
                let mut max_push = Duration::ZERO;
                for (relation, tuple) in slice {
                    let started = Instant::now();
                    handle.push(relation, tuple).unwrap();
                    max_push = max_push.max(started.elapsed());
                }
                max_push
            })
        })
        .collect();
    // Do-while: at least one install runs even if the scheduler lets the
    // producers finish first, and typically many overlap them.
    let mut installs = 0;
    loop {
        engine.install_plan(plan.clone()).unwrap();
        installs += 1;
        if producers.iter().all(|p| p.is_finished()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(installs > 0);
    for producer in producers {
        let max_push = producer.join().expect("producer thread");
        assert!(
            max_push < Duration::from_secs(10),
            "a push blocked {max_push:?}, far past any quiesce window"
        );
    }
}

#[test]
fn clash_system_source_workload_reconfigures_out_of_the_box() {
    // The Fig. 8 acceptance path at the system level: a parallel
    // deployment fed exclusively through `open_source()` (not one
    // coordinator-thread ingest) records reconfigurations, because the
    // control-plane epoch driver wired up by `deploy` fires the adaptive
    // controller off the stream clock the pushes advance.
    use clash_core::{ClashSystem, RuntimeMode, SystemConfig};
    let mut clash = ClashSystem::new(SystemConfig {
        runtime: RuntimeMode::Parallel(2),
        ..SystemConfig::default()
    });
    clash
        .register_relation("R", ["a"], clash_common::Window::secs(3600), 2)
        .unwrap();
    clash
        .register_relation("S", ["a", "b"], clash_common::Window::secs(3600), 2)
        .unwrap();
    clash
        .register_relation("T", ["b"], clash_common::Window::secs(3600), 2)
        .unwrap();
    clash.set_rate("R", 100.0).unwrap();
    clash.set_rate("S", 100.0).unwrap();
    clash.set_rate("T", 100.0).unwrap();
    clash.register_query("q1", "R(a), S(a,b), T(b)").unwrap();
    clash.deploy(clash_core::Strategy::GlobalIlp).unwrap();
    let mut handle = clash.open_source().unwrap();
    // A mid-stream query registration guarantees the next evaluated
    // epoch boundary schedules a different plan.
    clash.register_query("q2", "S(b), T(b)").unwrap();
    let r = clash.catalog().relation_id("R").unwrap();
    let s = clash.catalog().relation_id("S").unwrap();
    let r_meta = clash.catalog().relation(r).unwrap().clone();
    let s_meta = clash.catalog().relation(s).unwrap().clone();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut ts = 0u64;
    let reconfigured = loop {
        ts += 333;
        let rt = clash_common::TupleBuilder::new(&r_meta.schema, Timestamp::from_millis(ts))
            .set("a", (ts % 5) as i64)
            .build();
        handle.push(r, rt).unwrap();
        let st = clash_common::TupleBuilder::new(&s_meta.schema, Timestamp::from_millis(ts))
            .set("a", (ts % 5) as i64)
            .set("b", (ts % 3) as i64)
            .build();
        handle.push(s, st).unwrap();
        if clash.reconfigurations() > 0 {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(
        reconfigured,
        "a source-fed ClashSystem deployment never re-optimized"
    );
    // Zero coordinator-thread ingests happened; the engine still drains
    // and accounts every push.
    let snap = clash.snapshot().unwrap();
    assert!(snap.tuples_ingested > 0);
}

#[test]
fn source_push_after_shutdown_errors() {
    let (catalog, queries) = catalog_with_parallelism(2);
    let plan = planned(&catalog, &queries, Strategy::Shared);
    let stream = random_stream(&catalog, 2, 0, 4, 1);
    let mut engine = ParallelEngine::new(catalog.clone(), plan, collecting_config(), 2);
    let mut handle = engine.open_source();
    let (relation, tuple) = stream[0].clone();
    handle.push(relation, tuple.clone()).unwrap();
    engine.shutdown();
    assert_eq!(
        handle.push(relation, tuple.clone()).unwrap_err(),
        clash_common::ClashError::Shutdown,
        "pushes after shutdown must error, not vanish"
    );
    drop(engine);
    assert_eq!(
        handle.push(relation, tuple).unwrap_err(),
        clash_common::ClashError::Shutdown,
        "pushes after drop must error too"
    );
}

#[test]
fn explicit_shutdown_is_idempotent_and_inert() {
    let (catalog, queries) = catalog_with_parallelism(2);
    let plan = planned(&catalog, &queries, Strategy::Shared);
    let stream = random_stream(&catalog, 10, 0, 4, 9);
    let mut engine = ParallelEngine::new(catalog.clone(), plan, collecting_config(), 2);
    for (relation, tuple) in &stream {
        engine.ingest(*relation, tuple.clone()).unwrap();
    }
    engine.shutdown();
    let results_after_shutdown = engine.results().len();
    engine.shutdown(); // idempotent
    engine.flush(); // inert, must not panic
    let (relation, tuple) = stream[0].clone();
    assert!(
        engine.ingest(relation, tuple).is_err(),
        "ingest after shutdown must error, not hang"
    );
    assert_eq!(engine.results().len(), results_after_shutdown);
}
