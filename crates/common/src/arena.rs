//! Thread-local slab arena for base-leaf value buffers.
//!
//! Base-tuple construction is the last per-tuple allocation on the ingest
//! hot path: every leaf owns a `Box<[Value]>` sized to its relation's
//! schema width. Those widths repeat endlessly (one per relation), and
//! window expiry frees leaves at the same rate ingest creates them — so
//! instead of round-tripping each buffer through the global allocator,
//! dropped leaves return their buffer to a per-thread pool keyed by width
//! and the next [`crate::tuple::TupleBuilder`] (or [`crate::tuple::
//! Tuple::base`] / `from_wire`) of that width reuses it.
//!
//! The pool is thread-local, so there is no synchronization on the hot
//! path; a buffer freed on a worker thread simply seeds that worker's
//! pool. Recycled buffers are cleared to `Value::Null` before pooling
//! (dropping the payloads exactly as a plain drop would), so a reused
//! buffer is indistinguishable from a fresh one. Pool size is capped per
//! width; overflow falls through to the normal allocator.

use crate::value::Value;
use std::cell::RefCell;

/// Widest buffer the pool recycles (the leaf bitmap width).
const MAX_POOLED_WIDTH: usize = crate::tuple::MAX_ATTRS_PER_RELATION;

/// Maximum pooled buffers per width (an expiry wave larger than this
/// frees the excess normally).
const MAX_POOLED_PER_WIDTH: usize = 8_192;

/// Counters describing the pool's behavior on this thread
/// (tests and the allocation benchmarks read them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out from the pool (allocation avoided).
    pub reused: u64,
    /// Buffers that had to be freshly allocated.
    pub allocated: u64,
    /// Buffers returned to the pool at leaf drop.
    pub recycled: u64,
    /// Buffers dropped because their width slot was full (or too wide).
    pub discarded: u64,
}

struct LeafPool {
    /// Free buffers by exact width.
    by_width: Vec<Vec<Box<[Value]>>>,
    stats: ArenaStats,
}

impl LeafPool {
    const fn new() -> LeafPool {
        LeafPool {
            by_width: Vec::new(),
            stats: ArenaStats {
                reused: 0,
                allocated: 0,
                recycled: 0,
                discarded: 0,
            },
        }
    }
}

thread_local! {
    // `const`-initialized: the TLS access compiles to a plain offset read
    // with no lazy-init branch, which matters at one take + one recycle
    // per constructed base tuple.
    static POOL: RefCell<LeafPool> = const { RefCell::new(LeafPool::new()) };
}

/// Takes a zeroed (`Value::Null`-filled) buffer of exactly `width` slots,
/// reusing a pooled one when available. Falls back to a fresh allocation
/// when the thread-local pool is unavailable (thread teardown).
#[inline]
pub(crate) fn take_buffer(width: usize) -> Box<[Value]> {
    POOL.try_with(|pool| {
        let mut pool = pool.borrow_mut();
        if let Some(buf) = pool.by_width.get_mut(width).and_then(|bucket| bucket.pop()) {
            pool.stats.reused += 1;
            return buf;
        }
        pool.stats.allocated += 1;
        (0..width).map(|_| Value::Null).collect()
    })
    .unwrap_or_else(|_| (0..width).map(|_| Value::Null).collect())
}

/// Returns a leaf buffer to the pool (called from leaf/builder drops).
/// Pooled slots are cleared to `Value::Null`, releasing their payloads;
/// a buffer the pool has no room for is dropped as-is (the plain drop
/// releases the payloads anyway), so bulk expiry waves beyond the pool
/// cap pay nothing over a normal deallocation.
#[inline]
pub(crate) fn recycle_buffer(mut buf: Box<[Value]>) {
    let width = buf.len();
    if width == 0 || width > MAX_POOLED_WIDTH {
        return;
    }
    // `try_with`: a leaf dropped during thread-local teardown (e.g. a
    // tuple cached in another TLS slot whose destructor runs after the
    // pool's) must not panic — the buffer then just drops normally,
    // releasing its payloads like any allocation.
    let _ = POOL.try_with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.by_width.len() <= width {
            pool.by_width.resize_with(width + 1, Vec::new);
        }
        if pool.by_width[width].len() < MAX_POOLED_PER_WIDTH {
            // Dropping payloads cannot re-enter the pool: `Value` drops
            // never construct tuples.
            for slot in buf.iter_mut() {
                *slot = Value::Null;
            }
            pool.by_width[width].push(buf);
            pool.stats.recycled += 1;
        } else {
            pool.stats.discarded += 1;
        }
    });
}

/// Snapshot of this thread's pool counters.
pub fn arena_stats() -> ArenaStats {
    POOL.try_with(|pool| pool.borrow().stats)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled_and_reused_per_width() {
        let before = arena_stats();
        let buf = take_buffer(3);
        assert_eq!(buf.len(), 3);
        assert!(buf.iter().all(Value::is_null));
        recycle_buffer(buf);
        let mid = arena_stats();
        assert_eq!(mid.recycled, before.recycled + 1);
        let again = take_buffer(3);
        assert_eq!(arena_stats().reused, before.reused + 1);
        assert!(again.iter().all(Value::is_null));
        // A different width does not hit the pooled buffer.
        let other = take_buffer(5);
        assert_eq!(other.len(), 5);
        recycle_buffer(again);
        recycle_buffer(other);
    }

    #[test]
    fn recycling_clears_payloads() {
        let mut buf = take_buffer(2);
        buf[0] = Value::str("payload");
        buf[1] = Value::Int(7);
        recycle_buffer(buf);
        let reused = take_buffer(2);
        assert!(reused.iter().all(Value::is_null));
        recycle_buffer(reused);
    }

    #[test]
    fn zero_and_overwide_buffers_bypass_the_pool() {
        let before = arena_stats();
        recycle_buffer(take_buffer(0));
        let wide: Box<[Value]> = (0..MAX_POOLED_WIDTH + 1).map(|_| Value::Null).collect();
        recycle_buffer(wide);
        let after = arena_stats();
        assert_eq!(after.recycled, before.recycled);
    }
}
