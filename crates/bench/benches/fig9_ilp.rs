//! Criterion benches behind Fig. 9: ILP construction and solving for
//! random multi-query workloads (runtime series of Fig. 9e / 9f).

use clash_bench::fig9::optimize_random_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig9e(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9e_runtime_vs_nq");
    group.sample_size(10);
    for nq in [20usize, 60, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(nq), &nq, |b, &nq| {
            b.iter(|| optimize_random_workload(100, nq, 3, 1));
        });
    }
    group.finish();
}

fn bench_fig9f(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9f_runtime_vs_query_size");
    group.sample_size(10);
    for size in [3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| optimize_random_workload(100, 10, size, 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9e, bench_fig9f);
criterion_main!(benches);
