//! Worker threads: message protocol, fan-out outbox and the thread loop.
//!
//! Every worker owns one mpsc receiver; the coordinator and all other
//! workers hold senders to it. Per-sender FIFO plus the router's
//! arrival-order dispatch give each (store, partition) a delivery order
//! consistent with sequential execution; the sequence-number probe guard
//! and the symmetric pending-prober mechanism (see `shard`) close the two
//! remaining races.

use crate::metrics::EngineMetrics;
use crate::parallel::router::{fan_out, DepthGauges, Progress, RootHandle};
use crate::parallel::shard::{ShardState, StoreDetail, StoreLayout};
use crate::stats_collector::StatsCollector;
use clash_common::{
    arena_stats, ArenaStats, EpochConfig, FxHashSet, QueryId, StoreId, Timestamp, TraceEvent,
    TraceEventKind, TraceRing, Tuple,
};
use clash_optimizer::{SendTarget, TopologyPlan};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// One tuple delivery to the partitions of one store that a single worker
/// owns. `probe_partitions` drive `Probe` rules; `store_partition` (when
/// the receiving worker owns it) drives `Store` rules.
#[derive(Debug, Clone)]
pub(crate) struct Delivery {
    /// Target store and edge label (selects the rule set).
    pub target: SendTarget,
    /// The tuple or partial join result being delivered.
    pub tuple: Tuple,
    /// Owned partitions to probe (empty for store-only deliveries).
    pub probe_partitions: Vec<usize>,
    /// Owned partition to insert into, if any.
    pub store_partition: Option<usize>,
    /// `true` when the route broadcast to every partition of the store
    /// (this worker then holds only its slice of one logical probe).
    pub broadcast: bool,
    /// Logical sequence position: probes only match state with a strictly
    /// smaller guard; inserts become visible to guards above this one. For
    /// normal deliveries this is the root's sequence number; results
    /// retro-produced by a late insert inherit the original prober's guard.
    pub guard: u64,
    /// Completion handle of the root whose processing produced this
    /// delivery (accounting only — may differ from `guard` for
    /// retro-produced results).
    pub root: Arc<RootHandle>,
    /// Wall-clock ingest instant of the root (for latency metrics).
    pub started: Instant,
}

/// Messages from the coordinator (and, for `Batch`, from peer workers).
#[derive(Debug)]
pub(crate) enum WorkerMsg {
    /// Deliveries to process in order.
    Batch(Vec<Delivery>),
    /// Collection barrier: reply with an [`WorkerAck`] carrying all deltas
    /// accumulated since the previous barrier; optionally run a counted
    /// expiry first.
    Collect {
        /// Barrier token echoed in the ack.
        token: u64,
        /// When set, expire out-of-window tuples up to this stream time.
        expire_upto: Option<Timestamp>,
    },
    /// Installs a new plan (carry-over by descriptor key), then acks.
    Install {
        /// Barrier token echoed in the ack.
        token: u64,
        /// The new plan.
        plan: Arc<TopologyPlan>,
        /// Store windows and indexed attributes for the new plan.
        layout: Arc<StoreLayout>,
        /// Forward-fed stores of the new plan (symmetric probing).
        symmetric: Arc<FxHashSet<StoreId>>,
    },
    /// Fire-and-forget expiry (the engine's periodic cadence).
    Expire {
        /// Expire up to this stream time.
        upto: Timestamp,
    },
    /// Toggles retention of emitted result tuples for the coordinator.
    ForwardResults(bool),
    /// Installs a result subscription: every result emitted from here on
    /// streams to the subscriber as it is produced, between barriers.
    Subscribe(Sender<(QueryId, Tuple)>),
    /// Replaces the symmetric store set (multi-producer widening) without
    /// reinstalling the plan or touching shard state.
    SetSymmetric(Arc<FxHashSet<StoreId>>),
    /// Terminates the worker loop.
    Shutdown,
}

/// Barrier reply with the worker's accumulated deltas.
#[derive(Debug)]
pub(crate) struct WorkerAck {
    /// Index of the acking worker.
    pub worker: usize,
    /// Token of the barrier being acknowledged.
    pub token: u64,
    /// Metrics delta since the last barrier.
    pub metrics: EngineMetrics,
    /// Statistics delta since the last barrier.
    pub stats: StatsCollector,
    /// Results emitted since the last barrier (when forwarding is on).
    pub results: Vec<(QueryId, Tuple)>,
    /// Total tuples currently held by this shard.
    pub store_tuples: usize,
    /// Total bytes currently held by this shard.
    pub store_bytes: usize,
    /// Per-store breakdown of what this shard holds (telemetry surface).
    pub per_store: Vec<StoreDetail>,
    /// Tuples removed by the counted expiry of this barrier.
    pub expired: usize,
    /// Trace events accumulated since the last barrier.
    pub trace: Vec<TraceEvent>,
    /// This worker thread's arena counters (cumulative; thread-local, so
    /// they can only be read here, on the worker thread itself).
    pub arena: ArenaStats,
}

/// Collects the deliveries generated while processing one message and
/// ships them per target worker in one go.
pub(crate) struct Outbox {
    direct: Vec<Vec<Delivery>>,
    gauges: Arc<DepthGauges>,
}

impl Outbox {
    /// An empty outbox for `workers` targets.
    pub fn new(workers: usize, gauges: Arc<DepthGauges>) -> Self {
        Outbox {
            direct: (0..workers).map(|_| Vec::new()).collect(),
            gauges,
        }
    }

    /// Routes one forwarded tuple, accounting the send in `metrics`
    /// exactly as the sequential engine would (copies per partition,
    /// broadcast counter).
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &mut self,
        plan: &TopologyPlan,
        workers: usize,
        target: SendTarget,
        tuple: Tuple,
        guard: u64,
        root: &Arc<RootHandle>,
        started: Instant,
        metrics: &mut EngineMetrics,
    ) {
        let Some((spec, deliveries)) = fan_out(plan, workers, target, tuple, guard, root, started)
        else {
            return;
        };
        metrics.tuples_sent += spec.copies();
        if spec.broadcast {
            metrics.broadcasts += 1;
        }
        for (worker, delivery) in deliveries {
            self.direct[worker].push(delivery);
        }
    }

    /// Ships everything to the target workers.
    pub fn flush(self, senders: &[Sender<WorkerMsg>]) {
        for (worker, batch) in self.direct.into_iter().enumerate() {
            if !batch.is_empty() {
                self.gauges.enqueued(worker, batch.len() as u64);
                // A send only fails after shutdown; deliveries are then moot.
                let _ = senders[worker].send(WorkerMsg::Batch(batch));
            }
        }
    }
}

/// Everything a worker thread needs besides its receiver.
pub(crate) struct WorkerCtx {
    /// This worker's index.
    pub index: usize,
    /// Total number of workers.
    pub workers: usize,
    /// Senders to every worker (including self) for forwards.
    pub senders: Vec<Sender<WorkerMsg>>,
    /// Barrier ack channel.
    pub ack_tx: Sender<WorkerAck>,
    /// Global completion progress (prober GC horizon).
    pub progress: Arc<Progress>,
    /// Forward-fed stores of the current plan (symmetric probing).
    pub symmetric: Arc<FxHashSet<StoreId>>,
    /// Epoch configuration.
    pub epoch: EpochConfig,
    /// Epoch lag before cold epochs freeze into columnar segments
    /// (`EngineConfig::freeze_after_epochs`).
    pub freeze_after: u64,
    /// Initial plan.
    pub plan: Arc<TopologyPlan>,
    /// Initial store layout.
    pub layout: Arc<StoreLayout>,
    /// Initial result-forwarding flag.
    pub forward_results: bool,
    /// Capacity of this worker's trace-event ring (0 disables tracing).
    pub trace_capacity: usize,
    /// Shared channel-depth gauges (drain side).
    pub depth: Arc<DepthGauges>,
}

/// The worker thread body.
pub(crate) fn run_worker(ctx: WorkerCtx, rx: Receiver<WorkerMsg>) {
    let WorkerCtx {
        index,
        workers,
        senders,
        ack_tx,
        progress,
        symmetric,
        epoch,
        freeze_after,
        plan,
        layout,
        forward_results,
        trace_capacity,
        depth,
    } = ctx;
    // Trace lane 0 is the coordinator; workers take lanes 1..=workers.
    let trace = TraceRing::new(trace_capacity, index as u32 + 1);
    let mut shard = ShardState::new(
        workers,
        plan,
        &layout,
        symmetric,
        epoch,
        freeze_after,
        forward_results,
        trace,
    );
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Batch(deliveries) => {
                let started = Instant::now();
                let mut out = Outbox::new(workers, depth.clone());
                for delivery in &deliveries {
                    shard.process(delivery, &mut out);
                    delivery.root.finish_one();
                }
                out.flush(&senders);
                depth.processed(index, deliveries.len() as u64);
                shard.gc_probers(progress.watermark());
                shard.metrics.busy += started.elapsed();
            }
            WorkerMsg::Collect { token, expire_upto } => {
                let expired = expire_upto.map(|upto| shard.expire(upto)).unwrap_or(0);
                shard.gc_probers(progress.watermark());
                shard
                    .trace
                    .record(TraceEventKind::Barrier, token, expired as u64);
                if ack_tx
                    .send(drain_ack(&mut shard, index, token, expired))
                    .is_err()
                {
                    break;
                }
            }
            WorkerMsg::Install {
                token,
                plan,
                layout,
                symmetric,
            } => {
                shard.install(plan, &layout, symmetric);
                shard.trace.record(TraceEventKind::Barrier, token, 0);
                if ack_tx.send(drain_ack(&mut shard, index, token, 0)).is_err() {
                    break;
                }
            }
            WorkerMsg::Expire { upto } => {
                shard.expire(upto);
            }
            WorkerMsg::ForwardResults(on) => {
                shard.forward_results = on;
            }
            WorkerMsg::Subscribe(tx) => {
                shard.subscription = Some(tx);
            }
            WorkerMsg::SetSymmetric(symmetric) => {
                shard.set_symmetric(symmetric);
            }
            WorkerMsg::Shutdown => break,
        }
    }
}

/// Drains every accumulated delta of the shard into a barrier ack. Both
/// ack-producing arms (`Collect`, `Install`) go through this single point
/// so no delta can be taken in one path and forgotten in the other.
fn drain_ack(shard: &mut ShardState, worker: usize, token: u64, expired: usize) -> WorkerAck {
    let (store_tuples, store_bytes) = shard.store_totals();
    WorkerAck {
        worker,
        token,
        metrics: std::mem::take(&mut shard.metrics),
        stats: shard.stats.take_delta(),
        results: std::mem::take(&mut shard.results),
        store_tuples,
        store_bytes,
        per_store: shard.store_detail(),
        expired,
        trace: shard.trace.drain(),
        // Thread-local: meaningful only when sampled on the worker thread.
        arena: arena_stats(),
    }
}
