//! Partition routing and ordering bookkeeping for the sharded runtime.
//!
//! Routing itself reuses the exact decisions of the sequential engine: a
//! delivery either hashes its routing-key attribute to one partition
//! ([`partition_hash`]) or broadcasts to every partition of the target
//! store (the χ factor of Equation 1). Partitions are mapped onto worker
//! threads round-robin (`partition % workers`), so with `workers` equal to
//! a store's catalog parallelism every store partition gets its own
//! dedicated thread.
//!
//! The module also owns the two pieces of machinery that make sharded
//! execution *bit-identical* to sequential execution:
//!
//! 1. **Root handles** ([`RootHandle`]) count the outstanding deliveries
//!    of each ingested input tuple (its "root"). When the count reaches
//!    zero the root is complete and the global completion
//!    [`Progress`] watermark advances: all roots up to the watermark have
//!    fully drained everywhere.
//! 2. **Symmetric stores** ([`symmetric_stores`]): stores fed by
//!    `Forward` actions (materialized intermediate results) get their
//!    inserts from racing worker threads, so a probe may arrive before an
//!    insert it should observe. Probes at those stores register as
//!    pending probers in the shard and late inserts retro-match them —
//!    see `shard` — so nothing ever waits and every (probe, insert) pair
//!    is matched exactly once. Everything else pipelines freely, because
//!    channel FIFO order plus the router's arrival-order fan-out already
//!    serialize every (store, partition) consistently with sequential
//!    execution.
//!
//! The watermark doubles as the garbage-collection horizon for pending
//! probers and as the drain condition for barriers.

use crate::parallel::worker::Delivery;
use crate::store::partition_hash;
use clash_common::{StoreId, Tuple};
use clash_optimizer::{OutputAction, Rule, SendTarget, TopologyPlan};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How a delivery maps onto the partitions of its target store.
#[derive(Debug, Clone)]
pub(crate) struct RouteSpec {
    /// Partitions a probe rule must inspect (one when hashed, all when
    /// broadcast).
    pub probe_partitions: Vec<usize>,
    /// Partition a store rule inserts into.
    pub store_partition: usize,
    /// `true` when the delivery is a broadcast across > 1 partitions.
    pub broadcast: bool,
}

impl RouteSpec {
    /// Number of partition copies this delivery sends (the probe-cost
    /// `tuples_sent` unit of the sequential engine).
    pub fn copies(&self) -> u64 {
        self.probe_partitions.len() as u64
    }
}

/// Resolves the partitions of `target` that `tuple` must reach, mirroring
/// the sequential engine: hash the routing key when the tuple carries it,
/// otherwise broadcast (and store into the partition-attribute partition).
pub(crate) fn resolve(
    plan: &TopologyPlan,
    target: &SendTarget,
    tuple: &Tuple,
) -> Option<RouteSpec> {
    let def = plan.store(target.store)?;
    let parallelism = def.descriptor.parallelism.max(1);
    match target.routing_key.and_then(|a| tuple.get(&a)) {
        Some(value) => {
            let p = partition_hash(value, parallelism);
            Some(RouteSpec {
                probe_partitions: vec![p],
                store_partition: p,
                broadcast: false,
            })
        }
        None => {
            let store_partition = def
                .descriptor
                .partition
                .and_then(|a| tuple.get(&a))
                .map(|v| partition_hash(v, parallelism))
                .unwrap_or(0);
            Some(RouteSpec {
                probe_partitions: (0..parallelism).collect(),
                store_partition,
                broadcast: parallelism > 1,
            })
        }
    }
}

/// The worker thread owning a partition: round-robin assignment.
pub(crate) fn owner_of(partition: usize, workers: usize) -> usize {
    partition % workers
}

/// Splits the route of `target` into per-worker deliveries, registering
/// each with the root's completion counter. Returns `None` when the plan
/// has no rules for the target (the sequential engine ignores such sends
/// without accounting them). Probe partitions go to their owners; the
/// store partition goes to its owner only when the rule set actually
/// stores. `guard` is the logical sequence position the delivery acts at
/// (the originating root for normal sends, the original prober's position
/// for retro-produced results).
pub(crate) fn fan_out(
    plan: &TopologyPlan,
    workers: usize,
    target: SendTarget,
    tuple: Tuple,
    guard: u64,
    root: &Arc<RootHandle>,
    started: Instant,
) -> Option<(RouteSpec, Vec<(usize, Delivery)>)> {
    let rules = plan.rules.get(&(target.store, target.edge))?;
    let has_store = rules.iter().any(|r| matches!(r, Rule::Store));
    let has_probe = rules.iter().any(|r| matches!(r, Rule::Probe { .. }));
    if !has_store && !has_probe {
        return None;
    }
    let spec = resolve(plan, &target, &tuple)?;
    let mut per_worker: Vec<Option<Delivery>> = (0..workers).map(|_| None).collect();
    if has_probe {
        for &p in &spec.probe_partitions {
            per_worker[owner_of(p, workers)]
                .get_or_insert_with(|| Delivery {
                    target,
                    tuple: tuple.clone(),
                    probe_partitions: Vec::new(),
                    store_partition: None,
                    broadcast: spec.broadcast,
                    guard,
                    root: root.clone(),
                    started,
                })
                .probe_partitions
                .push(p);
        }
    }
    if has_store {
        per_worker[owner_of(spec.store_partition, workers)]
            .get_or_insert_with(|| Delivery {
                target,
                tuple: tuple.clone(),
                probe_partitions: Vec::new(),
                store_partition: None,
                broadcast: spec.broadcast,
                guard,
                root: root.clone(),
                started,
            })
            .store_partition = Some(spec.store_partition);
    }
    let deliveries: Vec<(usize, Delivery)> = per_worker
        .into_iter()
        .enumerate()
        .filter_map(|(worker, d)| d.map(|d| (worker, d)))
        .collect();
    for _ in &deliveries {
        root.register();
    }
    Some((spec, deliveries))
}

/// Number of workers holding at least one partition of a store with the
/// given parallelism (used to extrapolate shard-local store sizes for the
/// statistics collector).
pub(crate) fn workers_of_store(parallelism: usize, workers: usize) -> usize {
    parallelism.max(1).min(workers)
}

/// Stores that receive `Store` deliveries through `Forward` actions, i.e.
/// materialized intermediate-result stores maintained by sub-query probe
/// orders. Base stores are only fed by the router itself, whose FIFO order
/// already guarantees insert-before-probe visibility; forward-fed stores
/// get their inserts from racing worker threads, so probes at them
/// register as *pending probers* and late inserts retro-match them (the
/// symmetric completion mechanism of the shard).
pub(crate) fn symmetric_stores(plan: &TopologyPlan) -> HashSet<StoreId> {
    let mut forward_fed: HashSet<StoreId> = HashSet::new();
    for rules in plan.rules.values() {
        for rule in rules {
            let Rule::Probe { outputs, .. } = rule else {
                continue;
            };
            for action in outputs {
                let OutputAction::Forward(next) = action else {
                    continue;
                };
                let stores = plan
                    .rules
                    .get(&(next.store, next.edge))
                    .map(|rs| rs.iter().any(|r| matches!(r, Rule::Store)))
                    .unwrap_or(false);
                if stores {
                    forward_fed.insert(next.store);
                }
            }
        }
    }
    forward_fed
}

/// Global completion progress: the watermark `w` means every root with
/// sequence number `<= w` has been fully processed on every worker.
#[derive(Debug, Default)]
pub(crate) struct Progress {
    watermark: AtomicU64,
    /// Completed root seqs above the watermark, awaiting contiguity.
    completed: Mutex<HashSet<u64>>,
    condvar: Condvar,
}

impl Progress {
    /// Current watermark (roots `<= w` fully drained).
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Marks one root complete and advances the watermark over any now
    /// contiguous prefix.
    pub fn complete(&self, seq: u64) {
        let mut done = self.completed.lock().expect("progress lock");
        done.insert(seq);
        let mut w = self.watermark.load(Ordering::Acquire);
        while done.remove(&(w + 1)) {
            w += 1;
        }
        self.watermark.store(w, Ordering::Release);
        self.condvar.notify_all();
    }

    /// Blocks until the watermark changes or `timeout` elapses; returns the
    /// watermark afterwards.
    pub fn wait_for_change(&self, timeout: std::time::Duration) -> u64 {
        let before = self.watermark();
        let guard = self.completed.lock().expect("progress lock");
        if self.watermark() != before {
            return self.watermark();
        }
        let _unused = self
            .condvar
            .wait_timeout(guard, timeout)
            .expect("progress wait");
        self.watermark()
    }
}

/// Tracks the outstanding deliveries spawned (directly or transitively) by
/// one ingested input tuple. The creator holds a +1 bias released once all
/// initial deliveries are registered, so the root cannot complete early.
#[derive(Debug)]
pub(crate) struct RootHandle {
    /// The root's global arrival sequence number (starts at 1).
    pub seq: u64,
    remaining: AtomicU32,
    progress: Arc<Progress>,
}

impl RootHandle {
    /// New handle with the creator bias held.
    pub fn new(seq: u64, progress: Arc<Progress>) -> Arc<Self> {
        Arc::new(RootHandle {
            seq,
            remaining: AtomicU32::new(1),
            progress,
        })
    }

    /// Registers one more outstanding delivery.
    pub fn register(&self) {
        self.remaining.fetch_add(1, Ordering::AcqRel);
    }

    /// Marks one delivery processed; completes the root when the count
    /// reaches zero.
    pub fn finish_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.progress.complete(self.seq);
        }
    }

    /// Releases the creator bias (all initial deliveries registered).
    pub fn release_bias(&self) {
        self.finish_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_advances_only_over_contiguous_roots() {
        let progress = Arc::new(Progress::default());
        assert_eq!(progress.watermark(), 0);
        progress.complete(2);
        assert_eq!(progress.watermark(), 0, "gap at 1 blocks");
        progress.complete(1);
        assert_eq!(progress.watermark(), 2, "contiguous prefix collapses");
        progress.complete(3);
        assert_eq!(progress.watermark(), 3);
    }

    #[test]
    fn root_completes_when_bias_and_deliveries_finish() {
        let progress = Arc::new(Progress::default());
        let root = RootHandle::new(1, progress.clone());
        root.register();
        root.register();
        root.release_bias();
        assert_eq!(progress.watermark(), 0);
        root.finish_one();
        assert_eq!(progress.watermark(), 0);
        root.finish_one();
        assert_eq!(progress.watermark(), 1);
    }

    #[test]
    fn zero_delivery_root_completes_on_bias_release() {
        let progress = Arc::new(Progress::default());
        let root = RootHandle::new(1, progress.clone());
        root.release_bias();
        assert_eq!(progress.watermark(), 1);
    }

    #[test]
    fn owner_mapping_is_round_robin() {
        assert_eq!(owner_of(0, 4), 0);
        assert_eq!(owner_of(5, 4), 1);
        assert_eq!(owner_of(3, 1), 0);
        assert_eq!(workers_of_store(8, 4), 4);
        assert_eq!(workers_of_store(2, 4), 2);
        assert_eq!(workers_of_store(0, 4), 1);
    }
}
