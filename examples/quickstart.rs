//! Quickstart: register three streamed relations and one multi-way join
//! query, deploy it with global multi-query optimization, stream a few
//! tuples and print the join results.
//!
//! Run with: `cargo run --example quickstart`

use clash_common::Window;
use clash_core::{ClashSystem, Strategy, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the streamed relations (name, attributes, window,
    //    store parallelism).
    let mut clash = ClashSystem::new(SystemConfig {
        collect_results: true,
        ..SystemConfig::default()
    });
    clash.register_relation("R", ["a"], Window::secs(60), 1)?;
    clash.register_relation("S", ["a", "b"], Window::secs(60), 1)?;
    clash.register_relation("T", ["b"], Window::secs(60), 1)?;

    // 2. Optional: prior data characteristics for the cost model.
    clash.set_rate("R", 100.0)?;
    clash.set_rate("S", 100.0)?;
    clash.set_rate("T", 100.0)?;
    clash.set_selectivity(("R", "a"), ("S", "a"), 0.01)?;
    clash.set_selectivity(("S", "b"), ("T", "b"), 0.01)?;

    // 3. Register a continuous query in the paper's notation and deploy.
    clash.register_query("q1", "R(a), S(a,b), T(b)")?;
    let report = clash.deploy(Strategy::GlobalIlp)?;
    println!(
        "deployed {} stores, estimated probe cost {:.1} tuples/s",
        report.plan.num_stores(),
        report.shared_cost
    );

    // 4. Stream tuples; results are produced incrementally.
    let r = clash.tuple("R", 10, &[("a", 1.into())])?;
    let s = clash.tuple("S", 20, &[("a", 1.into()), ("b", 7.into())])?;
    let t = clash.tuple("T", 30, &[("b", 7.into())])?;
    clash.ingest("R", r)?;
    clash.ingest("S", s)?;
    let produced = clash.ingest("T", t)?;
    println!("the T tuple completed {produced} join result(s):");
    for (query, result) in clash.results() {
        println!("  {query}: {result}");
    }

    let snapshot = clash.snapshot()?;
    println!(
        "ingested {} tuples, sent {} tuple copies, {} bytes of store state",
        snapshot.tuples_ingested, snapshot.tuples_sent, snapshot.store_bytes
    );
    Ok(())
}
