//! Stream time: timestamps, durations, windows and epochs.
//!
//! Tuples carry an application timestamp `τ`. A per-relation [`Window`]
//! defines the maximal time difference between two tuples for them to be
//! considered joinable (Section I-A). The adaptive processing scheme of
//! Section VI divides time into non-overlapping [`Epoch`]s; every store,
//! rule set and statistics sample is keyed by the epoch it belongs to.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Logical stream time in milliseconds. Monotonically increasing per stream
/// source but not necessarily aligned across sources.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// A span of stream time in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Timestamp {
    /// Time zero.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Creates a timestamp from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Timestamp(s * 1000)
    }

    /// Milliseconds since time zero.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// Creates a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1000)
    }

    /// Length in milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in (floating point) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A sliding time window attached to a streamed relation.
///
/// A stored tuple `s` is a join candidate for a probing tuple `r` iff
/// `r.τ - s.τ <= window.length` (and `s.τ <= r.τ`, i.e. the stored tuple
/// arrived earlier — the "1/j" factor of Equation 1 stems from this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Window {
    /// Maximal age of a joinable tuple.
    pub length: Duration,
}

impl Window {
    /// Creates a window of the given length.
    pub fn new(length: Duration) -> Self {
        Window { length }
    }

    /// A window covering the full history (practically unbounded).
    pub fn unbounded() -> Self {
        Window {
            length: Duration(u64::MAX / 4),
        }
    }

    /// Window of `s` seconds.
    pub fn secs(s: u64) -> Self {
        Window::new(Duration::from_secs(s))
    }

    /// Returns `true` if a stored tuple with timestamp `stored` is still
    /// joinable with a probing tuple of timestamp `probe`.
    #[inline]
    pub fn contains(&self, probe: Timestamp, stored: Timestamp) -> bool {
        if stored > probe {
            // Later-arriving tuples are handled by the probe in the other
            // direction (symmetric processing), not by this window check.
            return false;
        }
        probe.since(stored) <= self.length
    }

    /// Earliest timestamp that is still joinable with a probe at `probe`.
    #[inline]
    pub fn horizon(&self, probe: Timestamp) -> Timestamp {
        probe - self.length
    }
}

impl Default for Window {
    fn default() -> Self {
        Window::unbounded()
    }
}

/// An epoch identifier. Epochs are consecutive, non-overlapping slices of
/// stream time (Section VI-A).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The first epoch.
    pub const ZERO: Epoch = Epoch(0);

    /// The epoch after this one.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// The epoch before this one (saturating at zero).
    pub fn prev(self) -> Epoch {
        Epoch(self.0.saturating_sub(1))
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

/// Maps stream time to epochs.
///
/// The epoch duration is a system-wide configuration knob; the paper uses
/// one second in the adaptivity experiments (Section VII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochConfig {
    /// Length of every epoch.
    pub length: Duration,
}

impl EpochConfig {
    /// Creates a configuration with the given epoch length.
    /// Panics if the length is zero.
    pub fn new(length: Duration) -> Self {
        assert!(length.as_millis() > 0, "epoch length must be positive");
        EpochConfig { length }
    }

    /// Epoch that contains the given timestamp.
    pub fn epoch_of(&self, ts: Timestamp) -> Epoch {
        Epoch(ts.as_millis() / self.length.as_millis())
    }

    /// First timestamp belonging to the given epoch.
    pub fn start_of(&self, epoch: Epoch) -> Timestamp {
        Timestamp(epoch.0 * self.length.as_millis())
    }

    /// All epochs that can contain join partners for a tuple with timestamp
    /// `ts` under the window `window`, i.e. the epochs overlapping
    /// `[ts - window, ts + window]`. This is `get_epochs_for` of
    /// Algorithm 4.
    pub fn epochs_for(&self, ts: Timestamp, window: Window) -> Vec<Epoch> {
        let lo = self.epoch_of(ts - window.length);
        let hi = self.epoch_of(ts + window.length);
        (lo.0..=hi.0).map(Epoch).collect()
    }
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            length: Duration::from_secs(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(2);
        assert_eq!(t.as_millis(), 2000);
        assert_eq!((t + Duration::from_millis(500)).as_millis(), 2500);
        assert_eq!(
            (t - Duration::from_secs(3)).as_millis(),
            0,
            "subtraction saturates"
        );
        assert_eq!(t.since(Timestamp::from_millis(500)).as_millis(), 1500);
        assert_eq!(Timestamp::from_millis(1).since(t), Duration::ZERO);
    }

    #[test]
    fn window_contains_only_earlier_tuples_within_length() {
        let w = Window::secs(5);
        let probe = Timestamp::from_secs(10);
        assert!(w.contains(probe, Timestamp::from_secs(6)));
        assert!(
            w.contains(probe, Timestamp::from_secs(5)),
            "boundary is inclusive"
        );
        assert!(!w.contains(probe, Timestamp::from_secs(4)));
        assert!(
            !w.contains(probe, Timestamp::from_secs(11)),
            "later tuples excluded"
        );
        assert_eq!(w.horizon(probe), Timestamp::from_secs(5));
    }

    #[test]
    fn unbounded_window_accepts_everything_earlier() {
        let w = Window::unbounded();
        assert!(w.contains(Timestamp::from_secs(1_000_000), Timestamp::ZERO));
    }

    #[test]
    fn epoch_mapping_is_consistent() {
        let cfg = EpochConfig::new(Duration::from_secs(1));
        assert_eq!(cfg.epoch_of(Timestamp::from_millis(0)), Epoch(0));
        assert_eq!(cfg.epoch_of(Timestamp::from_millis(999)), Epoch(0));
        assert_eq!(cfg.epoch_of(Timestamp::from_millis(1000)), Epoch(1));
        assert_eq!(cfg.start_of(Epoch(3)), Timestamp::from_secs(3));
        assert_eq!(cfg.epoch_of(cfg.start_of(Epoch(17))), Epoch(17));
    }

    #[test]
    fn epochs_for_covers_window_on_both_sides() {
        let cfg = EpochConfig::new(Duration::from_secs(1));
        let w = Window::secs(2);
        let epochs = cfg.epochs_for(Timestamp::from_millis(4500), w);
        // [2500, 6500] -> epochs 2..=6
        assert_eq!(
            epochs,
            vec![Epoch(2), Epoch(3), Epoch(4), Epoch(5), Epoch(6)]
        );
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_epoch_length_rejected() {
        let _ = EpochConfig::new(Duration::ZERO);
    }

    #[test]
    fn epoch_next_prev() {
        assert_eq!(Epoch(0).next(), Epoch(1));
        assert_eq!(Epoch(0).prev(), Epoch(0));
        assert_eq!(Epoch(5).prev(), Epoch(4));
    }
}
