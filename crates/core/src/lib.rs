//! # clash-core
//!
//! The CLASH facade: register streamed relations and continuous multi-way
//! join queries, optimize them jointly, deploy the resulting topology and
//! keep adapting it as data characteristics or the query set change.
//!
//! This is the crate a downstream user interacts with; it wires together
//! the catalog, the multi-query optimizer, the execution runtime and the
//! adaptive controller:
//!
//! ```
//! use clash_core::{ClashSystem, SystemConfig};
//! use clash_common::Window;
//! use clash_optimizer::Strategy;
//!
//! let mut clash = ClashSystem::new(SystemConfig::default());
//! clash.register_relation("R", ["a"], Window::secs(60), 1).unwrap();
//! clash.register_relation("S", ["a", "b"], Window::secs(60), 1).unwrap();
//! clash.register_relation("T", ["b"], Window::secs(60), 1).unwrap();
//! clash.register_query("q1", "R(a), S(a,b), T(b)").unwrap();
//! clash.deploy(Strategy::GlobalIlp).unwrap();
//!
//! let r = clash.tuple("R", 10, &[("a", 1.into())]).unwrap();
//! let s = clash.tuple("S", 20, &[("a", 1.into()), ("b", 7.into())]).unwrap();
//! let t = clash.tuple("T", 30, &[("b", 7.into())]).unwrap();
//! clash.ingest("R", r).unwrap();
//! clash.ingest("S", s).unwrap();
//! assert_eq!(clash.ingest("T", t).unwrap(), 1); // the R⋈S⋈T result
//! ```

pub mod system;

pub use system::{ClashSystem, RuntimeMode, SystemConfig};

pub use clash_catalog::{Catalog, Statistics};
pub use clash_common as common;
pub use clash_optimizer::{OptimizationReport, Strategy, TopologyPlan};
pub use clash_query::JoinQuery;
pub use clash_runtime::{LocalEngine, MetricsSnapshot, ParallelEngine, SourceHandle};
