//! Async multi-source ingestion demo: N producer threads push three
//! streamed relations through their own `SourceHandle`s concurrently
//! while a subscriber thread consumes join results *as they are produced*
//! — between barriers, not at epoch ends. Verifies that every source
//! count produces the identical result count as the sequential
//! `LocalEngine` baseline, and reports how many results had already
//! streamed to the subscriber before the final barrier ran.
//!
//! Run with: `cargo run --release --example multi_source`

use clash_common::{Duration, EpochConfig, RelationId, Tuple, Window};
use clash_core::{ClashSystem, RuntimeMode, Strategy, SystemConfig};
use clash_runtime::EngineConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Total joining rounds in the workload (split across sources).
const TOTAL_ROUNDS: u64 = 4_000;

fn build_system(runtime: RuntimeMode) -> Result<ClashSystem, Box<dyn std::error::Error>> {
    let mut clash = ClashSystem::new(SystemConfig {
        runtime,
        // One epoch covering the whole stream: keeps the adaptive
        // controller (which only observes coordinator-thread ingests)
        // out of the picture so every run executes the identical plan.
        engine: EngineConfig {
            epoch: EpochConfig::new(Duration::from_secs(1 << 20)),
            ..EngineConfig::default()
        },
        ..SystemConfig::default()
    });
    clash.register_relation("orders", ["orderkey", "custkey"], Window::secs(3600), 4)?;
    clash.register_relation(
        "lineitem",
        ["orderkey", "partkey", "qty"],
        Window::secs(3600),
        4,
    )?;
    clash.register_relation("part", ["partkey", "size"], Window::secs(3600), 4)?;
    clash.set_rate("orders", 1000.0)?;
    clash.set_rate("lineitem", 1000.0)?;
    clash.set_rate("part", 1000.0)?;
    clash.register_query(
        "q1",
        "orders(orderkey), lineitem(orderkey,partkey), part(partkey)",
    )?;
    clash.register_query("q2", "orders(orderkey), lineitem(orderkey)")?;
    clash.deploy(Strategy::GlobalIlp)?;
    Ok(clash)
}

/// Pre-builds one source's slice of the stream (tuples are built on the
/// main thread; producers only push). The key domains (500 and 200) are
/// divisible by every source count in the sweep, so source `s` only emits
/// keys congruent to `s` — sources never share join keys, which makes the
/// result multiset identical under any producer interleaving and equal to
/// the sequential baseline (see `clash_runtime::ingest` on arrival-order
/// semantics).
fn build_slice(
    clash: &ClashSystem,
    source: u64,
    sources: u64,
) -> Result<Vec<(RelationId, Tuple)>, Box<dyn std::error::Error>> {
    let orders = clash.catalog().relation_id("orders").unwrap();
    let lineitem = clash.catalog().relation_id("lineitem").unwrap();
    let part = clash.catalog().relation_id("part").unwrap();
    let mut slice = Vec::new();
    for j in 0..TOTAL_ROUNDS / sources {
        // Global round index: sources interleave the same key sequence.
        let i = j * sources + source;
        let ts = i * 2;
        let orderkey = (i % 500) as i64;
        let partkey = (i % 200) as i64;
        slice.push((
            orders,
            clash.tuple(
                "orders",
                ts,
                &[
                    ("orderkey", orderkey.into()),
                    ("custkey", ((i % 97) as i64).into()),
                ],
            )?,
        ));
        slice.push((
            lineitem,
            clash.tuple(
                "lineitem",
                ts + 1,
                &[
                    ("orderkey", orderkey.into()),
                    ("partkey", partkey.into()),
                    ("qty", ((i % 13) as i64).into()),
                ],
            )?,
        ));
        slice.push((
            part,
            clash.tuple(
                "part",
                ts + 1,
                &[
                    ("partkey", partkey.into()),
                    ("size", ((i % 7) as i64).into()),
                ],
            )?,
        ));
    }
    Ok(slice)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "3 streams x {} tuples total, 2 shared queries, GlobalIlp plan\n",
        TOTAL_ROUNDS * 3
    );

    // Sequential baseline: the expected result count.
    let mut local = build_system(RuntimeMode::Local)?;
    for (relation, tuple) in build_slice(&local, 0, 1)? {
        local.ingest_by_id(relation, tuple)?;
    }
    let local_results = local.snapshot()?.total_results();
    println!("LocalEngine baseline: {local_results} results\n");

    println!(
        "{:<10} {:>16} {:>10} {:>22}",
        "sources", "wall_tps[t/s]", "results", "streamed_pre_barrier"
    );
    for sources in [1u64, 2, 4] {
        let mut clash = build_system(RuntimeMode::Parallel(4))?;

        // Subscriber: counts results the moment workers emit them.
        let rx = clash.subscribe()?;
        let streamed = Arc::new(AtomicU64::new(0));
        let streamed_counter = streamed.clone();
        let subscriber = std::thread::spawn(move || {
            while rx.recv().is_ok() {
                streamed_counter.fetch_add(1, Ordering::Relaxed);
            }
        });

        // Producers: one SourceHandle each, pushing concurrently.
        let slices: Vec<_> = (0..sources)
            .map(|s| build_slice(&clash, s, sources))
            .collect::<Result<_, _>>()?;
        let started = Instant::now();
        let producers: Vec<_> = slices
            .into_iter()
            .map(|slice| {
                let mut handle = clash.open_source()?;
                Ok(std::thread::spawn(move || {
                    for (relation, tuple) in slice {
                        handle.push(relation, tuple).expect("push");
                    }
                }))
            })
            .collect::<Result<_, Box<dyn std::error::Error>>>()?;
        for producer in producers {
            producer.join().expect("producer thread");
        }
        // Results that streamed out before any barrier ran: with the
        // time-triggered micro-batch flush nothing waits for an epoch end.
        let pre_barrier = streamed.load(Ordering::Relaxed);
        let snap = clash.snapshot()?; // the barrier: aggregates counters
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(
            snap.total_results(),
            local_results,
            "multi-source run must match the sequential result count"
        );
        drop(clash); // shuts the engine down; the subscription disconnects
        subscriber.join().expect("subscriber thread");
        assert_eq!(
            streamed.load(Ordering::Relaxed),
            local_results,
            "every result must reach the subscriber exactly once"
        );
        println!(
            "{:<10} {:>16.0} {:>10} {:>17} ({:>3.0}%)",
            sources,
            (TOTAL_ROUNDS * 3) as f64 / elapsed,
            snap.total_results(),
            pre_barrier,
            100.0 * pre_barrier as f64 / local_results.max(1) as f64,
        );
    }
    println!(
        "
(Results stream to the subscriber as workers emit them; the
 streamed_pre_barrier column shows how much of the output had
 already left the engine before the first explicit barrier.)"
    );
    Ok(())
}
