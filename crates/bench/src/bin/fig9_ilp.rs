//! Regenerates Fig. 9a–9f: probe cost savings of multi-query optimization,
//! ILP problem sizes and optimization runtimes.
//!
//! Usage: `cargo run --release -p clash-bench --bin fig9_ilp [max_nq]`

use clash_bench::fig9::{run_probe_cost_sweep, run_query_size_sweep};
use clash_bench::print_rows;

fn main() {
    let max_nq: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let nq_values: Vec<usize> = (20..=max_nq).step_by(20).collect();

    for num_relations in [10usize, 100] {
        let rows = run_probe_cost_sweep(num_relations, &nq_values, 1);
        let fig = if num_relations == 10 {
            "9a/9b"
        } else {
            "9c/9d/9e"
        };
        print_rows(
            &format!("Fig. {fig} — {num_relations} input relations"),
            &rows,
        );
        println!(
            "{:>6} {:>18} {:>14} {:>10} {:>12} {:>12}",
            "nQ", "individual", "MQO", "vars", "probe ords", "runtime[ms]"
        );
        for r in &rows {
            println!(
                "{:>6} {:>18.1} {:>14.1} {:>10} {:>12} {:>12.1}",
                r.num_queries,
                r.individual_cost,
                r.mqo_cost,
                r.variables,
                r.probe_orders,
                r.runtime_ms
            );
        }
        println!();
    }

    // Fig. 9f: query sizes 3..5 for nQ in {10, 20, 30}.
    let rows = run_query_size_sweep(&[3, 4, 5], &[10, 20, 30], 2);
    print_rows("Fig. 9f — runtime vs. query size (100 relations)", &rows);
    println!("{:>6} {:>6} {:>12}", "size", "nQ", "runtime[ms]");
    for r in &rows {
        println!(
            "{:>6} {:>6} {:>12.1}",
            r.query_size, r.num_queries, r.runtime_ms
        );
    }
}
