//! # clash-cost
//!
//! The probe-cost model of the paper (Section IV, Equation 1).
//!
//! The subject of minimization is the **probe cost**: the number of tuples
//! sent between stores while incrementally computing join results along a
//! probe order. For a probe order `σ = ⟨S_start, M_1, ..., M_m⟩` the cost
//! of the `j`-th step (sending the partial result built so far to the
//! `M_j`-store) is
//!
//! ```text
//! StepCost(ρ_j) = |⋈ head_j| · (1 / |head_j|) · χ(M_j)
//! ```
//!
//! where `head_j` is the set of base relations covered *before* the step,
//! `|⋈ head_j|` the estimated size of their join, the `1/|head_j|` factor
//! accounts for the arriving tuple having to be the latest among the head
//! relations, and `χ(M_j)` is the **broadcast factor**: 1 when the probing
//! tuple can compute the partitioning key of the target store, otherwise
//! the parallelism of that store (the tuple must be broadcast to every
//! partition).
//!
//! `PCost(σ)` is the sum of its step costs; the probe cost of a query is
//! the sum over the probe orders of all its starting relations.
//!
//! Cardinalities are estimated from the [`clash_catalog::Statistics`]
//! snapshot: the size of a connected relation set is the product of the
//! per-relation window cardinalities times the selectivities of all
//! predicates inside the set — exactly the calibration used by the paper's
//! ILP experiments (rates `r`, pair-wise selectivity `1/r`).

pub mod estimate;
pub mod probe_cost;

pub use estimate::{CardinalityEstimator, CostConfig};
pub use probe_cost::{
    broadcast_factor, probe_cost, query_probe_cost, step_cost, PartitionedStep, StepCostBreakdown,
};
