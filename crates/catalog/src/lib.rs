//! # clash-catalog
//!
//! The catalog of streamed input relations and the data-characteristic
//! statistics that drive the optimizer.
//!
//! The paper's architecture (Fig. 2) contains a *statistics controller*
//! that samples input data per epoch and feeds rates and selectivities into
//! the ILP optimizer. This crate provides the passive side of that design:
//!
//! * [`Catalog`] — registry of streamed relations, their schemas, windows
//!   and store parallelism (number of partitions per store),
//! * [`Statistics`] — arrival rates and pair-wise equi-join selectivities,
//!   the inputs of the probe-cost model (Equation 1),
//! * [`SharedStatistics`] — a thread-safe, epoch-versioned handle used by
//!   the runtime's statistics collector and the adaptive controller.

pub mod catalog;
pub mod relation;
pub mod stats;

pub use catalog::Catalog;
pub use relation::RelationMeta;
pub use stats::{SharedStatistics, Statistics};
