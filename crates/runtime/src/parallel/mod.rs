//! Sharded parallel runtime: executes [`clash_optimizer::TopologyPlan`]s
//! across real worker threads.
//!
//! The paper deploys its topologies on an Apache Storm cluster where every
//! store partition is a parallel task. The sequential
//! [`crate::LocalEngine`] collapses that into one thread; this module
//! restores genuine parallelism while keeping the results **bit-identical**
//! to sequential execution on the same input:
//!
//! * [`coordinator::ParallelEngine`] — the public engine. Consumes the
//!   same `TopologyPlan`, spawns one worker thread per shard (store
//!   partitions map onto workers round-robin, honoring the catalog's
//!   `parallelism` field), and aggregates per-worker metrics and
//!   statistics at epoch barriers so the adaptive controller keeps
//!   working unchanged.
//! * [`router`] — partition routing (the same `partition_hash` as the
//!   stores) plus the ordering machinery: per-root completion counters, a
//!   global completion watermark, and the static analysis of which rule
//!   keys need deferral.
//! * [`worker`] — the thread loop and message protocol (deliveries,
//!   collection barriers, plan installs, expiry).
//! * [`shard`] — per-worker store partitions and rule execution
//!   (Algorithm 3/4 scoped to owned partitions, with epoch-scoped state).
//!
//! # Why the results are exactly those of `LocalEngine`
//!
//! Sequential execution processes each input tuple (a *root*) to
//! completion before the next; a probe therefore sees exactly the tuples
//! stored by earlier roots (further filtered by timestamp and window).
//! Sharded execution reproduces this through three mechanisms:
//!
//! 1. **Per-partition FIFO.** The coordinator fans out roots in arrival
//!    order and every (store, partition) is owned by exactly one worker,
//!    so direct deliveries to a partition arrive in arrival order.
//!    Forwarded deliveries inherit the order transitively: an mpsc send
//!    that happens-after another send is dequeued after it.
//! 2. **Sequence guard.** Stored tuples carry the sequence number of
//!    their root; probes skip tuples with `stored_seq >= probe_seq`.
//!    A shard that races ahead may observe *later* insertions, but the
//!    guard excludes them — matching what the sequential engine would
//!    have seen.
//! 3. **Symmetric pending probers.** Stores fed by `Forward` actions
//!    (materialized intermediate results) receive insertions from worker
//!    threads, not from the coordinator, so FIFO does not order them
//!    against probes of *later* roots. Probes at such stores therefore
//!    run immediately against the current state *and* stay registered as
//!    pending probers beside the partition; a late insert with a smaller
//!    sequence number retro-matches the registered probers locally and
//!    emits the missed results through the same outputs. Each
//!    (probe, insert) pair matches exactly once — at probe time if the
//!    insert was already applied, retroactively otherwise — and nothing
//!    ever waits. The completion watermark only garbage-collects probers
//!    that can no longer receive late inserts.

//!
//! # Multi-producer ingestion
//!
//! With [`crate::ingest::SourceHandle`]s open, deliveries no longer all
//! originate from the coordinator, so mechanism 1 only holds per
//! producer. The engine then widens the symmetric set of mechanism 3 to
//! every store that is both populated and probed
//! ([`router::symmetric_stores_multi`]): cross-producer (probe, insert)
//! races resolve through pending probers exactly as forward-fed stores
//! always did, and the coordinator becomes a control-plane thread
//! (barriers, plan installs, expiry). See [`crate::ingest`].

pub(crate) mod coordinator;
pub(crate) mod driver;
pub(crate) mod router;
pub(crate) mod shard;
pub(crate) mod worker;

pub use coordinator::{auto_workers, ParallelEngine};
