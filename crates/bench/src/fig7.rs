//! Fig. 7: multi-query performance on the TPC-H-shaped workload.
//!
//! For each strategy (Independent ≈ FI/SI, Shared ≈ FS/SS, CMQO) the
//! driver plans the 5- or 10-query workload, streams the same generated
//! tuple mix through the resulting topology and reports throughput
//! (Fig. 7b), store memory (Fig. 7c) and mean result latency (Fig. 7d).

use clash_common::Window;
use clash_datagen::{TpchGenerator, TpchWorkload};
use clash_optimizer::{Planner, PlannerConfig, Strategy};
use clash_runtime::{EngineConfig, LocalEngine, ParallelEngine};
use serde::Serialize;
use std::time::Instant;

/// One row of the Fig. 7 result table.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Number of queries in the workload (5 or 10).
    pub num_queries: usize,
    /// Strategy label (Independent / Shared / CMQO).
    pub strategy: String,
    /// Throughput in tuples per second (Fig. 7b).
    pub throughput_tps: f64,
    /// Store memory in megabytes (Fig. 7c).
    pub memory_mb: f64,
    /// Mean end-to-end result latency in milliseconds (Fig. 7d).
    pub latency_ms: f64,
    /// Median end-to-end result latency in milliseconds.
    pub latency_p50_ms: f64,
    /// 99th-percentile end-to-end result latency in milliseconds — the
    /// tail Fig. 7d actually argues about, from the mergeable histogram.
    pub latency_p99_ms: f64,
    /// Total join results produced (sanity check: equal across strategies).
    pub results: u64,
    /// Tuple copies sent between stores (the optimized probe cost).
    pub tuples_sent: u64,
    /// Frozen segments built by the tiered state layer during the run
    /// (sanity check: cold epochs actually freeze under real ingest).
    pub compactions: u64,
}

/// Runs the Fig. 7 experiment.
///
/// * `num_queries`: 5 (Fig. 7a workload) or 10 (extended workload).
/// * `num_tuples`: length of the generated input stream.
/// * `scale`: key-domain scale factor of the generator.
pub fn run_fig7(num_queries: usize, num_tuples: usize, scale: f64, seed: u64) -> Vec<Fig7Row> {
    let workload = TpchWorkload::new(2, Window::secs(3600)).expect("workload");
    let queries = if num_queries <= 5 {
        workload.five_queries().expect("queries")
    } else {
        workload.ten_queries().expect("queries")
    };
    let planner_config = PlannerConfig::default();
    let planner = Planner::new(&workload.catalog, &workload.stats, planner_config);

    let mut rows = Vec::new();
    for strategy in [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp] {
        let report = planner.plan(&queries, strategy).expect("plan");
        let mut engine = LocalEngine::new(
            workload.catalog.clone(),
            report.plan,
            EngineConfig::default(),
        );
        // Identical input stream for every strategy.
        let mut generator = TpchGenerator::new(scale, seed);
        let stream = generator
            .mixed_stream(&workload, num_tuples)
            .expect("stream");
        for (relation, tuple) in stream {
            engine.ingest(relation, tuple).expect("ingest");
        }
        let snap = engine.snapshot();
        rows.push(Fig7Row {
            num_queries: queries.len(),
            strategy: strategy.label().to_string(),
            throughput_tps: snap.throughput_tps,
            memory_mb: snap.store_bytes as f64 / (1024.0 * 1024.0),
            latency_ms: snap.latency.mean_us / 1000.0,
            latency_p50_ms: snap.latency.p50_us / 1000.0,
            latency_p99_ms: snap.latency.p99_us / 1000.0,
            results: snap.total_results(),
            tuples_sent: snap.tuples_sent,
            compactions: engine.store_compactions(),
        });
    }
    rows
}

/// One row of the sharded-runtime throughput comparison: the same CMQO
/// plan executed by `LocalEngine` and by `ParallelEngine` at increasing
/// worker counts, measured in end-to-end wall-clock tuples per second.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7ParallelRow {
    /// Number of queries in the workload.
    pub num_queries: usize,
    /// Engine label (`Local` or `Parallel-N`).
    pub engine: String,
    /// Worker threads (1 for the local engine).
    pub workers: usize,
    /// End-to-end wall-clock throughput in tuples per second.
    pub wall_tps: f64,
    /// Speedup over the local engine on the same plan and stream. On a
    /// single-core host this caps at ~1.0; the sharding win shows in
    /// `busy_balance` instead.
    pub speedup: f64,
    /// Total processing seconds summed over all workers.
    pub busy_secs: f64,
    /// Largest single worker's share of the total busy time (0.25 is a
    /// perfect 4-way split; 1.0 means one shard did everything). The
    /// multi-core wall-clock speedup is bounded by `1 / busy_balance`.
    pub busy_balance: f64,
    /// Total join results produced (sanity: equal across engines).
    pub results: u64,
}

/// Runs the multi-query workload through `LocalEngine` and through
/// `ParallelEngine` at each worker count, on identical plans and input
/// streams, reporting wall-clock throughput. The catalog parallelism is
/// set to the worker count so every store partition gets a dedicated
/// thread.
pub fn run_fig7_parallel(
    num_queries: usize,
    num_tuples: usize,
    scale: f64,
    seed: u64,
    worker_counts: &[usize],
) -> Vec<Fig7ParallelRow> {
    let mut rows = Vec::new();
    let mut local_tps = 0.0;
    for &workers in worker_counts {
        let workload = TpchWorkload::new(workers.max(1), Window::secs(3600)).expect("workload");
        let queries = if num_queries <= 5 {
            workload.five_queries().expect("queries")
        } else {
            workload.ten_queries().expect("queries")
        };
        let planner = Planner::new(&workload.catalog, &workload.stats, PlannerConfig::default());
        let report = planner.plan(&queries, Strategy::GlobalIlp).expect("plan");
        let mut generator = TpchGenerator::new(scale, seed);
        let stream = generator
            .mixed_stream(&workload, num_tuples)
            .expect("stream");

        // Local baseline on this plan (first worker count only: the plan
        // only differs in partition counts, which the local engine
        // simulates within one thread anyway).
        if rows.is_empty() {
            let mut engine = LocalEngine::new(
                workload.catalog.clone(),
                report.plan.clone(),
                EngineConfig::default(),
            );
            let started = Instant::now();
            for (relation, tuple) in &stream {
                engine.ingest(*relation, tuple.clone()).expect("ingest");
            }
            let elapsed = started.elapsed().as_secs_f64();
            let snap = engine.snapshot();
            local_tps = num_tuples as f64 / elapsed;
            rows.push(Fig7ParallelRow {
                num_queries: queries.len(),
                engine: "Local".into(),
                workers: 1,
                wall_tps: local_tps,
                speedup: 1.0,
                busy_secs: snap.busy_secs,
                busy_balance: 1.0,
                results: snap.total_results(),
            });
        }

        let mut engine = ParallelEngine::new(
            workload.catalog.clone(),
            report.plan,
            EngineConfig::default(),
            workers,
        );
        let started = Instant::now();
        for (relation, tuple) in &stream {
            engine.ingest(*relation, tuple.clone()).expect("ingest");
        }
        engine.flush();
        let elapsed = started.elapsed().as_secs_f64();
        let snap = engine.snapshot();
        let wall_tps = num_tuples as f64 / elapsed;
        let busy: Vec<f64> = engine
            .worker_busy()
            .iter()
            .map(|d| d.as_secs_f64())
            .collect();
        let busy_total: f64 = busy.iter().sum();
        let busy_max = busy.iter().cloned().fold(0.0f64, f64::max);
        rows.push(Fig7ParallelRow {
            num_queries: queries.len(),
            engine: format!("Parallel-{workers}"),
            workers,
            wall_tps,
            speedup: if local_tps > 0.0 {
                wall_tps / local_tps
            } else {
                0.0
            },
            busy_secs: busy_total,
            busy_balance: if busy_total > 0.0 {
                busy_max / busy_total
            } else {
                1.0
            },
            results: snap.total_results(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shapes_hold_on_a_small_stream() {
        let rows = run_fig7(5, 3_000, 0.002, 42);
        assert_eq!(rows.len(), 3);
        let get = |label: &str| rows.iter().find(|r| r.strategy == label).unwrap();
        let independent = get("Independent");
        let shared = get("Shared");
        let cmqo = get("CMQO");
        // Correctness: every strategy produces the same results.
        assert_eq!(independent.results, shared.results);
        assert_eq!(shared.results, cmqo.results);
        // Shape of Fig. 7c: the independent plan needs the most memory.
        assert!(independent.memory_mb > shared.memory_mb);
        assert!(independent.memory_mb > cmqo.memory_mb);
        // Shape of Fig. 7b: sharing does not send more tuple copies than
        // independent execution.
        assert!(cmqo.tuples_sent <= independent.tuples_sent);
        // The latency quantiles come from the histogram and are ordered.
        for row in &rows {
            assert!(row.latency_p50_ms > 0.0, "{}: p50 missing", row.strategy);
            // The stream spans several epochs, so the tiered state layer
            // must have frozen cold ones under the default config.
            assert!(row.compactions > 0, "{}: no compactions", row.strategy);
            assert!(
                row.latency_p99_ms >= row.latency_p50_ms,
                "{}: p99 below p50",
                row.strategy
            );
        }
    }

    #[test]
    fn parallel_rows_agree_with_local_results() {
        let rows = run_fig7_parallel(5, 2_000, 0.002, 42, &[1, 2]);
        assert_eq!(rows.len(), 3, "local + one row per worker count");
        let local = &rows[0];
        assert_eq!(local.engine, "Local");
        assert!(local.results > 0);
        for row in &rows[1..] {
            assert_eq!(row.results, local.results, "{} results differ", row.engine);
            assert!(row.wall_tps > 0.0);
        }
        // The 2-worker run actually distributes the processing: no single
        // shard holds (almost) all of the busy time.
        let two = rows.iter().find(|r| r.workers == 2).unwrap();
        assert!(
            two.busy_balance < 0.95,
            "work not distributed: balance {}",
            two.busy_balance
        );
    }
}
