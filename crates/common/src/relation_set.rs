//! Compact sets of relations.
//!
//! Materializable intermediate results (MIRs), probe-order prefixes and
//! sub-queries are all identified by the *set of base relations* they
//! cover. With at most 64 streamed relations per deployment (the paper
//! evaluates up to 100 input relations, but any single query touches at
//! most a handful; deployments in the runtime are capped at 64 relations)
//! a bitset over `u128` is sufficient and makes set algebra and hashing
//! trivial.

use crate::ids::RelationId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of distinct relations a single deployment may reference.
pub const MAX_RELATIONS: usize = 128;

/// A set of [`RelationId`]s represented as a 128-bit bitmap.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RelationSet(u128);

impl RelationSet {
    /// The empty set.
    pub const EMPTY: RelationSet = RelationSet(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        RelationSet(0)
    }

    /// Creates a singleton set.
    pub fn singleton(r: RelationId) -> Self {
        let mut s = RelationSet::new();
        s.insert(r);
        s
    }

    /// Inserts a relation. Panics if the id exceeds [`MAX_RELATIONS`].
    pub fn insert(&mut self, r: RelationId) {
        assert!(
            r.index() < MAX_RELATIONS,
            "relation id {} exceeds the {MAX_RELATIONS}-relation limit of RelationSet",
            r.index()
        );
        self.0 |= 1u128 << r.index();
    }

    /// Removes a relation if present.
    pub fn remove(&mut self, r: RelationId) {
        if r.index() < MAX_RELATIONS {
            self.0 &= !(1u128 << r.index());
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, r: RelationId) -> bool {
        r.index() < MAX_RELATIONS && (self.0 >> r.index()) & 1 == 1
    }

    /// Number of relations in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(&self, other: &RelationSet) -> RelationSet {
        RelationSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &RelationSet) -> RelationSet {
        RelationSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &RelationSet) -> RelationSet {
        RelationSet(self.0 & !other.0)
    }

    /// `true` when the two sets share no relation.
    pub fn is_disjoint(&self, other: &RelationSet) -> bool {
        self.0 & other.0 == 0
    }

    /// `true` when every relation of `self` is contained in `other`.
    pub fn is_subset(&self, other: &RelationSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// `true` when `self` is a subset of `other` and not equal to it.
    pub fn is_proper_subset(&self, other: &RelationSet) -> bool {
        self.is_subset(other) && self.0 != other.0
    }

    /// Iterates over the member relation ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..MAX_RELATIONS as u32)
            .filter(move |i| (self.0 >> i) & 1 == 1)
            .map(RelationId::new)
    }

    /// The single member, if this is a singleton set.
    pub fn as_singleton(&self) -> Option<RelationId> {
        if self.len() == 1 {
            self.iter().next()
        } else {
            None
        }
    }

    /// Raw bitmap (useful as a dense map key).
    pub fn bits(&self) -> u128 {
        self.0
    }

    /// Constructs a set from a raw bitmap.
    pub fn from_bits(bits: u128) -> Self {
        RelationSet(bits)
    }
}

impl FromIterator<RelationId> for RelationSet {
    fn from_iter<T: IntoIterator<Item = RelationId>>(iter: T) -> Self {
        let mut s = RelationSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl fmt::Display for RelationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(ids: &[u32]) -> RelationSet {
        ids.iter().copied().map(RelationId::new).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = RelationSet::new();
        assert!(s.is_empty());
        s.insert(RelationId::new(3));
        s.insert(RelationId::new(7));
        assert!(s.contains(RelationId::new(3)));
        assert!(!s.contains(RelationId::new(4)));
        assert_eq!(s.len(), 2);
        s.remove(RelationId::new(3));
        assert!(!s.contains(RelationId::new(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = rs(&[0, 1, 2]);
        let b = rs(&[2, 3]);
        assert_eq!(a.union(&b), rs(&[0, 1, 2, 3]));
        assert_eq!(a.intersection(&b), rs(&[2]));
        assert_eq!(a.difference(&b), rs(&[0, 1]));
        assert!(!a.is_disjoint(&b));
        assert!(rs(&[0, 1]).is_disjoint(&rs(&[2, 3])));
        assert!(rs(&[1]).is_subset(&a));
        assert!(rs(&[1]).is_proper_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
    }

    #[test]
    fn iteration_is_sorted_and_singleton_detection_works() {
        let s = rs(&[9, 2, 40]);
        let ids: Vec<u32> = s.iter().map(|r| r.0).collect();
        assert_eq!(ids, vec![2, 9, 40]);
        assert_eq!(s.as_singleton(), None);
        assert_eq!(rs(&[5]).as_singleton(), Some(RelationId::new(5)));
        assert_eq!(RelationSet::EMPTY.as_singleton(), None);
    }

    #[test]
    fn display_lists_members() {
        assert_eq!(rs(&[1, 3]).to_string(), "{R1,R3}");
        assert_eq!(RelationSet::EMPTY.to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_relation_id_rejected() {
        let mut s = RelationSet::new();
        s.insert(RelationId::new(128));
    }

    #[test]
    fn bits_roundtrip() {
        let s = rs(&[0, 127]);
        assert_eq!(RelationSet::from_bits(s.bits()), s);
    }
}
