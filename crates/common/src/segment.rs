//! Frozen columnar segments: the cold tier of the window state.
//!
//! An epoch that has fallen behind the stream clock will never receive
//! another in-order insert, yet in the live form it keeps paying the
//! insert-optimized price: arena-backed leaf ropes, per-value hash maps
//! and inline posting lists scattered across allocations. A
//! [`FrozenSegment`] is the read-optimized rewrite of one such epoch
//! container:
//!
//! * values live **columnar per attribute slot** in one contiguous
//!   allocation (`cols × rows`), with a presence bitmap per column —
//!   probes touch exactly the columns their predicates name;
//! * rows are **sorted by timestamp**, so window expiry is a
//!   `partition_point` advancing a start cursor (no per-tuple work) and
//!   dropping a fully expired segment is one map-entry removal;
//! * per-indexed-attribute postings are rebuilt as **sorted dense hash
//!   runs** (`hashes` / `starts` / `offsets`) probed by binary search,
//!   fronted by a small [`BloomFilter`] so non-matching probes answer in
//!   O(1) without touching segment memory.
//!
//! Hash runs group rows by `fx_hash(value)`, not by value — two distinct
//! values may share a run, so **probers must re-verify every predicate**
//! (including the driving one) against the column data; the live tier's
//! "an index hit proves the driving predicate" shortcut does not apply
//! here. Everything is derived from `fx_hash` with no per-process seed,
//! so two processes freezing the same rows build bit-identical segments
//! and filters.
//!
//! Freezing consumes the live tuples; dropping them releases their arena
//! leaf buffers back to the thread-local pool (see [`crate::arena`]),
//! where the hot insert path immediately reuses them.

use std::sync::{Arc, Mutex};

use crate::bloom::BloomFilter;
use crate::fxhash::{fx_hash, FxHashMap};
use crate::relation_set::RelationSet;
use crate::schema::AttrRef;
use crate::time::Timestamp;
use crate::tuple::{SlotAccessor, Tuple};
use crate::value::Value;

/// One frozen index: rows grouped by value hash into sorted dense runs,
/// guarded by a bloom filter. Row offsets within a run are ascending, so
/// the expired-prefix skip is a `partition_point` per run.
#[derive(Debug)]
struct AttrIndex {
    bloom: BloomFilter,
    /// Sorted distinct `fx_hash` values of the column.
    hashes: Box<[u64]>,
    /// Run boundaries into `offsets`; `hashes.len() + 1` entries.
    starts: Box<[u32]>,
    /// Row offsets grouped by hash, ascending within each run.
    offsets: Box<[u32]>,
}

impl AttrIndex {
    /// Index over a column no row carries: every probe misses.
    fn empty() -> AttrIndex {
        AttrIndex {
            bloom: BloomFilter::with_capacity(0),
            hashes: Box::new([]),
            starts: Box::new([0]),
            offsets: Box::new([]),
        }
    }

    /// Rows whose indexed value hashes to `hash` (possibly a superset of
    /// the true matches — hash collisions land in the same run).
    #[inline]
    fn candidates(&self, hash: u64) -> &[u32] {
        if !self.bloom.contains_hash(hash) {
            return &[];
        }
        match self.hashes.binary_search(&hash) {
            Ok(i) => &self.offsets[self.starts[i] as usize..self.starts[i + 1] as usize],
            Err(_) => &[],
        }
    }
}

/// A read-only columnar rewrite of one epoch's stored tuples. Built by
/// [`FrozenSegment::freeze`], probed through [`FrozenSegment::with_candidates`]
/// / [`FrozenSegment::value_at`], expired by advancing a start cursor.
#[derive(Debug)]
pub struct FrozenSegment {
    /// Total rows (live and expired).
    len: usize,
    /// First live row; rows `< start` are expired. Rows are ts-sorted, so
    /// the cursor only moves forward.
    start: usize,
    ts: Box<[Timestamp]>,
    ingest_ts: Box<[Timestamp]>,
    /// Ingest sequence numbers (parallel runtime ordering guard).
    seqs: Box<[u64]>,
    relations: Box<[RelationSet]>,
    /// Sorted attribute set of the segment; position = column id.
    columns: Box<[AttrRef]>,
    /// Column-major values in one contiguous allocation: column `c` spans
    /// `values[c * len .. (c + 1) * len]`.
    values: Box<[Value]>,
    /// Presence bitmap, `words_per_col` words per column.
    present: Box<[u64]>,
    /// Flattened-size prefix sums (`len + 1` entries), so live bytes after
    /// any expiry cursor position is a subtraction.
    byte_prefix: Box<[usize]>,
    /// Indexes built at freeze time, positionally aligned with the store's
    /// `indexed_attrs` at that moment (the list is append-only).
    eager: Box<[AttrIndex]>,
    /// Indexes for attributes registered *after* the freeze, built on
    /// first probe (`add_indexed_attr` stays O(1) for frozen state).
    lazy: Mutex<FxHashMap<usize, Arc<AttrIndex>>>,
}

impl FrozenSegment {
    /// Compacts one epoch's live tuples into a frozen segment. `indexed`
    /// are the store's indexed-attribute accessors in positional order;
    /// their runs are built eagerly. Consumes the tuples — their arena
    /// leaf buffers recycle to the pool as the ropes drop.
    pub fn freeze(tuples: Vec<Tuple>, seqs: Vec<u64>, indexed: &[SlotAccessor]) -> FrozenSegment {
        let len = tuples.len();
        debug_assert_eq!(seqs.len(), len);
        // Stable ts order: equal timestamps keep their arrival order.
        let mut order: Vec<usize> = (0..len).collect();
        order.sort_by_key(|&row| tuples[row].ts);
        // Column discovery: the sorted union of attributes across rows.
        // Segments carry a handful of columns, so the linear dedup is
        // cheaper than a hash set.
        let mut columns: Vec<AttrRef> = Vec::new();
        for tuple in &tuples {
            for (attr, _) in tuple.iter() {
                if !columns.contains(&attr) {
                    columns.push(attr);
                }
            }
        }
        columns.sort_unstable();
        let cols = columns.len();
        let words = len.div_ceil(64);
        let mut values = vec![Value::Null; cols * len].into_boxed_slice();
        let mut present = vec![0u64; cols * words].into_boxed_slice();
        let mut ts = Vec::with_capacity(len);
        let mut ingest_ts = Vec::with_capacity(len);
        let mut out_seqs = Vec::with_capacity(len);
        let mut relations = Vec::with_capacity(len);
        let mut byte_prefix = Vec::with_capacity(len + 1);
        byte_prefix.push(0usize);
        for (row, &old) in order.iter().enumerate() {
            let tuple = &tuples[old];
            ts.push(tuple.ts);
            ingest_ts.push(tuple.ingest_ts);
            out_seqs.push(seqs[old]);
            relations.push(tuple.relations);
            byte_prefix.push(byte_prefix[row] + tuple.approx_size_bytes());
            for (attr, value) in tuple.iter() {
                let col = columns.binary_search(&attr).expect("column was discovered");
                // `Value::Str` clones share their `Arc<str>` payload.
                values[col * len + row] = value.clone();
                present[col * words + row / 64] |= 1 << (row % 64);
            }
        }
        // Drop the live ropes: base-leaf buffers recycle to the arena.
        drop(tuples);
        let mut segment = FrozenSegment {
            len,
            start: 0,
            ts: ts.into_boxed_slice(),
            ingest_ts: ingest_ts.into_boxed_slice(),
            seqs: out_seqs.into_boxed_slice(),
            relations: relations.into_boxed_slice(),
            columns: columns.into_boxed_slice(),
            values,
            present,
            byte_prefix: byte_prefix.into_boxed_slice(),
            eager: Box::new([]),
            lazy: Mutex::new(FxHashMap::default()),
        };
        segment.eager = indexed
            .iter()
            .map(|accessor| segment.build_index(accessor))
            .collect();
        segment
    }

    /// Builds the hash-run index for one attribute accessor (eagerly at
    /// freeze time, or lazily for late-registered attributes).
    fn build_index(&self, accessor: &SlotAccessor) -> AttrIndex {
        let Some(col) = self.column_of(&accessor.attr()) else {
            return AttrIndex::empty();
        };
        let mut pairs: Vec<(u64, u32)> = Vec::new();
        for row in 0..self.len {
            if let Some(value) = self.value_at(col, row) {
                pairs.push((fx_hash(value), row as u32));
            }
        }
        // Sorting (hash, row) keeps each run's rows ascending — required
        // by the expired-prefix `partition_point` skip.
        pairs.sort_unstable();
        let mut hashes: Vec<u64> = Vec::new();
        let mut starts: Vec<u32> = Vec::new();
        let mut offsets: Vec<u32> = Vec::with_capacity(pairs.len());
        for (hash, row) in pairs {
            if hashes.last() != Some(&hash) {
                hashes.push(hash);
                starts.push(offsets.len() as u32);
            }
            offsets.push(row);
        }
        starts.push(offsets.len() as u32);
        let mut bloom = BloomFilter::with_capacity(hashes.len());
        for &hash in &hashes {
            bloom.insert_hash(hash);
        }
        AttrIndex {
            bloom,
            hashes: hashes.into_boxed_slice(),
            starts: starts.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
        }
    }

    /// Runs `f` over the candidate rows for the indexed attribute at
    /// position `pos` whose value hashes to `hash`. Positions known at
    /// freeze time hit the eager indexes lock-free; later positions build
    /// their run on first use (shared thereafter). Candidates may contain
    /// hash-collided and expired rows — callers must verify predicates
    /// against the columns and skip rows below [`Self::first_live`].
    pub fn with_candidates<R>(
        &self,
        pos: usize,
        accessor: &SlotAccessor,
        hash: u64,
        f: impl FnOnce(&[u32]) -> R,
    ) -> R {
        if let Some(index) = self.eager.get(pos) {
            return f(index.candidates(hash));
        }
        let index = {
            let mut lazy = self.lazy.lock().expect("lazy index lock poisoned");
            lazy.entry(pos)
                .or_insert_with(|| Arc::new(self.build_index(accessor)))
                .clone()
        };
        f(index.candidates(hash))
    }

    /// The sorted distinct value hashes of the eager index at `pos`, or
    /// `None` when the position was registered after this segment froze
    /// (its index is lazy, so the hash set is not cheaply available).
    /// Store-level probe pruning unions these into a per-partition bloom.
    pub fn index_hashes(&self, pos: usize) -> Option<&[u64]> {
        self.eager.get(pos).map(|index| &*index.hashes)
    }

    /// Column id of an attribute, if any row carries it.
    #[inline]
    pub fn column_of(&self, attr: &AttrRef) -> Option<usize> {
        self.columns.binary_search(attr).ok()
    }

    /// The value of column `col` in `row`, if present.
    #[inline]
    pub fn value_at(&self, col: usize, row: usize) -> Option<&Value> {
        let words = self.len.div_ceil(64);
        if self.present[col * words + row / 64] & (1 << (row % 64)) != 0 {
            Some(&self.values[col * self.len + row])
        } else {
            None
        }
    }

    /// Reconstructs the full tuple of `row` (attribute gather +
    /// [`Tuple::from_flattened`]). Content-equal to the tuple that was
    /// frozen — flattened values, timestamps and relation set all round-
    /// trip — so emitting reconstructed matches preserves the engines'
    /// result multisets exactly.
    pub fn tuple_at(&self, row: usize) -> Tuple {
        // Single-relation rows — every base tuple, i.e. the entire
        // contents of a store that never holds partial join results —
        // skip the pair gather and `from_flattened`'s relation
        // bookkeeping: write the present values straight into one arena
        // leaf at their slot positions. A row's present columns all
        // belong to its own relation set, so the leaf width is just the
        // highest present slot + 1.
        if let Some(relation) = self.relations[row].as_singleton() {
            let mut width = 0usize;
            for (col, attr) in self.columns.iter().enumerate().rev() {
                if self.value_at(col, row).is_some() {
                    width = attr.attr.index() + 1;
                    break;
                }
            }
            return Tuple::from_slots(
                self.ts[row],
                self.ingest_ts[row],
                relation,
                width,
                self.columns.iter().enumerate().filter_map(|(col, attr)| {
                    let value = self.value_at(col, row)?;
                    debug_assert_eq!(attr.relation, relation);
                    Some((attr.attr.index(), value.clone()))
                }),
            );
        }
        let mut pairs: Vec<(AttrRef, Value)> = Vec::with_capacity(self.columns.len());
        for (col, attr) in self.columns.iter().enumerate() {
            if let Some(value) = self.value_at(col, row) {
                pairs.push((*attr, value.clone()));
            }
        }
        Tuple::from_flattened(
            self.ts[row],
            self.ingest_ts[row],
            self.relations[row],
            pairs,
        )
        .expect("a frozen row always reconstructs")
    }

    /// Expires rows older than `horizon` by advancing the start cursor
    /// (`partition_point` on the sorted ts column — no per-tuple work).
    /// Returns how many rows this call expired; exact, so engine removal
    /// accounting matches the live tier's.
    pub fn expire(&mut self, horizon: Timestamp) -> usize {
        let new_start = self.ts.partition_point(|&t| t < horizon).max(self.start);
        let removed = new_start - self.start;
        self.start = new_start;
        removed
    }

    /// Timestamp of `row`.
    #[inline]
    pub fn ts(&self, row: usize) -> Timestamp {
        self.ts[row]
    }

    /// Ingest sequence number of `row`.
    #[inline]
    pub fn seq(&self, row: usize) -> u64 {
        self.seqs[row]
    }

    /// Total rows, including expired ones below the cursor.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when every row has expired (the caller should drop the
    /// segment wholesale).
    pub fn is_empty(&self) -> bool {
        self.start == self.len
    }

    /// First live row — scans start here; index runs skip below it.
    #[inline]
    pub fn first_live(&self) -> usize {
        self.start
    }

    /// Live (unexpired) row count.
    pub fn live_len(&self) -> usize {
        self.len - self.start
    }

    /// Flattened payload bytes of the live rows (same accounting as the
    /// live tier, so freezing does not distort the Fig. 7c memory story).
    pub fn bytes(&self) -> usize {
        self.byte_prefix[self.len] - self.byte_prefix[self.start]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AttrId, RelationId};
    use crate::schema::Schema;
    use crate::tuple::TupleBuilder;

    fn schema() -> Schema {
        Schema::new(RelationId::new(3), "F", ["k", "v"])
    }

    fn tuple(k: i64, v: i64, ts: u64) -> Tuple {
        TupleBuilder::new(&schema(), Timestamp::from_millis(ts))
            .set("k", k)
            .set("v", v)
            .build()
    }

    fn attr(slot: u32) -> AttrRef {
        AttrRef::new(RelationId::new(3), AttrId::new(slot))
    }

    fn freeze_fixture() -> FrozenSegment {
        // Out-of-order timestamps: the segment must ts-sort them.
        let tuples = vec![
            tuple(1, 10, 300),
            tuple(2, 20, 100),
            tuple(1, 30, 200),
            tuple(3, 40, 400),
        ];
        let seqs = vec![7, 8, 9, 10];
        FrozenSegment::freeze(tuples, seqs, &[SlotAccessor::of(&attr(0))])
    }

    #[test]
    fn rows_are_ts_sorted_and_round_trip() {
        let segment = freeze_fixture();
        assert_eq!(segment.len(), 4);
        let ts: Vec<u64> = (0..4).map(|r| segment.ts(r).as_millis()).collect();
        assert_eq!(ts, vec![100, 200, 300, 400]);
        // Row 1 is the (1, 30, 200) tuple; it must reconstruct content-equal.
        let rebuilt = segment.tuple_at(1);
        assert_eq!(rebuilt, tuple(1, 30, 200));
        assert_eq!(segment.seq(1), 9, "seqs follow the ts permutation");
    }

    #[test]
    fn eager_index_finds_hash_groups_and_bloom_rejects_absent_keys() {
        let segment = freeze_fixture();
        let accessor = SlotAccessor::of(&attr(0));
        // Both k=1 rows land in one run, ascending.
        let rows =
            segment.with_candidates(0, &accessor, fx_hash(&Value::Int(1)), |run| run.to_vec());
        assert_eq!(rows, vec![1, 2]);
        // A key never stored answers empty (bloom or binary search).
        let rows =
            segment.with_candidates(0, &accessor, fx_hash(&Value::Int(99)), |run| run.to_vec());
        assert!(rows.is_empty());
    }

    #[test]
    fn lazy_index_builds_on_first_probe_for_late_attrs() {
        let segment = freeze_fixture();
        // Position 1 was not indexed at freeze time.
        let accessor = SlotAccessor::of(&attr(1));
        let rows =
            segment.with_candidates(1, &accessor, fx_hash(&Value::Int(30)), |run| run.to_vec());
        assert_eq!(rows, vec![1]);
        // Second probe hits the cached run.
        let again =
            segment.with_candidates(1, &accessor, fx_hash(&Value::Int(30)), |run| run.to_vec());
        assert_eq!(again, rows);
    }

    #[test]
    fn expiry_advances_the_cursor_exactly_and_empties_wholesale() {
        let mut segment = freeze_fixture();
        let live_bytes = segment.bytes();
        assert_eq!(segment.expire(Timestamp::from_millis(250)), 2);
        assert_eq!(segment.first_live(), 2);
        assert_eq!(segment.live_len(), 2);
        assert!(segment.bytes() < live_bytes);
        // Re-expiring at the same horizon removes nothing.
        assert_eq!(segment.expire(Timestamp::from_millis(250)), 0);
        // Expiring everything empties the segment (caller drops it).
        assert_eq!(segment.expire(Timestamp::from_millis(10_000)), 2);
        assert!(segment.is_empty());
        assert_eq!(segment.bytes(), 0);
    }

    #[test]
    fn missing_column_yields_an_empty_index() {
        let segment = freeze_fixture();
        let foreign = AttrRef::new(RelationId::new(9), AttrId::new(0));
        assert_eq!(segment.column_of(&foreign), None);
        let rows = segment.with_candidates(5, &SlotAccessor::of(&foreign), 123, |run| run.len());
        assert_eq!(rows, 0);
    }
}
