//! The producer-side ingestion API: [`SourceHandle`] and the per-source
//! slot state the engine and the time-trigger flusher cooperate on.

use crate::ingest::shared::ControlShared;
use crate::metrics::EngineMetrics;
use crate::parallel::router::{route_root, BatchBuffer, DepthGauges, RootHandle};
use crate::parallel::worker::WorkerMsg;
use crate::stats_collector::StatsCollector;
use clash_catalog::Catalog;
use clash_common::{ClashError, EpochConfig, RelationId, Result, Timestamp, Tuple};
use clash_optimizer::TopologyPlan;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration as StdDuration, Instant};

/// Per-source state shared between the producer thread (pushes), the
/// engine (barrier flush + delta collection, plan swaps) and the
/// time-trigger flusher. Every source has its own slot and lock, so
/// producers never contend with each other — only with the rare barrier
/// or flusher sweep of their own slot.
#[derive(Debug)]
pub(crate) struct SourceInner {
    /// The plan this source routes against (swapped under the quiesce
    /// gate on `install_plan`).
    pub plan: Arc<TopologyPlan>,
    /// Locally micro-batched deliveries awaiting shipment.
    pub buf: BatchBuffer,
    /// Metrics delta since the engine last drained this slot.
    pub metrics: EngineMetrics,
    /// Statistics delta since the engine last drained this slot.
    pub stats: StatsCollector,
    /// Maximum stream timestamp pushed through this source.
    pub max_ts: Timestamp,
    /// Set when the producer dropped its handle; the engine prunes
    /// closed, drained slots at the next barrier.
    pub closed: bool,
}

impl SourceInner {
    /// Ships everything buffered, recording the flush age (how long the
    /// oldest delivery waited) into this slot's metrics delta so the
    /// engine's `flush_age` histogram sees every producer path.
    pub fn flush(&mut self, senders: &[Sender<WorkerMsg>]) {
        if let Some(age) = self.buf.flush(senders) {
            self.metrics.flush_age.record(age);
        }
    }
}

/// One registered source: its slot state behind its own mutex.
#[derive(Debug)]
pub(crate) struct SourceSlot {
    /// The slot state; producers hold this lock only for the duration of
    /// one push or one flush.
    pub inner: Mutex<SourceInner>,
}

impl SourceSlot {
    /// A fresh slot routing against `plan`.
    pub fn new(
        plan: Arc<TopologyPlan>,
        workers: usize,
        micro_batch: usize,
        epoch: EpochConfig,
        gauges: Arc<DepthGauges>,
    ) -> Self {
        SourceSlot {
            inner: Mutex::new(SourceInner {
                plan,
                buf: BatchBuffer::new(workers, micro_batch, gauges),
                metrics: EngineMetrics::default(),
                stats: StatsCollector::new(epoch.length),
                max_ts: Timestamp::ZERO,
                closed: false,
            }),
        }
    }

    /// Ships everything currently buffered in this slot.
    pub fn flush_to(&self, senders: &[Sender<WorkerMsg>]) {
        self.inner.lock().expect("source slot").flush(senders);
    }
}

/// A concurrent ingestion endpoint of a
/// [`crate::parallel::ParallelEngine`], obtained from
/// `ParallelEngine::open_source` and movable to a producer thread.
///
/// Each handle is an independent ingress router: pushes hash-partition
/// the tuple with the same routing decisions as the engine's own
/// `ingest`, micro-batch locally and deliver straight to the worker
/// shards. Any number of handles (plus the coordinator itself) may push
/// concurrently; the result multiset stays exactly that of sequential
/// execution (see [`crate::ingest`]).
///
/// Pushes racing a plan install block briefly on the engine's quiesce
/// gate and then route against the freshly installed plan — none is ever
/// dropped. Pushes after the engine has shut down return
/// [`ClashError::Shutdown`]; barrier operations on the engine (`flush`,
/// `snapshot`, `install_plan`) guarantee coverage of every push that
/// happened-before the call.
#[derive(Debug)]
pub struct SourceHandle {
    slot: Arc<SourceSlot>,
    /// The engine's shared control-plane state: sequence allocator,
    /// stream clock, quiesce gate, shutdown flag and the registry of
    /// every slot (for the backpressure sweep: any source's buffered
    /// roots can be what the watermark is stuck on).
    shared: Arc<ControlShared>,
    senders: Vec<Sender<WorkerMsg>>,
    catalog: Arc<Catalog>,
    epoch: EpochConfig,
    /// In-flight-roots bound (0 = unbounded).
    capacity: usize,
    /// Time trigger for the local micro-batch buffer.
    max_delay: StdDuration,
}

impl SourceHandle {
    /// Wires a handle to its slot (engine-internal).
    pub(crate) fn new(
        slot: Arc<SourceSlot>,
        shared: Arc<ControlShared>,
        senders: Vec<Sender<WorkerMsg>>,
        catalog: Arc<Catalog>,
        epoch: EpochConfig,
        capacity: usize,
        max_delay: StdDuration,
    ) -> Self {
        SourceHandle {
            slot,
            shared,
            senders,
            catalog,
            epoch,
            capacity,
            max_delay,
        }
    }

    /// Ingests one input tuple through this source, routing it straight
    /// to the owning worker shards. Join results materialize
    /// asynchronously; they stream to subscribers as produced and are
    /// counted at the engine's next barrier.
    ///
    /// Returns the root's allocated sequence number: the tuple's position
    /// in the engine's realized serial order. The engine's results are
    /// exactly those of `LocalEngine` ingesting all pushed tuples in
    /// sequence-number order (installing the same plans at the same
    /// positions of that order), so recording the returned values makes
    /// the linearization observable (see [`crate::ingest`]).
    ///
    /// Blocks while the engine's in-flight-roots bound is reached
    /// (backpressure) or while a plan install is quiescing producers;
    /// returns an error for unknown relations, after the engine has shut
    /// down ([`ClashError::Shutdown`]), or when the backpressure gate
    /// stalls because the engine died underneath the handle.
    pub fn push(&mut self, relation: RelationId, tuple: Tuple) -> Result<u64> {
        if self.catalog.relation(relation).is_err() {
            return Err(ClashError::unknown(format!("relation {relation}")));
        }
        self.wait_admission()?;
        // The quiesce gate: held across sequence allocation, routing and
        // buffering, so a plan install either happens-before this push
        // (which then routes against the new plan) or waits for it (the
        // install's drain barrier then covers its deliveries). Entered
        // after the admission gate — a push blocked on backpressure must
        // not stall an install.
        let _pass = self.shared.gate.enter();
        if self.shared.is_shutdown() {
            return Err(ClashError::Shutdown);
        }
        let started = Instant::now();
        let mut inner = self.slot.inner.lock().expect("source slot");
        let inner = &mut *inner;
        inner.metrics.tuples_ingested += 1;
        inner.max_ts = inner.max_ts.max(tuple.ts);
        self.shared.advance_clock(tuple.ts.as_millis());
        let epoch = self.epoch.epoch_of(tuple.ts);
        inner.stats.record_arrival(epoch, relation);

        // Sequence allocation happens under the slot lock, so a barrier
        // that flushed this slot has shipped every seq allocated before it
        // acquired the lock (its drain loop re-flushes for stragglers).
        let seq = self.shared.next_seq.fetch_add(1, Ordering::SeqCst);
        let root = RootHandle::new(seq, self.shared.progress.clone());
        let plan = Arc::clone(&inner.plan);
        route_root(
            &plan,
            self.senders.len(),
            relation,
            &tuple,
            seq,
            &root,
            started,
            &mut inner.metrics,
            &mut inner.buf,
        );
        if inner.buf.is_full() || inner.buf.is_stale(self.max_delay) {
            inner.flush(&self.senders);
        }
        Ok(seq)
    }

    /// Ships any locally buffered deliveries immediately instead of
    /// waiting for the size trigger, the time trigger or a barrier.
    pub fn flush(&mut self) {
        self.slot.flush_to(&self.senders);
    }

    /// Blocks until the in-flight-roots bound admits a new root. The gate
    /// compares allocated sequence numbers against the completion
    /// watermark, so it bounds memory across *all* producers combined.
    fn wait_admission(&self) -> Result<()> {
        if self.shared.is_shutdown() {
            return Err(ClashError::Shutdown);
        }
        if self.capacity == 0 {
            return Ok(());
        }
        let stalled_after = StdDuration::from_secs(30);
        let started = Instant::now();
        loop {
            let inflight = self
                .shared
                .sequenced()
                .saturating_sub(self.shared.progress.watermark());
            if (inflight as usize) < self.capacity {
                return Ok(());
            }
            if self.shared.is_shutdown() {
                return Err(ClashError::Shutdown);
            }
            // Any registered source's buffered deliveries (ours included)
            // can be what the watermark is stuck on, and other producers
            // keep admitting and buffering while we wait — sweep every
            // iteration (cheap when the buffers are empty).
            for slot in self.shared.slots() {
                slot.flush_to(&self.senders);
            }
            self.shared
                .progress
                .wait_for_change(StdDuration::from_millis(1));
            if started.elapsed() >= stalled_after {
                return Err(ClashError::Runtime(
                    "source backpressure stalled for 30s: workers are not draining \
                     roots (worker death, or deliveries stranded in the engine \
                     thread's micro-batch buffer — run a barrier or ingest to ship \
                     them)"
                        .into(),
                ));
            }
        }
    }
}

impl Drop for SourceHandle {
    fn drop(&mut self) {
        let mut inner = self.slot.inner.lock().expect("source slot");
        inner.flush(&self.senders);
        inner.closed = true;
    }
}
