//! # clash-datagen
//!
//! Workload and data generators for the CLASH-MQO experiments.
//!
//! * [`tpch`] — a TPC-H-shaped streaming schema (region, nation, supplier,
//!   partsupp, part, lineitem, orders, customer), the five-query workload
//!   of Fig. 7a plus the extended ten-query workload, and a tuple
//!   generator that preserves the key relationships and the
//!   high/low-selectivity attribute pairs the paper exploits. The real
//!   TPC-H SF-10 data set streamed through Kafka is substituted by this
//!   generator (see DESIGN.md).
//! * [`synthetic`] — the synthetic environments of the ILP experiments
//!   (Fig. 9): `n` input relations with uniform rates, pair-wise
//!   selectivity `1/rate`, and random queries of a given size; plus the
//!   4-way linear query scenario with a mid-run selectivity shift used in
//!   the adaptivity experiments (Fig. 8).
//! * [`zipf`] — a seeded Zipfian rank sampler for the skew experiments
//!   (hot-key distributions the uniform generators never produce).

pub mod synthetic;
pub mod tpch;
pub mod zipf;

pub use synthetic::{AdaptiveScenario, SyntheticEnv, SyntheticWorkloadConfig};
pub use tpch::{TpchGenerator, TpchWorkload};
pub use zipf::ZipfSampler;
