//! Minimal deterministic bloom filter guarding frozen-segment probes.
//!
//! Frozen segments (see [`crate::segment`]) rebuild their per-attribute
//! postings as sorted hash runs probed by binary search. A probe against a
//! key the segment never stored still pays the `O(log d)` search plus the
//! cache misses of touching the run arrays — for low-match-rate workloads
//! that is most probes. The bloom filter in front answers those in `O(1)`
//! without touching segment memory.
//!
//! The filter is keyed on `fx_hash` values (already computed for the run
//! lookup), uses a power-of-two bit array sized at roughly eight bits per
//! distinct key, and derives its two probe positions from the one 64-bit
//! hash (low and mixed-high halves). Everything is arithmetic on the hash
//! — no per-process seed, no randomness — so two processes freezing the
//! same epoch produce bit-identical filters (cross-process determinism is
//! part of the segment contract).

/// Bits per distinct key; ~8 gives a false-positive rate of about 2% with
/// two probe functions, plenty for a guard whose misses are merely a wasted
/// binary search (correctness never depends on the filter).
const BITS_PER_KEY: usize = 8;
/// Floor on the bit-array size so tiny segments still get a real filter.
const MIN_BITS: usize = 64;

/// A fixed-size, insert-only bloom filter over 64-bit hashes.
///
/// No false negatives: a hash that was inserted always reports present.
/// False positives are possible and expected — callers must verify hits
/// against the backing data.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    /// Bit array packed into words; length is a power of two.
    words: Box<[u64]>,
    /// `bit_count - 1`, valid because `bit_count` is a power of two.
    mask: u64,
}

impl BloomFilter {
    /// Creates a filter sized for `expected_keys` distinct hashes.
    pub fn with_capacity(expected_keys: usize) -> BloomFilter {
        let bits = (expected_keys * BITS_PER_KEY)
            .max(MIN_BITS)
            .next_power_of_two();
        BloomFilter {
            words: vec![0u64; bits / 64].into_boxed_slice(),
            mask: (bits - 1) as u64,
        }
    }

    /// The two probe positions for `hash`: the low bits directly, and the
    /// high half remixed so the two indexes are decorrelated even when the
    /// mask is narrow. Purely a function of `hash` — deterministic across
    /// processes.
    #[inline]
    fn positions(&self, hash: u64) -> (u64, u64) {
        let first = hash & self.mask;
        // Multiply-shift mix of the high half (SplitMix64 finalizer
        // constant) so segments narrower than 32 bits still see
        // independent second positions.
        let second = (hash >> 32).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32 & self.mask;
        (first, second)
    }

    /// Marks `hash` present.
    pub fn insert_hash(&mut self, hash: u64) {
        let (a, b) = self.positions(hash);
        self.words[(a / 64) as usize] |= 1 << (a % 64);
        self.words[(b / 64) as usize] |= 1 << (b % 64);
    }

    /// Returns false if `hash` was definitely never inserted; true means
    /// "possibly present" and the caller must check the backing run.
    #[inline]
    pub fn contains_hash(&self, hash: u64) -> bool {
        let (a, b) = self.positions(hash);
        self.words[(a / 64) as usize] & (1 << (a % 64)) != 0
            && self.words[(b / 64) as usize] & (1 << (b % 64)) != 0
    }

    /// Memory footprint of the bit array in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fx_hash;

    /// The filter may err only toward false positives: every inserted hash
    /// must report present, and absent keys must be *mostly* rejected.
    #[test]
    fn errors_are_false_positives_only() {
        let mut bloom = BloomFilter::with_capacity(512);
        let inserted: Vec<u64> = (0..512i64).map(|i| fx_hash(&(i * 7 + 1))).collect();
        for &h in &inserted {
            bloom.insert_hash(h);
        }
        // No false negatives, ever.
        for &h in &inserted {
            assert!(bloom.contains_hash(h), "false negative for {h:#x}");
        }
        // Absent keys: false positives allowed but must stay rare. With
        // ~8 bits/key and k=2 the theoretical rate is ~2%; assert a loose
        // 10% bound so the test is robust, not flaky.
        let absent = (10_000..20_000i64)
            .map(|i| fx_hash(&i))
            .filter(|h| !inserted.contains(h));
        let (mut total, mut fp) = (0u32, 0u32);
        for h in absent {
            total += 1;
            if bloom.contains_hash(h) {
                fp += 1;
            }
        }
        assert!(
            fp * 10 < total,
            "false-positive rate too high: {fp}/{total}"
        );
    }

    /// Identical insert sequences produce identical filters — the
    /// cross-process determinism the segment contract relies on.
    #[test]
    fn deterministic_across_builds() {
        let build = || {
            let mut b = BloomFilter::with_capacity(64);
            for i in 0..64i64 {
                b.insert_hash(fx_hash(&i));
            }
            b
        };
        assert_eq!(build().words, build().words);
    }

    #[test]
    fn tiny_filters_round_up_to_min_bits() {
        let bloom = BloomFilter::with_capacity(0);
        assert!(bloom.bytes() * 8 >= MIN_BITS);
    }
}
