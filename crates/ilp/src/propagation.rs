//! Constraint propagation over binary domains.
//!
//! The solver never relaxes integrality: it reasons directly over the
//! three-valued domains {0, 1, free} of the binary variables. For every
//! constraint the propagator computes the smallest and largest achievable
//! left-hand side under the current domains; values that would make the
//! constraint unsatisfiable are pruned, which fixes variables. The models
//! produced by Algorithm 2 propagate very strongly: choosing a probe order
//! variable immediately fixes all of its step variables through the cost
//! constraints.

use crate::model::{Model, Sense, VarId};

/// Three-valued domains of all variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domains {
    values: Vec<Option<bool>>,
}

impl Domains {
    /// All-free domains for `n` variables.
    pub fn free(n: usize) -> Self {
        Domains {
            values: vec![None; n],
        }
    }

    /// Current domain of a variable.
    pub fn get(&self, var: VarId) -> Option<bool> {
        self.values[var.index()]
    }

    /// `true` when the variable is not yet fixed.
    pub fn is_free(&self, var: VarId) -> bool {
        self.values[var.index()].is_none()
    }

    /// Fixes a variable. Returns `false` when the variable was already
    /// fixed to the opposite value (conflict).
    pub fn fix(&mut self, var: VarId, value: bool) -> bool {
        match self.values[var.index()] {
            None => {
                self.values[var.index()] = Some(value);
                true
            }
            Some(v) => v == value,
        }
    }

    /// Number of fixed variables.
    pub fn fixed_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// `true` when every variable is fixed.
    pub fn is_complete(&self) -> bool {
        self.values.iter().all(|v| v.is_some())
    }

    /// Index of the first free variable, if any.
    pub fn first_free(&self) -> Option<VarId> {
        self.values
            .iter()
            .position(|v| v.is_none())
            .map(|i| VarId(i as u32))
    }

    /// Converts to a full assignment, mapping free variables to 0 (the
    /// cheapest completion for non-negative objectives).
    pub fn to_assignment(&self) -> crate::model::Assignment {
        crate::model::Assignment::from_values(
            self.values.iter().map(|v| v.unwrap_or(false)).collect(),
        )
    }

    /// Ids of variables currently fixed to 1.
    pub fn ones(&self) -> impl Iterator<Item = VarId> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == Some(true))
            .map(|(i, _)| VarId(i as u32))
    }
}

/// Result of a propagation run.
#[derive(Debug, Clone, PartialEq)]
pub enum PropagationResult {
    /// A fixpoint was reached without conflicts; the payload is the number
    /// of variables fixed during this run.
    Fixpoint(usize),
    /// Some constraint cannot be satisfied anymore. The payload is the
    /// index of the conflicting constraint.
    Conflict(usize),
}

/// Propagator: precomputes the variable → constraint adjacency of a model.
#[derive(Debug)]
pub struct Propagator<'a> {
    model: &'a Model,
    /// For each variable, the indices of the constraints it appears in.
    var_constraints: Vec<Vec<usize>>,
}

impl<'a> Propagator<'a> {
    /// Builds a propagator for a model.
    pub fn new(model: &'a Model) -> Self {
        let mut var_constraints = vec![Vec::new(); model.num_vars()];
        for (ci, c) in model.constraints().iter().enumerate() {
            for (v, _) in c.expr.terms() {
                var_constraints[v.index()].push(ci);
            }
        }
        Propagator {
            model,
            var_constraints,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// Propagates all constraints to a fixpoint.
    pub fn propagate_all(&self, domains: &mut Domains) -> PropagationResult {
        let all: Vec<usize> = (0..self.model.num_constraints()).collect();
        self.propagate_queue(domains, all)
    }

    /// Propagates starting from the constraints involving `seed_var`
    /// (typically a variable that was just fixed by a branching decision).
    pub fn propagate_from(&self, domains: &mut Domains, seed_var: VarId) -> PropagationResult {
        self.propagate_queue(domains, self.var_constraints[seed_var.index()].clone())
    }

    fn propagate_queue(&self, domains: &mut Domains, mut queue: Vec<usize>) -> PropagationResult {
        const EPS: f64 = 1e-9;
        let mut fixed_total = 0usize;
        let mut in_queue = vec![false; self.model.num_constraints()];
        for &ci in &queue {
            in_queue[ci] = true;
        }
        while let Some(ci) = queue.pop() {
            in_queue[ci] = false;
            let c = &self.model.constraints()[ci];
            // Bounds of the LHS under the current domains.
            let mut min_lhs = 0.0;
            let mut max_lhs = 0.0;
            for (v, coeff) in c.expr.terms() {
                match domains.get(*v) {
                    Some(true) => {
                        min_lhs += coeff;
                        max_lhs += coeff;
                    }
                    Some(false) => {}
                    None => {
                        min_lhs += coeff.min(0.0);
                        max_lhs += coeff.max(0.0);
                    }
                }
            }
            let need_ge = matches!(c.sense, Sense::Ge | Sense::Eq);
            let need_le = matches!(c.sense, Sense::Le | Sense::Eq);
            if need_ge && max_lhs < c.rhs - EPS {
                return PropagationResult::Conflict(ci);
            }
            if need_le && min_lhs > c.rhs + EPS {
                return PropagationResult::Conflict(ci);
            }
            // Try to fix free variables whose "wrong" value would violate
            // the constraint.
            let mut newly_fixed: Vec<VarId> = Vec::new();
            for (v, coeff) in c.expr.terms() {
                if !domains.is_free(*v) {
                    continue;
                }
                let amp = coeff.abs();
                if amp <= EPS {
                    continue;
                }
                if need_ge && max_lhs - amp < c.rhs - EPS {
                    // The variable must contribute its maximum.
                    let value = *coeff > 0.0;
                    if !domains.fix(*v, value) {
                        return PropagationResult::Conflict(ci);
                    }
                    newly_fixed.push(*v);
                } else if need_le && min_lhs + amp > c.rhs + EPS {
                    // The variable must contribute its minimum.
                    let value = *coeff < 0.0;
                    if !domains.fix(*v, value) {
                        return PropagationResult::Conflict(ci);
                    }
                    newly_fixed.push(*v);
                }
            }
            fixed_total += newly_fixed.len();
            for v in newly_fixed {
                for &other in &self.var_constraints[v.index()] {
                    if !in_queue[other] {
                        in_queue[other] = true;
                        queue.push(other);
                    }
                }
                // Re-examine the current constraint as well: fixing one of
                // its variables changes the bounds for the others.
                if !in_queue[ci] {
                    in_queue[ci] = true;
                    queue.push(ci);
                }
            }
        }
        PropagationResult::Fixpoint(fixed_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model};

    #[test]
    fn choose_one_with_single_candidate_is_forced() {
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0);
        m.add_choose_one("only", [x]);
        let p = Propagator::new(&m);
        let mut d = Domains::free(1);
        assert_eq!(p.propagate_all(&mut d), PropagationResult::Fixpoint(1));
        assert_eq!(d.get(x), Some(true));
        assert!(d.is_complete());
    }

    #[test]
    fn implication_propagates_when_antecedent_fixed() {
        // -x + y >= 0, x fixed to 1 forces y = 1.
        let mut m = Model::new();
        let x = m.add_binary("x", 0.0);
        let y = m.add_binary("y", 1.0);
        m.add_implies_any("imp", x, [y]);
        let p = Propagator::new(&m);
        let mut d = Domains::free(2);
        assert!(d.fix(x, true));
        assert_eq!(p.propagate_from(&mut d, x), PropagationResult::Fixpoint(1));
        assert_eq!(d.get(y), Some(true));
    }

    #[test]
    fn cost_constraint_fixes_all_step_variables() {
        // -10 x + 4 y1 + 6 y2 >= 0: x=1 requires both steps.
        let mut m = Model::new();
        let x = m.add_binary("x", 0.0);
        let y1 = m.add_binary("y1", 4.0);
        let y2 = m.add_binary("y2", 6.0);
        let expr = LinExpr::from_terms([(x, -10.0), (y1, 4.0), (y2, 6.0)]);
        m.add_constraint("cost", expr, Sense::Ge, 0.0);
        let p = Propagator::new(&m);
        let mut d = Domains::free(3);
        d.fix(x, true);
        assert_eq!(p.propagate_from(&mut d, x), PropagationResult::Fixpoint(2));
        assert_eq!(d.get(y1), Some(true));
        assert_eq!(d.get(y2), Some(true));
    }

    #[test]
    fn choose_one_excludes_remaining_after_selection() {
        let mut m = Model::new();
        let a = m.add_binary("a", 0.0);
        let b = m.add_binary("b", 0.0);
        let c = m.add_binary("c", 0.0);
        m.add_choose_one("choice", [a, b, c]);
        let p = Propagator::new(&m);
        let mut d = Domains::free(3);
        d.fix(a, true);
        assert!(matches!(
            p.propagate_from(&mut d, a),
            PropagationResult::Fixpoint(2)
        ));
        assert_eq!(d.get(b), Some(false));
        assert_eq!(d.get(c), Some(false));
    }

    #[test]
    fn conflict_detected_when_constraint_unsatisfiable() {
        let mut m = Model::new();
        let a = m.add_binary("a", 0.0);
        let b = m.add_binary("b", 0.0);
        m.add_choose_one("choice", [a, b]);
        let p = Propagator::new(&m);
        let mut d = Domains::free(2);
        d.fix(a, false);
        d.fix(b, false);
        assert!(matches!(
            p.propagate_all(&mut d),
            PropagationResult::Conflict(_)
        ));
    }

    #[test]
    fn fix_conflicting_value_reports_false() {
        let mut d = Domains::free(2);
        assert!(d.fix(VarId(0), true));
        assert!(d.fix(VarId(0), true), "re-fixing to the same value is fine");
        assert!(!d.fix(VarId(0), false));
        assert_eq!(d.fixed_count(), 1);
        assert_eq!(d.first_free(), Some(VarId(1)));
        let ones: Vec<VarId> = d.ones().collect();
        assert_eq!(ones, vec![VarId(0)]);
    }

    #[test]
    fn to_assignment_maps_free_to_zero() {
        let mut d = Domains::free(3);
        d.fix(VarId(1), true);
        let asg = d.to_assignment();
        assert!(!asg.get(VarId(0)));
        assert!(asg.get(VarId(1)));
        assert!(!asg.get(VarId(2)));
    }

    #[test]
    fn le_constraints_prune_upwards() {
        // x + y <= 1 with x = 1 forces y = 0.
        let mut m = Model::new();
        let x = m.add_binary("x", 0.0);
        let y = m.add_binary("y", 0.0);
        m.add_constraint("le", LinExpr::sum([x, y]), Sense::Le, 1.0);
        let p = Propagator::new(&m);
        let mut d = Domains::free(2);
        d.fix(x, true);
        assert!(matches!(
            p.propagate_from(&mut d, x),
            PropagationResult::Fixpoint(1)
        ));
        assert_eq!(d.get(y), Some(false));
    }
}
