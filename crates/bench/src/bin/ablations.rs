//! Runs the ablation studies listed in DESIGN.md: solver warm start,
//! χ-awareness and intermediate-result materialization.

use clash_bench::ablation::{plan_space_ablation, warm_start_ablation};
use clash_bench::print_rows;

fn main() {
    let nq: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let mut rows = warm_start_ablation(nq, 3);
    rows.extend(plan_space_ablation(nq, 3));
    print_rows("Ablations", &rows);
    println!(
        "{:<32} {:<12} {:>14} {:>12}",
        "ablation", "variant", "cost", "runtime[ms]"
    );
    for r in &rows {
        println!(
            "{:<32} {:<12} {:>14.1} {:>12.1}",
            r.ablation, r.variant, r.cost, r.runtime_ms
        );
    }
}
