//! Greedy construction heuristic.
//!
//! The models built from Algorithm 2 consist of *choice constraints*
//! (`Σ x = 1`, one per query and starting relation) plus implication- and
//! cost-constraints that propagate deterministically once a choice is
//! made. The greedy heuristic therefore walks the choice constraints and,
//! for each, commits the alternative whose propagation increases the total
//! objective the least — i.e. the probe order that shares the most step
//! cost with what has already been committed. The result is used as the
//! warm-start incumbent of the branch-and-bound solver and doubles as the
//! "fast, locally optimized" plan the paper mentions deploying while the
//! full optimization is still running (Section VII-C).

use crate::model::{Assignment, Model, Sense, VarId};
use crate::propagation::{Domains, PropagationResult, Propagator};

/// Indices of the model's choice constraints (`Σ x_i = 1` with unit
/// coefficients).
pub(crate) fn choice_constraints(model: &Model) -> Vec<usize> {
    model
        .constraints()
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            c.sense == Sense::Eq
                && (c.rhs - 1.0).abs() < 1e-9
                && c.expr
                    .terms()
                    .iter()
                    .all(|(_, coeff)| (coeff - 1.0).abs() < 1e-9)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Objective value of the variables fixed to 1 in the given domains.
pub(crate) fn fixed_objective(model: &Model, domains: &Domains) -> f64 {
    domains.ones().map(|v| model.objective_coeff(v)).sum()
}

/// `true` when the choice constraint already has a member fixed to 1.
fn satisfied(model: &Model, domains: &Domains, ci: usize) -> bool {
    model.constraints()[ci]
        .expr
        .terms()
        .iter()
        .any(|(v, _)| domains.get(*v) == Some(true))
}

/// Runs the greedy heuristic. Returns a feasible assignment and its
/// objective, or `None` when the heuristic runs into a dead end (which for
/// the optimizer's models means the model itself is infeasible).
pub fn greedy(model: &Model) -> Option<(Assignment, f64)> {
    let propagator = Propagator::new(model);
    let mut domains = Domains::free(model.num_vars());
    if let PropagationResult::Conflict(_) = propagator.propagate_all(&mut domains) {
        return None;
    }
    let choices = choice_constraints(model);

    loop {
        // Pick the unsatisfied choice constraint with the fewest free
        // alternatives (fail-first), then commit its cheapest alternative.
        let mut target: Option<(usize, usize)> = None; // (constraint, free count)
        for &ci in &choices {
            if satisfied(model, &domains, ci) {
                continue;
            }
            let free = model.constraints()[ci]
                .expr
                .terms()
                .iter()
                .filter(|(v, _)| domains.is_free(*v))
                .count();
            if target.map(|(_, best)| free < best).unwrap_or(true) {
                target = Some((ci, free));
            }
        }
        let Some((ci, _)) = target else { break };

        let candidates: Vec<VarId> = model.constraints()[ci]
            .expr
            .terms()
            .iter()
            .map(|(v, _)| *v)
            .filter(|v| domains.is_free(*v))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let mut best: Option<(VarId, Domains, f64)> = None;
        for candidate in candidates {
            let mut trial = domains.clone();
            if !trial.fix(candidate, true) {
                continue;
            }
            if let PropagationResult::Conflict(_) = propagator.propagate_from(&mut trial, candidate)
            {
                continue;
            }
            let objective = fixed_objective(model, &trial);
            if best
                .as_ref()
                .map(|(_, _, obj)| objective < *obj)
                .unwrap_or(true)
            {
                best = Some((candidate, trial, objective));
            }
        }
        let (_, next, _) = best?;
        domains = next;
    }

    // Complete the assignment: free variables default to 0; repair any
    // remaining violated ≥-constraints by switching on the cheapest
    // positive contributors.
    let mut assignment = domains.to_assignment();
    for _ in 0..model.num_constraints() {
        let Some(violated) = model.first_violation(&assignment, 1e-9) else {
            let objective = model.objective_value(&assignment);
            return Some((assignment, objective));
        };
        if !matches!(violated.sense, Sense::Ge | Sense::Eq) {
            return None;
        }
        // Cheapest unset variable with a positive coefficient.
        let mut candidates: Vec<(VarId, f64)> = violated
            .expr
            .terms()
            .iter()
            .filter(|(v, c)| *c > 0.0 && !assignment.get(*v))
            .map(|(v, _)| (*v, model.objective_coeff(*v)))
            .collect();
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        match candidates.first() {
            Some((v, _)) => assignment.set(*v, true),
            None => return None,
        }
    }
    if model.is_feasible(&assignment, 1e-9) {
        let objective = model.objective_value(&assignment);
        Some((assignment, objective))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinExpr;

    /// Two "queries" that can share a step: the greedy must discover that
    /// picking the sharing alternative is cheaper (the Section V-2 worked
    /// example in miniature).
    fn sharing_model() -> (Model, VarId, VarId) {
        let mut m = Model::new();
        // Steps.
        let y_sr = m.add_binary("y_SR", 100.0);
        let y_srt = m.add_binary("y_SRT", 50.0);
        let y_st = m.add_binary("y_ST", 100.0);
        let y_str = m.add_binary("y_STR", 75.0);
        let y_stu = m.add_binary("y_STU", 75.0);
        // q1, start S: x1 = ⟨S,R,T⟩ (cost 150), x2 = ⟨S,T,R⟩ (cost 175).
        let x1 = m.add_binary("x1", 0.0);
        let x2 = m.add_binary("x2", 0.0);
        m.add_choose_one("q1_S", [x1, x2]);
        m.add_constraint(
            "cost_x1",
            LinExpr::from_terms([(x1, -150.0), (y_sr, 100.0), (y_srt, 50.0)]),
            Sense::Ge,
            0.0,
        );
        m.add_constraint(
            "cost_x2",
            LinExpr::from_terms([(x2, -175.0), (y_st, 100.0), (y_str, 75.0)]),
            Sense::Ge,
            0.0,
        );
        // q2, start S: only ⟨S,T,U⟩ (cost 175).
        let x3 = m.add_binary("x3", 0.0);
        m.add_choose_one("q2_S", [x3]);
        m.add_constraint(
            "cost_x3",
            LinExpr::from_terms([(x3, -175.0), (y_st, 100.0), (y_stu, 75.0)]),
            Sense::Ge,
            0.0,
        );
        (m, x1, x2)
    }

    #[test]
    fn greedy_prefers_shared_probe_order() {
        let (m, x1, x2) = sharing_model();
        let (assignment, objective) = greedy(&m).expect("feasible");
        assert!(m.is_feasible(&assignment, 1e-9));
        // Sharing ⟨S,T⟩ between both queries costs 100+75+75 = 250;
        // the locally optimal x1 would cost 100+50+100+75 = 325.
        assert!(
            assignment.get(x2),
            "locally suboptimal but globally optimal order chosen"
        );
        assert!(!assignment.get(x1));
        assert!((objective - 250.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_handles_unconstrained_model() {
        let mut m = Model::new();
        m.add_binary("lonely", 5.0);
        let (assignment, objective) = greedy(&m).expect("feasible");
        assert_eq!(objective, 0.0);
        assert!(m.is_feasible(&assignment, 1e-9));
    }

    #[test]
    fn greedy_detects_infeasible_choice() {
        let mut m = Model::new();
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 1.0);
        m.add_choose_one("choice", [a, b]);
        // Contradiction: both must be 0.
        m.add_constraint("a0", LinExpr::sum([a]), Sense::Le, 0.0);
        m.add_constraint("b0", LinExpr::sum([b]), Sense::Le, 0.0);
        assert!(greedy(&m).is_none());
    }

    #[test]
    fn greedy_repairs_plain_ge_constraints() {
        // No choice constraints at all: x + y >= 1 with costs 3 and 1.
        let mut m = Model::new();
        let x = m.add_binary("x", 3.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("cover", LinExpr::sum([x, y]), Sense::Ge, 1.0);
        let (assignment, objective) = greedy(&m).expect("feasible");
        assert!(m.is_feasible(&assignment, 1e-9));
        assert!(assignment.get(y), "repair picks the cheaper variable");
        assert!((objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn choice_constraint_detection() {
        let (m, ..) = sharing_model();
        let choices = choice_constraints(&m);
        assert_eq!(choices.len(), 2);
        for ci in choices {
            assert_eq!(m.constraints()[ci].sense, Sense::Eq);
        }
    }
}
