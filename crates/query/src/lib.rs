//! # clash-query
//!
//! The query model of the CLASH multi-way stream join reproduction:
//! windowed multi-way equi-join queries, their join graphs, and the
//! plan-space building blocks of Section V of the paper:
//!
//! * [`EquiPredicate`] / [`JoinQuery`] — continuous equi-join queries over
//!   a set of streamed relations (`q = R(a), S(a,b), T(b)` in paper
//!   notation, parsable via [`parse::parse_query`]),
//! * [`QueryGraph`] — the join graph induced by the predicates, used to
//!   avoid cross products,
//! * [`mir`] — enumeration of *materializable intermediate results*
//!   (connected sub-queries),
//! * [`probe_order`] — candidate probe order construction (Algorithm 1),
//! * [`partitioning`] — candidate partitioning attributes for stores.
//!
//! Everything in this crate is purely structural: costs are attached by
//! `clash-cost`, and the ILP that picks among the candidates lives in
//! `clash-optimizer`.

pub mod graph;
pub mod mir;
pub mod parse;
pub mod partitioning;
pub mod predicate;
pub mod probe_order;
pub mod query;

pub use graph::QueryGraph;
pub use mir::{enumerate_mirs, Mir};
pub use parse::parse_query;
pub use partitioning::partition_candidates;
pub use predicate::EquiPredicate;
pub use probe_order::{construct_probe_orders, construct_probe_orders_for_start, ProbeOrder};
pub use query::{JoinQuery, QueryBuilder};
