//! Per-worker shard state: the partitions a worker owns of every store,
//! plus its private metrics and statistics accumulators.
//!
//! A shard executes the same rule sets (Algorithm 3/4) as the sequential
//! engine, restricted to the partitions assigned to its worker. Two
//! mechanisms make the union of all shards' results equal to the
//! sequential engine's result set:
//!
//! * **Sequence guard** — inserts are tagged with the logical sequence
//!   position (`guard`) of the root that produced them and probes skip
//!   state at or above their own guard, so racing ahead never matches
//!   later arrivals.
//! * **Symmetric pending probers** — at stores where probes and inserts
//!   can ride different sender paths (forward-fed MIR stores, and stores
//!   probed by worker-forwarded partials while their inserts sit in the
//!   coordinator's micro-batch buffer — see
//!   [`crate::parallel::router::symmetric_stores`]) an insert may arrive
//!   *after* a probe that should have observed it. Probes at such stores
//!   therefore register as pending probers next to the partition, indexed
//!   by join-key value; when a late insert with a smaller guard lands, it
//!   retro-matches the registered probers locally and emits the missed
//!   results through the same outputs. Every (probe, insert) pair matches
//!   exactly once: at probe time if the insert was applied, retroactively
//!   otherwise. Probers are garbage-collected once the completion
//!   watermark proves no earlier root can still insert.

use crate::engine::{indexed_attrs, store_window};
use crate::metrics::EngineMetrics;
use crate::parallel::router::workers_of_store;
use crate::parallel::worker::{Delivery, Outbox};
use crate::stats_collector::StatsCollector;
use crate::store::StoreInstance;
use clash_catalog::Catalog;
use clash_common::{
    AttrRef, EdgeId, Epoch, EpochConfig, FxHashMap, FxHashSet, QueryId, SlotAccessor, StoreId,
    Timestamp, TraceEventKind, TraceRing, Tuple, Value, Window,
};
use clash_optimizer::{OutputAction, Rule, TopologyPlan};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;

/// Per-store construction data shipped by the coordinator on (re)install:
/// expiry windows and indexed attributes, both derived from the catalog
/// and the plan exactly as the sequential engine derives them.
#[derive(Debug, Clone)]
pub(crate) struct StoreLayout {
    /// Expiry window per store.
    pub windows: FxHashMap<StoreId, Window>,
    /// Indexed attributes per store.
    pub indexed: FxHashMap<StoreId, Vec<AttrRef>>,
}

impl StoreLayout {
    /// Derives the layout for a plan from the catalog.
    pub fn derive(catalog: &Catalog, plan: &TopologyPlan) -> StoreLayout {
        let mut windows = FxHashMap::default();
        let mut indexed = FxHashMap::default();
        for def in &plan.stores {
            windows.insert(def.id, store_window(catalog, def.descriptor.relations));
            indexed.insert(def.id, indexed_attrs(plan, def.id));
        }
        StoreLayout { windows, indexed }
    }
}

/// A probe that ran against a forward-fed store and stays registered until
/// the watermark proves no earlier insert is still in flight.
#[derive(Debug)]
struct PendingProber {
    /// Logical sequence position of the probe.
    guard: u64,
    /// The probing tuple.
    tuple: Tuple,
    /// Partitions (owned by this worker) the probe inspected.
    partitions: Vec<usize>,
    /// Rule key whose probe rules (predicates, outputs) apply.
    key: (StoreId, EdgeId),
    /// Wall-clock ingest instant of the probe's root.
    started: Instant,
}

/// The pending probers of one forward-fed store, indexed by join-key
/// value so a late insert retro-matches in O(candidate matches) instead
/// of scanning every in-flight prober.
///
/// A prober whose rule set carries at least one equi-predicate is keyed
/// by `(edge, probe-side value of the first predicate)` — the same
/// predicate the store's own hash index would drive — and a late insert
/// looks up the stored-side value of that predicate. Probers without a
/// usable key (no predicates, or the probing tuple lacks the attribute)
/// fall back to the `unkeyed` list and are scanned as before. Keying is
/// purely a pre-filter: every candidate still runs the full predicate,
/// window and guard checks, so a hash hit can never create a spurious
/// match and a hash miss can never lose one (`join_eq` matches imply
/// `Value` equality, and `Null` never `join_eq`-matches anything).
#[derive(Debug, Default)]
struct PendingSet {
    /// edge -> join-key value -> probers awaiting a matching insert.
    /// (Nested rather than keyed by `(EdgeId, Value)` so the insert-side
    /// lookup can borrow the inserted tuple's value — no clone, no
    /// allocation on the store hot path. Fx-hashed: the keys are trusted
    /// join-key values, and the lookup runs once per symmetric insert.)
    keyed: FxHashMap<EdgeId, FxHashMap<Value, Vec<PendingProber>>>,
    /// Probers that could not be keyed; matched by full scan.
    unkeyed: Vec<PendingProber>,
    /// Stored-side accessor of the keying predicate per registered edge
    /// (what a late insert resolves its lookup value with).
    edge_keys: Vec<(EdgeId, SlotAccessor)>,
}

impl PendingSet {
    fn is_empty(&self) -> bool {
        self.keyed.is_empty() && self.unkeyed.is_empty()
    }

    /// Registers a prober under its join-key value (or unkeyed).
    fn register(&mut self, prober: PendingProber, key: Option<(SlotAccessor, Value)>) {
        let edge = prober.key.1;
        match key {
            Some((stored_slot, value)) if !value.is_null() => {
                if !self.edge_keys.iter().any(|(e, _)| *e == edge) {
                    self.edge_keys.push((edge, stored_slot));
                }
                self.keyed
                    .entry(edge)
                    .or_default()
                    .entry(value)
                    .or_default()
                    .push(prober);
            }
            // No usable key (predicate-less rule set, missing attribute,
            // or a Null probe value): fall back to the scanned list.
            _ => self.unkeyed.push(prober),
        }
    }

    /// Drops probers whose guard can no longer receive late inserts.
    fn gc(&mut self, watermark: u64) {
        self.keyed.retain(|_, by_value| {
            by_value.retain(|_, probers| {
                probers.retain(|p| p.guard > watermark + 1);
                !probers.is_empty()
            });
            !by_value.is_empty()
        });
        self.unkeyed.retain(|p| p.guard > watermark + 1);
    }
}

/// Records one emitted join result: counts it, streams it to the
/// subscription (clearing a hung-up subscriber) and retains it for the
/// coordinator when requested. The single emission path of both the
/// probe-time and the retroactive match — a free function over disjoint
/// fields so call sites holding store/pending borrows can still use it.
fn emit_result(
    metrics: &mut EngineMetrics,
    results: &mut Vec<(QueryId, Tuple)>,
    subscription: &mut Option<Sender<(QueryId, Tuple)>>,
    forward_results: bool,
    query: QueryId,
    joined: &Tuple,
    started: Instant,
) {
    *metrics.results.entry(query).or_default() += 1;
    metrics.record_latency(query, started.elapsed());
    if let Some(tx) = subscription {
        if tx.send((query, joined.clone())).is_err() {
            // The subscriber hung up: stop paying the per-result clone.
            *subscription = None;
        }
    }
    if forward_results {
        results.push((query, joined.clone()));
    }
}

/// The state owned by one worker thread.
#[derive(Debug)]
pub(crate) struct ShardState {
    workers: usize,
    plan: Arc<TopologyPlan>,
    stores: FxHashMap<StoreId, StoreInstance>,
    /// Forward-fed stores requiring symmetric probing.
    symmetric: Arc<FxHashSet<StoreId>>,
    /// Pending probers per forward-fed store, indexed by join-key value.
    pending: FxHashMap<StoreId, PendingSet>,
    epoch: EpochConfig,
    /// Epoch lag before cold epochs freeze into columnar segments
    /// (`EngineConfig::freeze_after_epochs`; `0` disables the cold tier).
    freeze_after: u64,
    /// Metrics delta since the last collection barrier.
    pub metrics: EngineMetrics,
    /// Statistics delta since the last collection barrier.
    pub stats: StatsCollector,
    /// Emitted results since the last collection barrier (only filled when
    /// the coordinator collects results or has a sink registered).
    pub results: Vec<(QueryId, Tuple)>,
    /// Whether emitted result tuples are retained for the coordinator.
    pub forward_results: bool,
    /// Streaming result subscription: emitted results are sent here the
    /// moment they are produced, without waiting for a barrier.
    pub subscription: Option<Sender<(QueryId, Tuple)>>,
    /// This worker's trace-event ring (drained into barrier acks).
    pub trace: TraceRing,
}

impl ShardState {
    /// Creates the shard with instantiated (empty) stores for `plan`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        workers: usize,
        plan: Arc<TopologyPlan>,
        layout: &StoreLayout,
        symmetric: Arc<FxHashSet<StoreId>>,
        epoch: EpochConfig,
        freeze_after: u64,
        forward_results: bool,
        trace: TraceRing,
    ) -> Self {
        let mut shard = ShardState {
            workers,
            plan: Arc::new(TopologyPlan::default()),
            stores: FxHashMap::default(),
            symmetric: Arc::new(FxHashSet::default()),
            pending: FxHashMap::default(),
            epoch,
            freeze_after,
            metrics: EngineMetrics::default(),
            stats: StatsCollector::new(epoch.length),
            results: Vec::new(),
            forward_results,
            subscription: None,
            trace,
        };
        shard.install(plan, layout, symmetric);
        shard
    }

    /// Replaces the symmetric store set in place (the multi-producer
    /// widening). Already-registered pending probers stay registered: the
    /// exactly-once argument holds for any symmetric set, so widening
    /// mid-stream is safe without a drain.
    pub fn set_symmetric(&mut self, symmetric: Arc<FxHashSet<StoreId>>) {
        self.symmetric = symmetric;
    }

    /// Installs a plan, carrying over the state of stores whose descriptor
    /// key matches (Section VI-A) and dropping the rest — the same
    /// carry-over rule as the sequential engine, applied shard-locally.
    /// Installs only happen after a full drain, so no probers are pending.
    pub fn install(
        &mut self,
        plan: Arc<TopologyPlan>,
        layout: &StoreLayout,
        symmetric: Arc<FxHashSet<StoreId>>,
    ) {
        let mut existing: FxHashMap<String, StoreInstance> = self
            .stores
            .drain()
            .map(|(_, s)| (s.descriptor.key(), s))
            .collect();
        for def in &plan.stores {
            let window = layout.windows.get(&def.id).copied().unwrap_or_default();
            let indexed = layout.indexed.get(&def.id).cloned().unwrap_or_default();
            let instance = match existing.remove(&def.descriptor.key()) {
                Some(mut s) => {
                    for attr in indexed {
                        s.add_indexed_attr(attr);
                    }
                    s.window = window;
                    s
                }
                None => StoreInstance::new(def.descriptor, window, indexed),
            };
            self.stores.insert(def.id, instance);
        }
        self.plan = plan;
        self.symmetric = symmetric;
        self.pending.clear();
        self.trace
            .record(TraceEventKind::PlanInstall, 0, self.stores.len() as u64);
    }

    /// Executes the rules of one delivery, pushing generated forwards into
    /// `out` and recording emissions locally.
    pub fn process(&mut self, delivery: &Delivery, out: &mut Outbox) {
        let plan = Arc::clone(&self.plan);
        let key = (delivery.target.store, delivery.target.edge);
        let Some(rules) = plan.rules.get(&key) else {
            return;
        };
        let epoch = self.epoch.epoch_of(delivery.tuple.ts);
        let mut probed = false;
        // Join-key of the probe for pending-prober indexing: stored-side
        // accessor and probe-side value of the first predicate.
        let mut probe_key: Option<(SlotAccessor, Value)> = None;
        for rule in rules {
            match rule {
                Rule::Store => {
                    let Some(partition) = delivery.store_partition else {
                        continue;
                    };
                    let store = self
                        .stores
                        .get_mut(&delivery.target.store)
                        .expect("store exists");
                    store.insert_seq(partition, epoch, delivery.tuple.clone(), delivery.guard);
                    self.trace.record(
                        TraceEventKind::Insert,
                        u64::from(delivery.target.store.0),
                        delivery.guard,
                    );
                    if self.symmetric.contains(&delivery.target.store) {
                        self.retro_probe(&plan, delivery.target.store, partition, delivery, out);
                    }
                }
                Rule::Probe {
                    predicates,
                    outputs,
                } => {
                    if delivery.probe_partitions.is_empty() {
                        continue;
                    }
                    probed = true;
                    let store = self
                        .stores
                        .get(&delivery.target.store)
                        .expect("store exists");
                    if probe_key.is_none() && self.symmetric.contains(&delivery.target.store) {
                        probe_key = store.predicate_sides(predicates).next().and_then(
                            |(stored_side, probe_side)| {
                                SlotAccessor::of(&probe_side)
                                    .get(&delivery.tuple)
                                    .map(|v| (SlotAccessor::of(&stored_side), v.clone()))
                            },
                        );
                    }
                    let window = store.window;
                    let lo = self.epoch.epoch_of(window.horizon(delivery.tuple.ts));
                    let epochs: Vec<Epoch> = (lo.0..=epoch.0).map(Epoch).collect();
                    // Statistics must aggregate to what the sequential
                    // engine records: one probe observation against the
                    // whole-store size per logical probe. A broadcast probe
                    // is split across the sharing workers, so each
                    // contributes its local store slice (the slices sum to
                    // the whole store) and only the worker holding
                    // partition 0 counts the probe itself. A hashed probe
                    // runs on one worker, which extrapolates the whole
                    // store size from its shard.
                    let counts_probe =
                        !delivery.broadcast || delivery.probe_partitions.contains(&0);
                    let est_size = if delivery.broadcast {
                        store.len() as u64
                    } else {
                        let sharing = workers_of_store(store.parallelism(), self.workers) as u64;
                        store.len() as u64 * sharing
                    };
                    let mut matches = Vec::new();
                    for &p in &delivery.probe_partitions {
                        matches.extend(store.probe_seq(
                            p,
                            &epochs,
                            &delivery.tuple,
                            predicates,
                            Some(delivery.guard),
                        ));
                    }
                    if counts_probe {
                        self.metrics.probes += 1;
                    }
                    self.trace.record(
                        TraceEventKind::Probe,
                        u64::from(delivery.target.store.0),
                        matches.len() as u64,
                    );
                    self.stats.record_probe_obs(
                        epoch,
                        predicates,
                        u64::from(counts_probe),
                        matches.len() as u64,
                        est_size,
                    );
                    for matched in matches {
                        let Some(joined) = delivery.tuple.join(&matched) else {
                            continue;
                        };
                        for action in outputs {
                            match action {
                                OutputAction::Emit { query } => {
                                    emit_result(
                                        &mut self.metrics,
                                        &mut self.results,
                                        &mut self.subscription,
                                        self.forward_results,
                                        *query,
                                        &joined,
                                        delivery.started,
                                    );
                                }
                                OutputAction::Forward(next) => {
                                    out.forward(
                                        &plan,
                                        self.workers,
                                        *next,
                                        joined.clone(),
                                        delivery.guard,
                                        &delivery.root,
                                        delivery.started,
                                        &mut self.metrics,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        // Register the probe for symmetric completion: a later-arriving
        // insert with a smaller guard must still find it (via the join-key
        // index when the probe carries one).
        if probed && self.symmetric.contains(&delivery.target.store) {
            self.pending
                .entry(delivery.target.store)
                .or_default()
                .register(
                    PendingProber {
                        guard: delivery.guard,
                        tuple: delivery.tuple.clone(),
                        partitions: delivery.probe_partitions.clone(),
                        key,
                        started: delivery.started,
                    },
                    probe_key,
                );
        }
    }

    /// Matches a just-applied insert against the registered pending
    /// probers of the store: the symmetric half of probe processing. Only
    /// probers with a *larger* guard qualify (they logically ran after
    /// this insert), and all timestamp/window/predicate checks mirror
    /// `StoreInstance::probe` exactly. Candidates come from the join-key
    /// index (plus the unkeyed scan list), so the cost is proportional to
    /// the probers that can actually match, not to everything in flight.
    fn retro_probe(
        &mut self,
        plan: &TopologyPlan,
        store_id: StoreId,
        partition: usize,
        delivery: &Delivery,
        out: &mut Outbox,
    ) {
        let Some(pending) = self.pending.get(&store_id) else {
            return;
        };
        let store = self.stores.get(&store_id).expect("store exists");
        let inserted = &delivery.tuple;
        let mut candidates: Vec<&PendingProber> = Vec::new();
        for (edge, stored_slot) in &pending.edge_keys {
            let Some(value) = stored_slot.get(inserted) else {
                continue;
            };
            if value.is_null() {
                continue;
            }
            if let Some(probers) = pending.keyed.get(edge).and_then(|m| m.get(value)) {
                candidates.extend(probers.iter());
            }
        }
        candidates.extend(pending.unkeyed.iter());
        for prober in candidates {
            if delivery.guard >= prober.guard || !prober.partitions.contains(&partition) {
                continue;
            }
            if inserted.ts >= prober.tuple.ts
                || !store.window.contains(prober.tuple.ts, inserted.ts)
            {
                continue;
            }
            let Some(rules) = plan.rules.get(&prober.key) else {
                continue;
            };
            for rule in rules {
                let Rule::Probe {
                    predicates,
                    outputs,
                } = rule
                else {
                    continue;
                };
                let all_hold =
                    store
                        .predicate_sides(predicates)
                        .all(|(stored_side, probe_side)| {
                            matches!(
                                (inserted.get(&stored_side), prober.tuple.get(&probe_side)),
                                (Some(sv), Some(pv)) if sv.join_eq(pv)
                            )
                        });
                if !all_hold {
                    continue;
                }
                let Some(joined) = prober.tuple.join(inserted) else {
                    continue;
                };
                // The sequential engine would have counted this match
                // inside the original probe's observation, so contribute
                // the match without another probe count or size share.
                self.stats.record_probe_obs(
                    self.epoch.epoch_of(prober.tuple.ts),
                    predicates,
                    0,
                    1,
                    0,
                );
                for action in outputs {
                    match action {
                        OutputAction::Emit { query } => {
                            emit_result(
                                &mut self.metrics,
                                &mut self.results,
                                &mut self.subscription,
                                self.forward_results,
                                *query,
                                &joined,
                                prober.started,
                            );
                        }
                        OutputAction::Forward(next) => {
                            out.forward(
                                plan,
                                self.workers,
                                *next,
                                joined.clone(),
                                prober.guard,
                                &delivery.root,
                                prober.started,
                                &mut self.metrics,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Drops pending probers that can no longer receive late inserts: all
    /// roots below their guard have completed (watermark >= guard - 1).
    pub fn gc_probers(&mut self, watermark: u64) {
        for pending in self.pending.values_mut() {
            pending.gc(watermark);
        }
        self.pending.retain(|_, p| !p.is_empty());
    }

    /// Expires out-of-window tuples from every owned partition, given the
    /// maximum stream timestamp observed by the coordinator. Epochs that
    /// lag the stream clock by `freeze_after` epochs are first compacted
    /// into frozen columnar segments (the pass rides the same expiry /
    /// collection barriers the epoch driver already triggers).
    pub fn expire(&mut self, upto: Timestamp) -> usize {
        if self.freeze_after > 0 {
            let clock = self.epoch.epoch_of(upto);
            let freeze_horizon = Epoch(clock.0.saturating_sub(self.freeze_after));
            for (id, store) in self.stores.iter_mut() {
                let built = store.freeze_before(freeze_horizon);
                if built > 0 {
                    self.trace
                        .record(TraceEventKind::Compaction, u64::from(id.0), built as u64);
                }
            }
        }
        let mut removed = 0;
        for store in self.stores.values_mut() {
            let horizon = store.window.horizon(upto);
            removed += store.expire(horizon);
        }
        self.trace.record(TraceEventKind::Expire, removed as u64, 0);
        removed
    }

    /// `(tuples, bytes)` currently held by this shard.
    pub fn store_totals(&self) -> (usize, usize) {
        (
            self.stores.values().map(|s| s.len()).sum(),
            self.stores.values().map(|s| s.bytes()).sum(),
        )
    }

    /// Per-store size and index shape of this shard, sorted by store id —
    /// shipped in barrier acks for the telemetry surface.
    pub fn store_detail(&self) -> Vec<StoreDetail> {
        let mut detail: Vec<StoreDetail> = self
            .stores
            .iter()
            .map(|(id, store)| {
                let (posting_lists, spilled_postings) = store.posting_stats();
                let (segments, segment_bytes) = store.segment_stats();
                StoreDetail {
                    store: *id,
                    tuples: store.len(),
                    bytes: store.bytes(),
                    posting_lists,
                    spilled_postings,
                    segments,
                    segment_bytes,
                    compactions: store.compactions(),
                }
            })
            .collect();
        detail.sort_by_key(|d| d.store.0);
        detail
    }
}

/// Per-store shard-local sizes for the telemetry surface: what one worker
/// holds of a store, summed across workers by the coordinator.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StoreDetail {
    /// The store.
    pub store: StoreId,
    /// Tuples held by this shard's partitions.
    pub tuples: usize,
    /// Approximate bytes held by this shard's partitions.
    pub bytes: usize,
    /// Distinct (attribute, value) posting lists in the hash indexes.
    pub posting_lists: usize,
    /// Posting lists spilled past the inline capacity to a heap vector.
    pub spilled_postings: usize,
    /// Frozen columnar segments currently held (cold tier).
    pub segments: usize,
    /// Live flattened bytes held by the frozen segments.
    pub segment_bytes: usize,
    /// Segments built by this shard's stores since startup (monotone).
    pub compactions: u64,
}
