//! Ablation studies called out in DESIGN.md:
//!
//! * greedy warm start on/off for the branch-and-bound solver,
//! * broadcast-factor (χ) awareness on/off in the plan space,
//! * intermediate-result materialization on/off.

use clash_datagen::{SyntheticEnv, SyntheticWorkloadConfig};
use clash_ilp::{solve, SolverConfig};
use clash_optimizer::{
    build_ilp, enumerate_candidates, PlanSpaceConfig, Planner, PlannerConfig, Strategy,
};
use serde::Serialize;

/// One ablation measurement.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Which knob was toggled.
    pub ablation: String,
    /// Configuration label (e.g. "on" / "off").
    pub variant: String,
    /// Resulting plan cost (or objective).
    pub cost: f64,
    /// Runtime in milliseconds.
    pub runtime_ms: f64,
}

fn workload(seed: u64, nq: usize) -> (SyntheticEnv, Vec<clash_query::JoinQuery>) {
    let mut env = SyntheticEnv::new(
        SyntheticWorkloadConfig {
            num_relations: 10,
            parallelism: 4,
            ..SyntheticWorkloadConfig::default()
        },
        seed,
    )
    .expect("env");
    let queries = env.random_queries(nq, 3).expect("queries");
    (env, queries)
}

/// Solver warm-start ablation: same model solved with and without the
/// greedy incumbent.
pub fn warm_start_ablation(nq: usize, seed: u64) -> Vec<AblationRow> {
    let (env, queries) = workload(seed, nq);
    let candidates = enumerate_candidates(
        &env.catalog,
        &env.stats,
        &queries,
        &PlanSpaceConfig::default(),
    );
    let artifacts = build_ilp(&candidates);
    let mut rows = Vec::new();
    for (variant, disable) in [("warm start", false), ("cold start", true)] {
        let started = std::time::Instant::now();
        let solution = solve(
            &artifacts.model,
            SolverConfig {
                disable_warm_start: disable,
                node_limit: 20_000,
                time_limit: std::time::Duration::from_secs(2),
                ..SolverConfig::default()
            },
        );
        rows.push(AblationRow {
            ablation: "solver warm start".into(),
            variant: variant.into(),
            cost: solution.objective,
            runtime_ms: started.elapsed().as_secs_f64() * 1000.0,
        });
    }
    rows
}

/// Plan-space ablations: χ-awareness (partitioning) and MIR
/// materialization.
pub fn plan_space_ablation(nq: usize, seed: u64) -> Vec<AblationRow> {
    let (env, queries) = workload(seed, nq);
    let mut rows = Vec::new();
    let variants = [
        (
            "partitioning (χ) awareness",
            "on",
            PlanSpaceConfig::default(),
        ),
        (
            "partitioning (χ) awareness",
            "off",
            PlanSpaceConfig {
                partitioning_enabled: false,
                ..PlanSpaceConfig::default()
            },
        ),
        (
            "intermediate materialization",
            "off",
            PlanSpaceConfig {
                materialize_intermediates: false,
                ..PlanSpaceConfig::default()
            },
        ),
    ];
    for (ablation, variant, plan_space) in variants {
        let started = std::time::Instant::now();
        let planner = Planner::new(
            &env.catalog,
            &env.stats,
            PlannerConfig {
                plan_space,
                ..PlannerConfig::default()
            },
        );
        let report = planner.plan(&queries, Strategy::GlobalIlp).expect("plan");
        rows.push(AblationRow {
            ablation: ablation.into(),
            variant: variant.into(),
            cost: report.shared_cost,
            runtime_ms: started.elapsed().as_secs_f64() * 1000.0,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_start_does_not_hurt_solution_quality() {
        let rows = warm_start_ablation(8, 5);
        assert_eq!(rows.len(), 2);
        let warm = rows.iter().find(|r| r.variant == "warm start").unwrap();
        let cold = rows.iter().find(|r| r.variant == "cold start").unwrap();
        assert!(warm.cost <= cold.cost + 1e-6);
    }

    #[test]
    fn chi_unaware_plans_cost_at_least_as_much() {
        let rows = plan_space_ablation(8, 5);
        let on = rows
            .iter()
            .find(|r| r.ablation.contains("χ") && r.variant == "on")
            .unwrap();
        let off = rows
            .iter()
            .find(|r| r.ablation.contains("χ") && r.variant == "off")
            .unwrap();
        // Without partition awareness every probe into a parallel store
        // broadcasts, so the modeled cost cannot be lower.
        assert!(off.cost >= on.cost - 1e-6);
    }
}
