//! The [`ParallelEngine`] coordinator: ingests tuples, routes them to the
//! worker threads, runs drain/collection barriers at epoch boundaries and
//! aggregates per-worker metrics and statistics deltas.

use crate::engine::{EngineConfig, EngineControl, ResultSink};
use crate::ingest::flusher::Flusher;
use crate::ingest::{SourceHandle, SourceRegistry, SourceSlot};
use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::parallel::router::{
    route_root, symmetric_stores, symmetric_stores_multi, Progress, RootHandle,
};
use crate::parallel::shard::StoreLayout;
use crate::parallel::worker::{run_worker, WorkerAck, WorkerCtx, WorkerMsg};
use crate::stats_collector::StatsCollector;
use clash_catalog::Catalog;
use clash_common::{ClashError, EpochConfig, QueryId, Result, StoreId, Timestamp, Tuple};
use clash_optimizer::TopologyPlan;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

/// Sharded, multi-threaded execution engine for a
/// [`TopologyPlan`]: the parallel counterpart of
/// [`crate::engine::LocalEngine`].
///
/// One worker thread is spawned per shard; store partitions (the
/// catalog's `parallelism` field) map onto workers round-robin, so with as
/// many workers as the widest store's parallelism every partition gets a
/// dedicated thread, as in the paper's Storm deployment. Tuples are routed
/// by [`crate::store::partition_hash`] over mpsc channels; per-worker
/// metrics and statistics deltas are merged at collection barriers
/// (`flush`/`snapshot`/`install_plan`), so the adaptive controller and the
/// ILP re-optimization pipeline observe the same aggregate state as with
/// the sequential engine.
///
/// Result-set equivalence with `LocalEngine` on identical input is
/// maintained by the sequence-number probe guard and the symmetric
/// pending-prober mechanism documented in [`crate::parallel`].
pub struct ParallelEngine {
    catalog: Arc<Catalog>,
    config: EngineConfig,
    workers: usize,
    plan: Arc<TopologyPlan>,
    symmetric: Arc<HashSet<StoreId>>,
    senders: Vec<Sender<WorkerMsg>>,
    ack_rx: Receiver<WorkerAck>,
    progress: Arc<Progress>,
    handles: Vec<JoinHandle<()>>,
    /// Next root sequence number to allocate (roots start at 1). Shared
    /// with every open [`SourceHandle`], so concurrent producers draw
    /// from one logical serial order.
    next_seq: Arc<AtomicU64>,
    /// Every registered producer slot — the coordinator's own micro-batch
    /// buffer ([`Self::coord_buf`]) plus one per open source — shared with
    /// the time-trigger flusher and the backpressure sweeps.
    sources: SourceRegistry,
    /// Sources handed out so far (drives the multi-producer widening).
    sources_opened: usize,
    /// Whether the widened multi-producer symmetric set is installed.
    multi_symmetric: bool,
    /// Background time-trigger flusher sweeping all registered slots.
    flusher: Option<Flusher>,
    /// The coordinator's own producer slot: micro-batch buffer coalescing
    /// per-ingest sends across ingests. Registered in [`Self::sources`]
    /// so the flusher and admission sweeps cover it like any source's.
    coord_buf: Arc<SourceSlot>,
    metrics: EngineMetrics,
    stats: StatsCollector,
    results: Vec<(QueryId, Tuple)>,
    sink: Option<ResultSink>,
    forward_results: bool,
    max_ts: Timestamp,
    since_expiry: u64,
    token: u64,
    worker_store_totals: Vec<(usize, usize)>,
    worker_busy: Vec<StdDuration>,
    /// Wall-clock span from first ingest after a barrier to barrier end.
    active_since: Option<Instant>,
    wall_busy: StdDuration,
}

impl std::fmt::Debug for ParallelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEngine")
            .field("workers", &self.workers)
            .field("stores", &self.plan.num_stores())
            .field("ingested", &self.metrics.tuples_ingested)
            .finish()
    }
}

impl ParallelEngine {
    /// Creates an engine executing `plan` across `workers` threads.
    /// `workers == 0` selects one worker per partition of the widest store
    /// in the plan (honoring the catalog's parallelism).
    pub fn new(catalog: Catalog, plan: TopologyPlan, config: EngineConfig, workers: usize) -> Self {
        let workers = if workers == 0 {
            auto_workers(&plan)
        } else {
            workers
        };
        let plan = Arc::new(plan);
        let layout = Arc::new(StoreLayout::derive(&catalog, &plan));
        let symmetric = Arc::new(symmetric_stores(&plan));
        let progress = Arc::new(Progress::default());
        let (ack_tx, ack_rx) = channel();
        let mut senders = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let forward_results = config.collect_results;
        let mut handles = Vec::with_capacity(workers);
        for (index, rx) in receivers.into_iter().enumerate() {
            let ctx = WorkerCtx {
                index,
                workers,
                senders: senders.clone(),
                ack_tx: ack_tx.clone(),
                progress: progress.clone(),
                symmetric: symmetric.clone(),
                epoch: config.epoch,
                plan: plan.clone(),
                layout: layout.clone(),
                forward_results,
            };
            let handle = std::thread::Builder::new()
                .name(format!("clash-worker-{index}"))
                .spawn(move || run_worker(ctx, rx))
                .expect("spawn worker thread");
            handles.push(handle);
        }
        let coord_buf = Arc::new(SourceSlot::new(
            plan.clone(),
            workers,
            config.micro_batch,
            config.epoch,
        ));
        let sources: SourceRegistry = Arc::new(Mutex::new(vec![coord_buf.clone()]));
        // The flusher runs whenever the time trigger is enabled, so even
        // a fully idle producer (the coordinator included) cannot strand
        // buffered deliveries past `micro_batch_max_delay`.
        let flusher = (config.micro_batch_max_delay > StdDuration::ZERO).then(|| {
            Flusher::spawn(
                sources.clone(),
                senders.clone(),
                config.micro_batch_max_delay,
            )
        });
        ParallelEngine {
            catalog: Arc::new(catalog),
            config,
            workers,
            plan,
            symmetric,
            senders,
            ack_rx,
            progress,
            handles,
            next_seq: Arc::new(AtomicU64::new(1)),
            sources,
            sources_opened: 0,
            multi_symmetric: false,
            flusher,
            coord_buf,
            metrics: EngineMetrics::default(),
            stats: StatsCollector::new(config.epoch.length),
            results: Vec::new(),
            sink: None,
            forward_results,
            max_ts: Timestamp::ZERO,
            since_expiry: 0,
            token: 0,
            worker_store_totals: vec![(0, 0); workers],
            worker_busy: vec![StdDuration::ZERO; workers],
            active_since: None,
            wall_busy: StdDuration::ZERO,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Epoch configuration in use.
    pub fn epoch_config(&self) -> EpochConfig {
        self.config.epoch
    }

    /// Registers a sink invoked (at barriers) for every emitted result.
    /// Must be called before streaming for complete coverage.
    pub fn set_sink(&mut self, sink: ResultSink) {
        self.sink = Some(sink);
        self.forward_results = true;
        self.coord_buf.flush_to(&self.senders);
        for s in &self.senders {
            let _ = s.send(WorkerMsg::ForwardResults(true));
        }
    }

    /// Opens a concurrent ingestion source: the returned [`SourceHandle`]
    /// can be moved to a producer thread and pushed independently of this
    /// engine handle (and of every other source). Opening a second
    /// producer switches the workers to the widened multi-producer
    /// symmetric set (see [`crate::ingest`]); with a single source the
    /// delivery order stays serial and the narrow set suffices.
    pub fn open_source(&mut self) -> SourceHandle {
        // Everything the coordinator ingested so far must be enqueued
        // before the new source's first push can be.
        self.coord_buf.flush_to(&self.senders);
        if self.sources_opened >= 1 {
            self.widen_symmetric();
        }
        self.sources_opened += 1;
        let slot = Arc::new(SourceSlot::new(
            self.plan.clone(),
            self.workers,
            self.config.micro_batch,
            self.config.epoch,
        ));
        self.sources
            .lock()
            .expect("source registry")
            .push(slot.clone());
        SourceHandle::new(
            slot,
            self.sources.clone(),
            self.senders.clone(),
            self.next_seq.clone(),
            self.progress.clone(),
            self.catalog.clone(),
            self.config.epoch,
            self.config.max_inflight_roots,
            self.config.micro_batch_max_delay,
        )
    }

    /// Subscribes to the result stream: every join result emitted from
    /// now on is delivered on the returned channel *as it is produced* on
    /// the workers — between barriers, not only at epoch ends. The
    /// channel disconnects when the engine shuts down. A later call
    /// replaces the subscription (the previous receiver disconnects).
    ///
    /// The channel is unbounded by design: a bounded one would block
    /// workers against a stalled subscriber, and the engine thread
    /// blocking in a barrier while holding the receiver would then
    /// deadlock. The `max_inflight_roots` gate bounds *input*; the
    /// subscriber must keep pace with the *output* it asked for (join
    /// amplification means one admitted root can emit many results).
    pub fn subscribe(&mut self) -> Receiver<(QueryId, Tuple)> {
        let (tx, rx) = channel();
        self.coord_buf.flush_to(&self.senders);
        for s in &self.senders {
            let _ = s.send(WorkerMsg::Subscribe(tx.clone()));
        }
        rx
    }

    /// Number of ingestion sources opened over the engine's lifetime
    /// (dropped handles included).
    pub fn sources_open(&self) -> usize {
        self.sources_opened
    }

    /// Roots currently in flight: allocated sequence numbers not yet
    /// covered by the completion watermark (what the
    /// `max_inflight_roots` backpressure gate bounds).
    pub fn inflight(&self) -> u64 {
        let allocated = self.next_seq.load(Ordering::Acquire).saturating_sub(1);
        allocated.saturating_sub(self.progress.watermark())
    }

    /// Installs the widened multi-producer symmetric set on every worker.
    /// Safe mid-stream: the exactly-once pending-prober argument holds
    /// for any symmetric set, and the message is enqueued before any
    /// delivery of the producer that triggered the widening.
    fn widen_symmetric(&mut self) {
        if self.multi_symmetric {
            return;
        }
        self.multi_symmetric = true;
        self.symmetric = Arc::new(symmetric_stores_multi(&self.plan));
        self.coord_buf.flush_to(&self.senders);
        for s in &self.senders {
            let _ = s.send(WorkerMsg::SetSymmetric(self.symmetric.clone()));
        }
    }

    /// Backpressure gate of the coordinator's own ingest path (the
    /// source-side equivalent lives in [`SourceHandle`]).
    fn wait_admission(&mut self) {
        let cap = self.config.max_inflight_roots;
        if cap == 0 {
            return;
        }
        let mut since_liveness_check = Instant::now();
        loop {
            let allocated = self.next_seq.load(Ordering::Acquire).saturating_sub(1);
            if (allocated.saturating_sub(self.progress.watermark()) as usize) < cap {
                return;
            }
            // Any registered slot's buffered deliveries (our own
            // included) can be what the watermark is stuck on, and
            // sources keep admitting and buffering while we wait — sweep
            // every iteration (cheap when the buffers are empty), exactly
            // like the drain barrier's straggler sweep.
            self.flush_sources();
            self.progress.wait_for_change(StdDuration::from_millis(1));
            if since_liveness_check.elapsed() >= StdDuration::from_secs(1) {
                since_liveness_check = Instant::now();
                if let Some(dead) = self.handles.iter().position(|h| h.is_finished()) {
                    panic!(
                        "parallel engine backpressure stalled: worker {dead} died \
                         (watermark {})",
                        self.progress.watermark()
                    );
                }
            }
        }
    }

    /// Ingests one input tuple, routing it to the owning shards. Join
    /// results materialize asynchronously on the workers; they are counted
    /// and collected at the next barrier ([`Self::flush`] /
    /// [`Self::snapshot`]), so this always returns 0 pending results.
    pub fn ingest(&mut self, relation: clash_common::RelationId, tuple: Tuple) -> Result<u64> {
        if self.handles.is_empty() {
            return Err(ClashError::Runtime(
                "parallel engine has been shut down".into(),
            ));
        }
        if self.catalog.relation(relation).is_err() {
            return Err(ClashError::unknown(format!("relation {relation}")));
        }
        if self.sources_opened > 0 && !self.multi_symmetric {
            // The coordinator becomes a second concurrent producer beside
            // the open source: widen the symmetric set before this
            // delivery can race a source's.
            self.widen_symmetric();
        }
        self.wait_admission();
        if self.active_since.is_none() {
            self.active_since = Some(Instant::now());
        }
        let started = Instant::now();
        self.metrics.tuples_ingested += 1;
        self.max_ts = self.max_ts.max(tuple.ts);
        let epoch = self.config.epoch.epoch_of(tuple.ts);
        self.stats.record_arrival(epoch, relation);

        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let root = RootHandle::new(seq, self.progress.clone());
        {
            let mut inner = self.coord_buf.inner.lock().expect("coordinator buffer");
            route_root(
                &self.plan,
                self.workers,
                relation,
                &tuple,
                seq,
                &root,
                started,
                &mut self.metrics,
                &mut inner.buf,
            );
            // Micro-batching: ship the buffered deliveries only once the
            // size or time trigger fires (or at the next barrier/expiry),
            // coalescing many ingests into one channel message per worker.
            // The flusher thread sweeps this buffer too, covering the
            // idle-coordinator case this check cannot.
            if inner.buf.is_full() || inner.buf.is_stale(self.config.micro_batch_max_delay) {
                inner.buf.flush(&self.senders);
            }
        }

        self.since_expiry += 1;
        if self.config.expire_every > 0 && self.since_expiry >= self.config.expire_every {
            // Keep channel order: buffered inserts must reach the workers
            // before the expiry that might otherwise run ahead of them.
            self.coord_buf.flush_to(&self.senders);
            for s in &self.senders {
                let _ = s.send(WorkerMsg::Expire { upto: self.max_ts });
            }
            self.since_expiry = 0;
        }
        Ok(0)
    }

    /// Flushes every registered slot's locally buffered deliveries to
    /// the workers — the coordinator's own micro-batch buffer and every
    /// open source (barrier prelude; re-run inside drain loops so a push
    /// that raced the first pass still ships).
    fn flush_sources(&self) {
        let slots = self.sources.lock().expect("source registry").clone();
        for slot in slots {
            slot.flush_to(&self.senders);
        }
    }

    /// Drains every source slot's metrics/statistics deltas into the
    /// coordinator aggregates and prunes slots whose handle was dropped
    /// and whose buffer is empty.
    fn drain_source_deltas(&mut self) {
        let slots = self.sources.lock().expect("source registry").clone();
        let mut any_closed = false;
        for slot in &slots {
            let mut inner = slot.inner.lock().expect("source slot");
            inner.buf.flush(&self.senders);
            self.metrics.merge(&std::mem::take(&mut inner.metrics));
            self.stats.merge(inner.stats.take_delta());
            self.max_ts = self.max_ts.max(inner.max_ts);
            any_closed |= inner.closed;
        }
        if any_closed {
            self.sources
                .lock()
                .expect("source registry")
                .retain(|slot| {
                    let inner = slot.inner.lock().expect("source slot");
                    !(inner.closed && inner.buf.is_empty())
                });
        }
    }

    /// Blocks until every delivery of every ingested root has been
    /// processed on every worker (the deterministic drain barrier).
    /// Panics with a diagnostic if a worker thread has died — its roots
    /// would never complete and the drain would otherwise spin forever.
    fn barrier_drain(&mut self) {
        if !self.try_drain(None) {
            panic!(
                "parallel engine drain barrier failed: a worker thread died \
                 (watermark {})",
                self.progress.watermark()
            );
        }
    }

    /// The drain loop behind [`Self::barrier_drain`] and the shutdown
    /// path. Ships the coordinator's and every source's buffered
    /// deliveries, then waits for the completion watermark to cover every
    /// root allocated so far. Returns `false` (instead of panicking) when
    /// a worker died or `deadline` elapsed.
    fn try_drain(&mut self, deadline: Option<StdDuration>) -> bool {
        // Ship any micro-batched deliveries first (the coordinator's own
        // slot included), or their roots could never complete and the
        // drain would stall.
        self.flush_sources();
        let last = self.next_seq.load(Ordering::Acquire).saturating_sub(1);
        let started = Instant::now();
        let mut since_liveness_check = Instant::now();
        while self.progress.watermark() < last {
            self.progress.wait_for_change(StdDuration::from_millis(1));
            // A producer may have allocated a sequence number covered by
            // `last` but buffered its deliveries after the prelude flush;
            // keep sweeping so those roots can complete.
            self.flush_sources();
            if deadline.is_some_and(|d| started.elapsed() >= d) {
                return false;
            }
            if since_liveness_check.elapsed() >= StdDuration::from_secs(1) {
                since_liveness_check = Instant::now();
                if self.handles.iter().any(|h| h.is_finished()) {
                    return false;
                }
            }
        }
        true
    }

    /// Runs a collection round: every worker replies with its deltas,
    /// which are merged into the coordinator aggregates. Must only be
    /// called after [`Self::barrier_drain`]. Returns the number of tuples
    /// removed when `expire_upto` is set.
    fn collect(&mut self, expire_upto: Option<Timestamp>) -> usize {
        self.collect_inner(expire_upto, false)
    }

    fn collect_inner(&mut self, expire_upto: Option<Timestamp>, lenient: bool) -> usize {
        self.drain_source_deltas();
        self.token += 1;
        let token = self.token;
        for s in &self.senders {
            let sent = s.send(WorkerMsg::Collect { token, expire_upto });
            if !lenient {
                sent.expect("worker alive");
            }
        }
        self.await_acks(token, lenient)
    }

    /// Receives one ack per worker for `token`, merging all deltas. In
    /// lenient mode (shutdown path) a dead worker aborts the round
    /// instead of panicking.
    fn await_acks(&mut self, token: u64, lenient: bool) -> usize {
        let mut acked = vec![false; self.workers];
        let mut expired = 0;
        let timeout = if lenient {
            StdDuration::from_secs(5)
        } else {
            StdDuration::from_secs(30)
        };
        while acked.iter().any(|a| !a) {
            match self.ack_rx.recv_timeout(timeout) {
                Ok(ack) => {
                    assert_eq!(ack.token, token, "barrier tokens are strictly ordered");
                    acked[ack.worker] = true;
                    expired += ack.expired;
                    self.worker_busy[ack.worker] += ack.metrics.busy;
                    self.metrics.merge(&ack.metrics);
                    self.stats.merge(ack.stats);
                    self.worker_store_totals[ack.worker] = (ack.store_tuples, ack.store_bytes);
                    for (query, tuple) in ack.results {
                        if let Some(sink) = &mut self.sink {
                            sink(query, &tuple);
                        }
                        if self.config.collect_results {
                            self.results.push((query, tuple));
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if lenient {
                        break;
                    }
                    panic!("parallel engine barrier timed out: a worker thread died");
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if lenient {
                        break;
                    }
                    panic!("parallel engine barrier failed: all workers gone");
                }
            }
        }
        expired
    }

    /// Drains all in-flight work and merges every worker's deltas: the
    /// epoch barrier. After `flush` the coordinator's metrics, statistics
    /// and collected results reflect everything ingested so far.
    pub fn flush(&mut self) {
        if self.handles.is_empty() {
            return; // already shut down
        }
        self.barrier_drain();
        self.collect(None);
        if let Some(started) = self.active_since.take() {
            self.wall_busy += started.elapsed();
        }
    }

    /// Expires out-of-window tuples from every shard (drains first so the
    /// count is deterministic).
    pub fn expire_stores(&mut self) -> usize {
        if self.handles.is_empty() {
            return 0; // already shut down
        }
        self.barrier_drain();
        // Fold the source slots' stream clocks in before computing the
        // horizon: on source-fed streams `self.max_ts` only advances when
        // deltas are drained, and the expiry horizon must cover
        // everything pushed so far.
        self.drain_source_deltas();
        let expired = self.collect(Some(self.max_ts));
        if let Some(started) = self.active_since.take() {
            self.wall_busy += started.elapsed();
        }
        expired
    }

    /// Installs (or replaces) the plan after a drain barrier. Shard state
    /// with matching descriptor keys is carried over, mirroring the
    /// sequential engine's rewiring (Section VI-A/B). Open sources are
    /// rewired to route against the new plan; producers must quiesce
    /// around the install (pushes racing it may be dropped by workers
    /// that already switched plans).
    pub fn install_plan(&mut self, plan: TopologyPlan) {
        if self.handles.is_empty() {
            return; // already shut down
        }
        self.flush();
        let plan = Arc::new(plan);
        let layout = Arc::new(StoreLayout::derive(&self.catalog, &plan));
        self.symmetric = Arc::new(if self.multi_symmetric {
            symmetric_stores_multi(&plan)
        } else {
            symmetric_stores(&plan)
        });
        self.plan = plan.clone();
        // Rewire open sources: residual old-plan deliveries ship before
        // the Install message is enqueued, new pushes route via the new
        // plan.
        let slots = self.sources.lock().expect("source registry").clone();
        for slot in &slots {
            let mut inner = slot.inner.lock().expect("source slot");
            inner.buf.flush(&self.senders);
            inner.plan = plan.clone();
        }
        self.token += 1;
        let token = self.token;
        for s in &self.senders {
            s.send(WorkerMsg::Install {
                token,
                plan: plan.clone(),
                layout: layout.clone(),
                symmetric: self.symmetric.clone(),
            })
            .expect("worker alive");
        }
        self.await_acks(token, false);
    }

    /// The currently installed plan.
    pub fn plan(&self) -> &TopologyPlan {
        &self.plan
    }

    /// Aggregated statistics as of the last barrier.
    pub fn stats_collector(&self) -> &StatsCollector {
        &self.stats
    }

    /// Mutable access to the aggregated statistics (pruning).
    pub fn stats_collector_mut(&mut self) -> &mut StatsCollector {
        &mut self.stats
    }

    /// Results collected up to the last barrier (requires
    /// `collect_results`). Order across workers is nondeterministic; sort
    /// before comparing.
    pub fn results(&self) -> &[(QueryId, Tuple)] {
        &self.results
    }

    /// Clears collected results (between experiment phases).
    pub fn clear_results(&mut self) {
        self.results.clear();
    }

    /// Total tuples held across all shards (as of the last barrier).
    pub fn store_tuples(&self) -> usize {
        self.worker_store_totals.iter().map(|(t, _)| t).sum()
    }

    /// Total bytes held across all shards (as of the last barrier).
    pub fn store_bytes(&self) -> usize {
        self.worker_store_totals.iter().map(|(_, b)| b).sum()
    }

    /// Per-worker processing time accumulated so far (as of the last
    /// barrier). Shows how evenly the shards split the work — on a
    /// multi-core machine the wall-clock win tracks this distribution.
    pub fn worker_busy(&self) -> &[StdDuration] {
        &self.worker_busy
    }

    /// Runs a full barrier and returns the aggregated metrics snapshot.
    /// `busy_secs` (and thus `throughput_tps`) is wall-clock time between
    /// the first ingest and the end of the drain — the end-to-end rate an
    /// external observer sees, which is the fair comparison against the
    /// sequential engine's processing time.
    pub fn snapshot(&mut self) -> MetricsSnapshot {
        self.flush();
        let busy = self.wall_busy.as_secs_f64();
        MetricsSnapshot {
            tuples_ingested: self.metrics.tuples_ingested,
            tuples_sent: self.metrics.tuples_sent,
            broadcasts: self.metrics.broadcasts,
            probes: self.metrics.probes,
            results: self
                .metrics
                .results
                .iter()
                .map(|(q, n)| (q.0, *n))
                .collect(),
            latency: self.metrics.latency(),
            store_bytes: self.store_bytes(),
            store_tuples: self.store_tuples(),
            num_stores: self.plan.num_stores(),
            busy_secs: busy,
            throughput_tps: if busy > 0.0 {
                self.metrics.tuples_ingested as f64 / busy
            } else {
                0.0
            },
        }
    }

    /// Resets metrics and collected results without touching shard state.
    pub fn reset_metrics(&mut self) {
        self.flush();
        self.metrics = EngineMetrics::default();
        self.results.clear();
        self.wall_busy = StdDuration::ZERO;
        self.worker_busy = vec![StdDuration::ZERO; self.workers];
    }

    /// Drains all in-flight work (delivering outstanding results to the
    /// sink and the collected-results buffer), then stops and joins every
    /// worker thread and the flusher. Called automatically on drop, so
    /// results produced after the last explicit barrier are not lost;
    /// calling it explicitly makes the final collection observable before
    /// the engine goes away. Idempotent; the engine is inert afterwards
    /// (barriers no-op, `ingest` returns an error, source pushes are
    /// dropped).
    pub fn shutdown(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        let workers_alive = !self.handles.iter().any(|h| h.is_finished());
        if workers_alive && self.try_drain(Some(StdDuration::from_secs(10))) {
            self.collect_inner(None, true);
            if let Some(started) = self.active_since.take() {
                self.wall_busy += started.elapsed();
            }
        }
        for s in &self.senders {
            let _ = s.send(WorkerMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(mut flusher) = self.flusher.take() {
            flusher.stop();
        }
    }
}

impl EngineControl for ParallelEngine {
    fn install_plan(&mut self, plan: TopologyPlan) {
        ParallelEngine::install_plan(self, plan);
    }

    fn plan(&self) -> &TopologyPlan {
        ParallelEngine::plan(self)
    }

    fn stats_collector(&self) -> &StatsCollector {
        ParallelEngine::stats_collector(self)
    }

    fn stats_collector_mut(&mut self) -> &mut StatsCollector {
        ParallelEngine::stats_collector_mut(self)
    }
}

impl Drop for ParallelEngine {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Unwinding: skip the drain (it could panic again and abort);
            // just stop the threads.
            self.coord_buf.flush_to(&self.senders);
            for s in &self.senders {
                let _ = s.send(WorkerMsg::Shutdown);
            }
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
            if let Some(mut flusher) = self.flusher.take() {
                flusher.stop();
            }
            return;
        }
        // Drain in-flight batches first so results produced after the
        // last explicit barrier still reach the sink / results buffer.
        self.shutdown();
    }
}

/// One worker per partition of the widest store (minimum 1).
pub fn auto_workers(plan: &TopologyPlan) -> usize {
    plan.stores
        .iter()
        .map(|s| s.descriptor.parallelism)
        .max()
        .unwrap_or(1)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LocalEngine;
    use clash_catalog::Statistics;
    use clash_common::{TupleBuilder, Window};
    use clash_optimizer::{Planner, Strategy};
    use clash_query::parse_query;

    /// The running example of the engine tests: R(a), S(a,b), T(b) and a
    /// second query sharing S and T.
    fn setup(parallelism: usize) -> (Catalog, Vec<clash_query::JoinQuery>, Statistics) {
        let mut catalog = Catalog::new();
        catalog.register("R", ["a"], Window::secs(3600), 1).unwrap();
        catalog
            .register("S", ["a", "b"], Window::secs(3600), parallelism)
            .unwrap();
        catalog
            .register("T", ["b", "c"], Window::secs(3600), parallelism)
            .unwrap();
        catalog.register("U", ["c"], Window::secs(3600), 1).unwrap();
        let mut stats = Statistics::new();
        for m in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            stats.set_rate(m, 100.0);
        }
        let q1 = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b,c), U(c)").unwrap();
        (catalog, vec![q1, q2], stats)
    }

    fn tuple(catalog: &Catalog, relation: &str, ts: u64, values: &[(&str, i64)]) -> Tuple {
        let meta = catalog.relation_by_name(relation).unwrap();
        let mut b = TupleBuilder::new(&meta.schema, Timestamp::from_millis(ts));
        for (attr, v) in values {
            b = b.set(attr, *v);
        }
        b.build()
    }

    fn workload(catalog: &Catalog) -> Vec<(clash_common::RelationId, Tuple)> {
        let mut ts = 0u64;
        let mut next_ts = || {
            ts += 10;
            ts
        };
        let mut stream = Vec::new();
        for a in 1..=3i64 {
            stream.push((
                catalog.relation_id("R").unwrap(),
                tuple(catalog, "R", next_ts(), &[("a", a)]),
            ));
        }
        for (a, b) in [(1, 10), (1, 20), (2, 10), (9, 30)] {
            stream.push((
                catalog.relation_id("S").unwrap(),
                tuple(catalog, "S", next_ts(), &[("a", a), ("b", b)]),
            ));
        }
        for (b, c) in [(10, 100), (20, 100), (30, 200)] {
            stream.push((
                catalog.relation_id("T").unwrap(),
                tuple(catalog, "T", next_ts(), &[("b", b), ("c", c)]),
            ));
        }
        for c in [100i64, 300] {
            stream.push((
                catalog.relation_id("U").unwrap(),
                tuple(catalog, "U", next_ts(), &[("c", c)]),
            ));
        }
        stream
    }

    fn engines_agree(strategy: Strategy, parallelism: usize, workers: usize) {
        let (catalog, queries, stats) = setup(parallelism);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, strategy).unwrap();
        let config = EngineConfig {
            collect_results: true,
            ..EngineConfig::default()
        };
        let mut local = LocalEngine::new(catalog.clone(), report.plan.clone(), config);
        let mut parallel = ParallelEngine::new(catalog.clone(), report.plan, config, workers);
        for (relation, t) in workload(&catalog) {
            local.ingest(relation, t.clone()).unwrap();
            parallel.ingest(relation, t).unwrap();
        }
        let ls = local.snapshot();
        let ps = parallel.snapshot();
        assert_eq!(
            ls.results_for(QueryId::new(0)),
            ps.results_for(QueryId::new(0)),
            "{strategy:?} q1 with {workers} workers"
        );
        assert_eq!(
            ls.results_for(QueryId::new(1)),
            ps.results_for(QueryId::new(1)),
            "{strategy:?} q2 with {workers} workers"
        );
        assert_eq!(ls.tuples_sent, ps.tuples_sent, "{strategy:?} probe cost");
        assert_eq!(ls.broadcasts, ps.broadcasts, "{strategy:?} broadcasts");
        assert_eq!(ls.probes, ps.probes, "{strategy:?} probe count");
        assert_eq!(ls.store_tuples, ps.store_tuples, "{strategy:?} store state");
        // The emitted result multisets are identical (order differs).
        let mut lr: Vec<String> = local
            .results()
            .iter()
            .map(|(q, t)| format!("{q}{t}"))
            .collect();
        let mut pr: Vec<String> = parallel
            .results()
            .iter()
            .map(|(q, t)| format!("{q}{t}"))
            .collect();
        lr.sort();
        pr.sort();
        assert_eq!(lr, pr, "{strategy:?} result multisets");
    }

    #[test]
    fn matches_local_engine_across_strategies_and_worker_counts() {
        for strategy in [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp] {
            for (parallelism, workers) in [(1, 1), (2, 2), (4, 4), (4, 2), (4, 8)] {
                engines_agree(strategy, parallelism, workers);
            }
        }
    }

    #[test]
    fn gathered_statistics_match_local_engine() {
        // The adaptive controller consumes StatsCollector snapshots; the
        // merged per-worker deltas must yield the same arrival rates and
        // (for broadcast-probed stores, exactly; for hashed probes, up to
        // shard-balance extrapolation) the same selectivities.
        let (catalog, queries, stats) = setup(4);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let config = EngineConfig::default();
        let mut local = LocalEngine::new(catalog.clone(), report.plan.clone(), config);
        let mut parallel = ParallelEngine::new(catalog.clone(), report.plan, config, 4);
        // A few hundred tuples so the hashed-probe whole-store
        // extrapolation (shard size x sharing workers) converges; on toy
        // streams single partitions hold 0-2 tuples and the estimate is
        // dominated by sampling noise.
        let mut ts = 0u64;
        for i in 0..200i64 {
            ts += 7;
            for (name, vals) in [
                ("R", vec![("a", i % 17)]),
                ("S", vec![("a", i % 17), ("b", i % 13)]),
                ("T", vec![("b", i % 13), ("c", i % 11)]),
                ("U", vec![("c", i % 11)]),
            ] {
                let t = tuple(&catalog, name, ts, &vals);
                let id = catalog.relation_id(name).unwrap();
                local.ingest(id, t.clone()).unwrap();
                parallel.ingest(id, t).unwrap();
            }
        }
        parallel.flush();
        let prior = Statistics::new();
        let ls = local
            .stats_collector()
            .snapshot(clash_common::Epoch(0), &prior);
        let ps = parallel
            .stats_collector()
            .snapshot(clash_common::Epoch(0), &prior);
        for meta in catalog.iter() {
            assert!(
                (ls.rate(meta.id) - ps.rate(meta.id)).abs() < 1e-9,
                "rate of {} diverges",
                meta.schema.name
            );
        }
        for (l, r) in [
            (
                catalog.attr("R", "a").unwrap(),
                catalog.attr("S", "a").unwrap(),
            ),
            (
                catalog.attr("S", "b").unwrap(),
                catalog.attr("T", "b").unwrap(),
            ),
            (
                catalog.attr("T", "c").unwrap(),
                catalog.attr("U", "c").unwrap(),
            ),
        ] {
            let lsel = ls.selectivity(l, r);
            let psel = ps.selectivity(l, r);
            assert!(
                psel > lsel * 0.5 && psel < lsel * 2.0 + 1e-12,
                "selectivity {l}={r} diverges: local {lsel}, parallel {psel}"
            );
        }
    }

    #[test]
    fn micro_batch_sizes_do_not_change_results() {
        // Send-per-ingest (1), mid-stream flushes (4) and barrier-only
        // flushing (huge) must all produce the local engine's results.
        let (catalog, queries, stats) = setup(4);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let base_config = EngineConfig {
            collect_results: true,
            ..EngineConfig::default()
        };
        let mut local = LocalEngine::new(catalog.clone(), report.plan.clone(), base_config);
        for (relation, t) in workload(&catalog) {
            local.ingest(relation, t).unwrap();
        }
        let mut lr: Vec<String> = local
            .results()
            .iter()
            .map(|(q, t)| format!("{q}{t}"))
            .collect();
        lr.sort();
        for micro_batch in [1usize, 4, 1 << 20] {
            let config = EngineConfig {
                micro_batch,
                ..base_config
            };
            let mut engine = ParallelEngine::new(catalog.clone(), report.plan.clone(), config, 4);
            for (relation, t) in workload(&catalog) {
                engine.ingest(relation, t).unwrap();
            }
            engine.flush();
            let mut pr: Vec<String> = engine
                .results()
                .iter()
                .map(|(q, t)| format!("{q}{t}"))
                .collect();
            pr.sort();
            assert_eq!(lr, pr, "micro_batch={micro_batch} result multisets");
        }
    }

    #[test]
    fn auto_workers_follows_catalog_parallelism() {
        let (catalog, queries, stats) = setup(4);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        assert_eq!(auto_workers(&report.plan), 4);
        let engine = ParallelEngine::new(catalog, report.plan, EngineConfig::default(), 0);
        assert_eq!(engine.workers(), 4);
    }

    #[test]
    fn sink_receives_all_results_at_barriers() {
        let (catalog, queries, stats) = setup(2);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let mut engine =
            ParallelEngine::new(catalog.clone(), report.plan, EngineConfig::default(), 2);
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c2 = counter.clone();
        engine.set_sink(Box::new(move |_, _| {
            c2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }));
        for (relation, t) in workload(&catalog) {
            engine.ingest(relation, t).unwrap();
        }
        let snap = engine.snapshot();
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            snap.total_results()
        );
    }

    #[test]
    fn install_plan_preserves_matching_store_state() {
        let (catalog, queries, stats) = setup(2);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let mut engine = ParallelEngine::new(
            catalog.clone(),
            report.plan.clone(),
            EngineConfig::default(),
            2,
        );
        for (relation, t) in workload(&catalog) {
            engine.ingest(relation, t).unwrap();
        }
        engine.flush();
        let before = engine.store_tuples();
        assert!(before > 0);
        engine.install_plan(report.plan);
        assert_eq!(engine.store_tuples(), before, "same plan keeps state");
        engine.install_plan(TopologyPlan::default());
        assert_eq!(engine.store_tuples(), 0, "empty plan drops all stores");
    }

    #[test]
    fn expiry_removes_out_of_window_state() {
        let (catalog, queries, stats) = setup(2);
        let mut catalog = catalog;
        for id in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            catalog.set_window(id, Window::secs(1)).unwrap();
        }
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let mut engine = ParallelEngine::new(
            catalog.clone(),
            report.plan,
            EngineConfig {
                expire_every: 0,
                ..EngineConfig::default()
            },
            2,
        );
        let s_id = catalog.relation_id("S").unwrap();
        for i in 0..50u64 {
            let t = tuple(&catalog, "S", i * 100, &[("a", 1), ("b", 1)]);
            engine.ingest(s_id, t).unwrap();
        }
        engine.flush();
        let before = engine.store_tuples();
        let removed = engine.expire_stores();
        assert!(removed > 0);
        assert!(engine.store_tuples() < before);
    }

    #[test]
    fn unknown_relation_is_rejected() {
        let (catalog, queries, stats) = setup(1);
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::Shared).unwrap();
        let mut engine =
            ParallelEngine::new(catalog.clone(), report.plan, EngineConfig::default(), 2);
        let t = tuple(&catalog, "R", 10, &[("a", 1)]);
        assert!(engine.ingest(clash_common::RelationId::new(42), t).is_err());
    }
}
