//! Stream tuples and (partial) join results — the zero-copy rope core.
//!
//! A [`Tuple`] is either a base tuple of one streamed relation or the
//! concatenation of base tuples from several relations (a partial or full
//! join result that travels along a probe order). Either way it carries
//!
//! * the set of base relations it covers,
//! * its attribute values, addressed by fully qualified [`AttrRef`]s, and
//! * a timestamp `τ` — for base tuples the arrival timestamp, for join
//!   results the maximum of the constituents' timestamps (the time at which
//!   the result could first be produced, cf. Figure 1 of the paper).
//!
//! # Memory model
//!
//! The payload is a **rope**: a leaf holds the values of one base
//! relation densely indexed by [`AttrId`](crate::ids::AttrId), and a join
//! node holds two `Arc`ed sub-ropes. [`Tuple::join`] therefore performs a
//! single allocation (the new join node) and two reference-count bumps,
//! never copying attribute values — the per-hop cost of a probe order is
//! O(1) instead of O(total arity). Every store a partial result is routed
//! to shares the same leaves.
//!
//! Lookup is positional: a leaf stores its values at their schema slot, so
//! [`Tuple::get`] descends the rope by relation-set membership (O(join
//! depth), at most the number of constituent relations) and then indexes
//! the leaf directly — no linear scan over `(AttrRef, Value)` pairs.
//! [`SlotAccessor`] packages the precomputed slot of one attribute so hot
//! paths (index maintenance, probe predicates) resolve the offset once per
//! store instead of once per lookup.
//!
//! Sizes are cached bottom-up at construction, so
//! [`Tuple::approx_size_bytes`] is O(1) and reports the *flattened*
//! (logical / serialized) payload size — the bytes a distributed
//! deployment would ship and store, regardless of structural sharing.
//!
//! Construction is arena-backed: leaf value buffers come from the
//! thread-local pool in [`crate::arena`] and return there when a leaf is
//! dropped (most commonly at window expiry), so steady-state ingest
//! reuses memory instead of allocating per tuple. [`TupleBuilder`] writes
//! values positionally into such a buffer — optionally resolving names
//! through a catalog-cached [`LeafLayout`] — with no intermediate
//! `(AttrRef, Value)` vector and no re-scan at build time.

use crate::error::{ClashError, Result};
use crate::ids::{AttrId, RelationId};
use crate::relation_set::RelationSet;
use crate::schema::{AttrRef, Schema};
use crate::time::Timestamp;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Maximum number of attributes per relation the dense leaf layout
/// supports (presence bits live in a `u64`).
pub const MAX_ATTRS_PER_RELATION: usize = 64;

/// Fixed per-tuple header charge of [`Tuple::approx_size_bytes`].
const SIZE_HEADER: usize = 32;

/// Per-attribute charge of [`Tuple::approx_size_bytes`], mirroring the
/// seed's `(AttrRef, Value)`-pair accounting so Fig. 7c series remain
/// comparable across representations.
fn per_entry_bytes() -> usize {
    std::mem::size_of::<(AttrRef, Value)>()
}

/// The one slot-write primitive every leaf construction path shares
/// (pair-vector `Tuple::base`, the wire decoder and [`TupleBuilder`]):
/// first write wins (matching the seed's linear `find` lookup semantics
/// for duplicate attributes), presence bit set, size accounted. Returns
/// `false` when the slot was already written (the value is left
/// untouched by the caller).
#[inline(always)]
fn write_slot(
    values: &mut [Value],
    present: &mut u64,
    bytes: &mut usize,
    slot: usize,
    value: Value,
) -> bool {
    // `get_mut` instead of indexing: every caller guards the slot range
    // already, and a panic-free body means no unwind landing pads in the
    // per-tuple construction loop (out-of-range writes are ignored, like
    // `TupleBuilder::put` documents).
    let Some(dst) = values.get_mut(slot) else {
        debug_assert!(false, "slot {slot} outside leaf width {}", values.len());
        return false;
    };
    let bit = 1u64 << slot;
    if *present & bit != 0 {
        return false;
    }
    *present |= bit;
    *bytes += per_entry_bytes() + value.approx_size_bytes();
    *dst = value;
    true
}

/// One leaf of the rope: the values of a single base relation, stored
/// densely at their [`AttrId`] slots. Slots never written hold
/// `Value::Null` and have their presence bit cleared, so "attribute not
/// set" and "attribute set to NULL" stay distinguishable.
#[derive(Debug)]
struct BaseLeaf {
    relation: RelationId,
    /// Presence bitmap over `values` slots.
    present: u64,
    /// Values indexed by `AttrId`; width is the highest set slot + 1.
    values: Box<[Value]>,
    /// Cached flattened payload bytes of this leaf.
    bytes: usize,
}

impl BaseLeaf {
    fn new(relation: RelationId, pairs: Vec<(AttrRef, Value)>) -> BaseLeaf {
        let width = pairs
            .iter()
            .filter(|(a, _)| a.relation == relation)
            .map(|(a, _)| a.attr.index() + 1)
            .max()
            .unwrap_or(0);
        assert!(
            width <= MAX_ATTRS_PER_RELATION,
            "attribute slot {} exceeds the {MAX_ATTRS_PER_RELATION}-attribute leaf limit",
            width.saturating_sub(1)
        );
        // Arena-backed: the value buffer comes from the thread-local leaf
        // pool (recycled by the `Drop` below) instead of a fresh `Vec`.
        let mut values = crate::arena::take_buffer(width);
        let mut present = 0u64;
        let mut bytes = 0usize;
        for (attr, value) in pairs {
            debug_assert!(
                attr.relation == relation,
                "attribute {attr} does not belong to relation {relation}"
            );
            if attr.relation != relation {
                continue;
            }
            write_slot(
                &mut values,
                &mut present,
                &mut bytes,
                attr.attr.index(),
                value,
            );
        }
        BaseLeaf {
            relation,
            present,
            values,
            bytes,
        }
    }

    /// Assembles a leaf from a builder-filled buffer (no re-scan).
    #[inline]
    fn from_parts(relation: RelationId, present: u64, values: Box<[Value]>, bytes: usize) -> Self {
        debug_assert!(values.len() <= MAX_ATTRS_PER_RELATION);
        BaseLeaf {
            relation,
            present,
            values,
            bytes,
        }
    }

    #[inline]
    fn slot(&self, slot: usize) -> Option<&Value> {
        if slot < MAX_ATTRS_PER_RELATION && self.present & (1u64 << slot) != 0 {
            self.values.get(slot)
        } else {
            None
        }
    }

    #[inline]
    fn arity(&self) -> usize {
        self.present.count_ones() as usize
    }
}

/// Leaf buffers return to the thread-local arena when a leaf dies (most
/// commonly at window expiry), so steady-state ingest stops paying an
/// allocator round trip per base tuple.
impl Drop for BaseLeaf {
    fn drop(&mut self) {
        crate::arena::recycle_buffer(std::mem::take(&mut self.values));
    }
}

/// A node of the payload rope.
#[derive(Debug)]
enum Node {
    /// Values of one base relation.
    Base(BaseLeaf),
    /// Concatenation of two disjoint sub-ropes.
    Join {
        left: Arc<Node>,
        /// Relations covered by `left` (steers the positional descent).
        left_relations: RelationSet,
        right: Arc<Node>,
        /// Cached total attribute count.
        arity: usize,
        /// Cached flattened payload bytes of both sides.
        bytes: usize,
    },
}

impl Node {
    fn arity(&self) -> usize {
        match self {
            Node::Base(leaf) => leaf.arity(),
            Node::Join { arity, .. } => *arity,
        }
    }

    fn bytes(&self) -> usize {
        match self {
            Node::Base(leaf) => leaf.bytes,
            Node::Join { bytes, .. } => *bytes,
        }
    }
}

/// A stream tuple or partial join result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tuple {
    /// Timestamp `τ`: arrival time for base tuples, max constituent
    /// timestamp for join results.
    pub ts: Timestamp,
    /// Wall-clock-like ingestion timestamp of the *latest* constituent,
    /// used by the runtime for end-to-end latency measurements (Fig. 7d).
    pub ingest_ts: Timestamp,
    /// The base relations whose attributes this tuple carries.
    pub relations: RelationSet,
    /// Payload rope (shared between join results and their constituents).
    node: Arc<Node>,
}

impl Tuple {
    /// Creates a base tuple of a single relation.
    pub fn base(relation: RelationId, ts: Timestamp, values: Vec<(AttrRef, Value)>) -> Self {
        Tuple {
            ts,
            ingest_ts: ts,
            relations: RelationSet::singleton(relation),
            node: Arc::new(Node::Base(BaseLeaf::new(relation, values))),
        }
    }

    /// Looks up a value by fully qualified attribute reference: a
    /// relation-set-guided descent to the owning leaf followed by a
    /// positional slot read — no linear scan. (One-shot form of
    /// [`SlotAccessor::get`]; hot paths precompute the accessor instead.)
    #[inline]
    pub fn get(&self, attr: &AttrRef) -> Option<&Value> {
        SlotAccessor::of(attr).get(self)
    }

    /// Number of attribute values carried (cached; O(1)).
    pub fn arity(&self) -> usize {
        self.node.arity()
    }

    /// Number of join nodes on the longest root-to-leaf path (0 for base
    /// tuples). Bounds the cost of a positional [`Tuple::get`].
    pub fn depth(&self) -> usize {
        fn depth_of(node: &Node) -> usize {
            match node {
                Node::Base(_) => 0,
                Node::Join { left, right, .. } => 1 + depth_of(left).max(depth_of(right)),
            }
        }
        depth_of(&self.node)
    }

    /// Iterates over `(attribute, value)` pairs in rope order: constituent
    /// tuples left to right, attributes within a leaf in schema-slot order.
    pub fn iter(&self) -> TupleIter<'_> {
        TupleIter {
            stack: vec![&self.node],
            leaf: None,
        }
    }

    /// Flattens the rope into owned `(attribute, value)` pairs — the
    /// seed's convenience representation, used by the wire codec and as
    /// the reference model in property tests. O(arity); never needed on
    /// the probe hot path.
    pub fn flatten(&self) -> Vec<(AttrRef, Value)> {
        self.iter().map(|(a, v)| (a, v.clone())).collect()
    }

    /// `true` if this tuple covers more than one base relation, i.e. it is a
    /// partial join result rather than an input tuple.
    pub fn is_intermediate(&self) -> bool {
        self.relations.len() > 1
    }

    /// Concatenates two tuples covering disjoint relation sets into a join
    /// result. The caller is responsible for having checked the join
    /// predicate; this method only merges payloads and timestamps.
    ///
    /// Zero-copy: the result is a single new rope node referencing both
    /// constituents' payloads — one allocation and two `Arc` bumps,
    /// independent of arity.
    ///
    /// Returns `None` when the relation sets overlap (joining a tuple with
    /// itself or with an overlapping partial result would be a logic error
    /// in the probe routing).
    #[inline]
    pub fn join(&self, other: &Tuple) -> Option<Tuple> {
        if !self.relations.is_disjoint(&other.relations) {
            return None;
        }
        Some(Tuple {
            ts: self.ts.max(other.ts),
            ingest_ts: self.ingest_ts.max(other.ingest_ts),
            relations: self.relations.union(&other.relations),
            node: Arc::new(Node::Join {
                left: Arc::clone(&self.node),
                left_relations: self.relations,
                right: Arc::clone(&other.node),
                arity: self.node.arity() + other.node.arity(),
                bytes: self.node.bytes() + other.node.bytes(),
            }),
        })
    }

    /// `true` when `constituent`'s payload rope is shared (by pointer)
    /// somewhere inside this tuple's rope — i.e. joining did not copy it.
    pub fn shares_payload_with(&self, constituent: &Tuple) -> bool {
        fn contains(node: &Arc<Node>, needle: &Arc<Node>) -> bool {
            if Arc::ptr_eq(node, needle) {
                return true;
            }
            match &**node {
                Node::Base(_) => false,
                Node::Join { left, right, .. } => contains(left, needle) || contains(right, needle),
            }
        }
        contains(&self.node, &constituent.node)
    }

    /// Overrides the ingestion timestamp (used by the runtime when a tuple
    /// enters the system, so latency can be measured independently of the
    /// application timestamp).
    pub fn with_ingest_ts(mut self, ingest: Timestamp) -> Tuple {
        self.ingest_ts = ingest;
        self
    }

    /// Approximate memory footprint of the *flattened* tuple payload in
    /// bytes — the logical size a serialized copy would occupy, counting
    /// attribute references and values. Cached at construction (O(1)).
    /// Used for the store memory accounting behind Fig. 7c.
    #[inline]
    pub fn approx_size_bytes(&self) -> usize {
        SIZE_HEADER + self.node.bytes()
    }

    /// Encodes the tuple into the self-contained wire format (flattened
    /// payload + timestamps + relation set). Stands in for serde in the
    /// offline build, where the vendored serde stub cannot serialize.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.arity() * 16);
        out.push(WIRE_VERSION);
        out.extend_from_slice(&self.ts.as_millis().to_le_bytes());
        out.extend_from_slice(&self.ingest_ts.as_millis().to_le_bytes());
        out.extend_from_slice(&self.relations.bits().to_le_bytes());
        out.extend_from_slice(&(self.arity() as u32).to_le_bytes());
        for (attr, value) in self.iter() {
            out.extend_from_slice(&attr.relation.0.to_le_bytes());
            out.extend_from_slice(&attr.attr.0.to_le_bytes());
            encode_value(value, &mut out);
        }
        out
    }

    /// Decodes a tuple from [`Tuple::to_wire`] bytes. The rebuilt rope has
    /// one leaf per covered relation (joined left-to-right in relation-id
    /// order), so round-tripping flattens deep ropes — equality is
    /// preserved because [`PartialEq`] compares flattened content.
    pub fn from_wire(bytes: &[u8]) -> Result<Tuple> {
        let mut r = WireReader::new(bytes);
        if r.u8()? != WIRE_VERSION {
            return Err(ClashError::Runtime("unsupported tuple wire version".into()));
        }
        let ts = Timestamp::from_millis(r.u64()?);
        let ingest_ts = Timestamp::from_millis(r.u64()?);
        let relations = RelationSet::from_bits(r.u128()?);
        let n = r.u32()? as usize;
        // Every pair occupies at least 9 wire bytes (relation + attr +
        // value tag), so an attribute count exceeding that bound is
        // corrupt — reject it before trusting it as an allocation size.
        if n > r.remaining() / 9 {
            return Err(ClashError::Runtime(
                "tuple wire attribute count exceeds buffer".into(),
            ));
        }
        let mut pairs: Vec<(AttrRef, Value)> = Vec::with_capacity(n);
        for _ in 0..n {
            let relation = RelationId::new(r.u32()?);
            let attr_raw = r.u32()?;
            // Leaf construction asserts on out-of-range slots; malformed
            // wire data must surface as an error, not a panic.
            if attr_raw as usize >= MAX_ATTRS_PER_RELATION {
                return Err(ClashError::Runtime(format!(
                    "tuple wire attribute slot {attr_raw} out of range"
                )));
            }
            let attr = AttrId::new(attr_raw);
            let value = decode_value(&mut r)?;
            pairs.push((AttrRef::new(relation, attr), value));
        }
        Tuple::from_flattened(ts, ingest_ts, relations, pairs)
    }

    /// Rebuilds a tuple from its flattened `(attribute, value)` pairs: one
    /// leaf per relation of the set (joined left-to-right in relation-id
    /// order; relations carrying no attributes still contribute an empty
    /// leaf so the set survives). Shared by [`Tuple::from_wire`] and the
    /// frozen-segment row reconstruction — equality with the original is
    /// preserved because [`PartialEq`] compares flattened content.
    pub fn from_flattened(
        ts: Timestamp,
        ingest_ts: Timestamp,
        relations: RelationSet,
        mut pairs: Vec<(AttrRef, Value)>,
    ) -> Result<Tuple> {
        // Values are *moved* out of the pair list into arena-backed leaf
        // buffers — no per-leaf pair vector, no value clones.
        let mut node: Option<(Arc<Node>, RelationSet)> = None;
        for relation in relations.iter() {
            let width = pairs
                .iter()
                .filter(|(a, _)| a.relation == relation)
                .map(|(a, _)| a.attr.index() + 1)
                .max()
                .unwrap_or(0);
            let mut values = crate::arena::take_buffer(width);
            let mut present = 0u64;
            let mut leaf_bytes = 0usize;
            for (attr, value) in pairs.iter_mut() {
                if attr.relation != relation {
                    continue;
                }
                write_slot(
                    &mut values,
                    &mut present,
                    &mut leaf_bytes,
                    attr.attr.index(),
                    std::mem::replace(value, Value::Null),
                );
            }
            let leaf = Arc::new(Node::Base(BaseLeaf::from_parts(
                relation, present, values, leaf_bytes,
            )));
            node = Some(match node {
                None => (leaf, RelationSet::singleton(relation)),
                Some((left, left_relations)) => {
                    let arity = left.arity() + leaf.arity();
                    let bytes = left.bytes() + leaf.bytes();
                    let joined = Arc::new(Node::Join {
                        left,
                        left_relations,
                        right: leaf,
                        arity,
                        bytes,
                    });
                    let mut covered = left_relations;
                    covered.insert(relation);
                    (joined, covered)
                }
            });
        }
        let Some((node, covered)) = node else {
            return Err(ClashError::Runtime("tuple covers no relation".into()));
        };
        if pairs.iter().any(|(a, _)| !covered.contains(a.relation)) {
            return Err(ClashError::Runtime(
                "tuple attribute outside its relation set".into(),
            ));
        }
        Ok(Tuple {
            ts,
            ingest_ts,
            relations,
            node,
        })
    }

    /// Assembles a single-relation tuple directly from positional slot
    /// writes — the frozen tier's reconstruction fast path. Skips the
    /// intermediate pair vector (and its relation bookkeeping) that
    /// [`Tuple::from_flattened`] needs for multi-relation rows; the
    /// caller guarantees every slot belongs to `relation` and that
    /// `width` covers the highest written slot.
    pub(crate) fn from_slots(
        ts: Timestamp,
        ingest_ts: Timestamp,
        relation: RelationId,
        width: usize,
        slots: impl Iterator<Item = (usize, Value)>,
    ) -> Tuple {
        let mut values = crate::arena::take_buffer(width);
        let mut present = 0u64;
        let mut bytes = 0usize;
        for (slot, value) in slots {
            write_slot(&mut values, &mut present, &mut bytes, slot, value);
        }
        Tuple {
            ts,
            ingest_ts,
            relations: RelationSet::singleton(relation),
            node: Arc::new(Node::Base(BaseLeaf::from_parts(
                relation, present, values, bytes,
            ))),
        }
    }
}

/// Content equality over the flattened `(attribute, value)` mapping plus
/// timestamps and relation set — independent of rope shape, so a join
/// result equals its wire-round-tripped (re-leafed) copy.
impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        if self.ts != other.ts
            || self.ingest_ts != other.ingest_ts
            || self.relations != other.relations
            || self.arity() != other.arity()
        {
            return false;
        }
        self.iter()
            .all(|(attr, value)| other.get(&attr) == Some(value))
    }
}

impl Eq for Tuple {}

/// Iterator over the flattened `(attribute, value)` pairs of a rope.
#[derive(Debug)]
pub struct TupleIter<'a> {
    /// Unvisited sub-ropes, rightmost at the bottom.
    stack: Vec<&'a Arc<Node>>,
    /// Leaf currently being drained: (leaf, next slot).
    leaf: Option<(&'a BaseLeaf, usize)>,
}

impl<'a> Iterator for TupleIter<'a> {
    type Item = (AttrRef, &'a Value);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((leaf, slot)) = &mut self.leaf {
                while *slot < leaf.values.len() {
                    let s = *slot;
                    *slot += 1;
                    if leaf.present & (1u64 << s) != 0 {
                        return Some((
                            AttrRef::new(leaf.relation, AttrId::new(s as u32)),
                            &leaf.values[s],
                        ));
                    }
                }
                self.leaf = None;
            }
            let node = self.stack.pop()?;
            match &**node {
                Node::Base(leaf) => self.leaf = Some((leaf, 0)),
                Node::Join { left, right, .. } => {
                    self.stack.push(right);
                    self.stack.push(left);
                }
            }
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨τ={} ", self.ts)?;
        for (i, (a, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}={v}")?;
        }
        write!(f, "⟩")
    }
}

/// Precomputed positional accessor for one attribute: the owning relation
/// plus the dense slot within that relation's leaf. The slot is fixed by
/// the schema, so stores resolve it **once** (per indexed attribute, per
/// probe predicate) and reuse it for every tuple, instead of re-deriving
/// the offset — or worse, linearly scanning pairs — per lookup. The
/// rope descent itself stays per-tuple because rope shapes vary with the
/// probe order that built the tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotAccessor {
    relation: RelationId,
    slot: usize,
}

impl SlotAccessor {
    /// Precomputes the accessor for an attribute reference.
    #[inline]
    pub fn of(attr: &AttrRef) -> SlotAccessor {
        SlotAccessor {
            relation: attr.relation,
            slot: attr.attr.index(),
        }
    }

    /// The attribute this accessor resolves.
    pub fn attr(&self) -> AttrRef {
        AttrRef::new(self.relation, AttrId::new(self.slot as u32))
    }

    /// Positional lookup on a tuple: relation-set descent to the leaf,
    /// then a direct slot read. No upfront membership test: descending on
    /// "not in the left half → go right" lands on *some* leaf either way,
    /// and the leaf's relation check rejects foreign attributes — one
    /// fewer set test on the hit path the probe loop pays per candidate.
    #[inline]
    pub fn get<'t>(&self, tuple: &'t Tuple) -> Option<&'t Value> {
        let mut node = &*tuple.node;
        loop {
            match node {
                Node::Base(leaf) => {
                    return if leaf.relation == self.relation {
                        leaf.slot(self.slot)
                    } else {
                        None
                    };
                }
                Node::Join {
                    left,
                    left_relations,
                    right,
                    ..
                } => {
                    node = if left_relations.contains(self.relation) {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

// --- wire codec -----------------------------------------------------------

const WIRE_VERSION: u8 = 1;

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn decode_value(r: &mut WireReader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int(i64::from_le_bytes(r.array()?)),
        3 => Value::Float(f64::from_bits(u64::from_le_bytes(r.array()?))),
        4 => {
            let len = r.u32()? as usize;
            let bytes = r.bytes(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| ClashError::Runtime("invalid UTF-8 in tuple wire string".into()))?;
            Value::str(s)
        }
        tag => {
            return Err(ClashError::Runtime(format!(
                "unknown value tag {tag} in tuple wire format"
            )))
        }
    })
}

struct WireReader<'a> {
    bytes: &'a [u8],
}

impl<'a> WireReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes }
    }

    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() < n {
            return Err(ClashError::Runtime("truncated tuple wire data".into()));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        Ok(self.bytes(N)?.try_into().expect("exact length"))
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.array::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn u128(&mut self) -> Result<u128> {
        Ok(u128::from_le_bytes(self.array()?))
    }
}

/// Precomputed per-relation leaf construction layout: the leaf width and
/// a sorted name → slot map, both fixed by the schema. The catalog caches
/// one per registered relation so ingest-side tuple construction resolves
/// names by binary search over a prebuilt table instead of re-walking the
/// schema's attribute list, and allocates its leaf buffer at the exact
/// schema width (which keeps the arena pool's width buckets hot).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeafLayout {
    relation: RelationId,
    /// Leaf buffer width (schema arity).
    width: usize,
    /// Attribute names sorted for binary search, each with its slot.
    slots: Vec<(String, AttrId)>,
}

impl LeafLayout {
    /// Derives the layout of a schema.
    pub fn of_schema(schema: &Schema) -> LeafLayout {
        assert!(
            schema.arity() <= MAX_ATTRS_PER_RELATION,
            "schema {} exceeds the {MAX_ATTRS_PER_RELATION}-attribute leaf limit",
            schema.name
        );
        let mut slots: Vec<(String, AttrId)> = schema
            .attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), AttrId::new(i as u32)))
            .collect();
        slots.sort();
        LeafLayout {
            relation: schema.relation,
            width: schema.arity(),
            slots,
        }
    }

    /// The relation this layout describes.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// Dense leaf width (schema arity).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Resolves an attribute name to its slot.
    pub fn slot_of(&self, name: &str) -> Option<AttrId> {
        self.slots
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.slots[i].1)
    }
}

/// Builder for base tuples that writes values straight into an
/// arena-backed leaf buffer — no intermediate `(AttrRef, Value)` vector,
/// no re-scan at build time. Names resolve through a cached
/// [`LeafLayout`] (binary search) when one is supplied, falling back to
/// the [`Schema`]'s attribute list otherwise; hot paths that already know
/// the slot use [`TupleBuilder::set_slot`]. The buffer itself comes from
/// the thread-local leaf arena, so steady-state construction reuses
/// memory freed by window expiry.
#[derive(Debug)]
pub struct TupleBuilder<'a> {
    schema: &'a Schema,
    layout: Option<&'a LeafLayout>,
    relation: RelationId,
    ts: Timestamp,
    values: Box<[Value]>,
    present: u64,
    bytes: usize,
}

impl<'a> TupleBuilder<'a> {
    /// Starts building a tuple of the given relation with timestamp `ts`.
    #[inline]
    pub fn new(schema: &'a Schema, ts: Timestamp) -> Self {
        Self::with_layout_opt(schema, None, ts)
    }

    /// Starts building with a cached [`LeafLayout`] (the catalog caches
    /// one per relation), skipping the per-`set` schema walk.
    #[inline(always)]
    pub fn with_layout(schema: &'a Schema, layout: &'a LeafLayout, ts: Timestamp) -> Self {
        debug_assert_eq!(layout.relation(), schema.relation, "layout mismatch");
        Self::with_layout_opt(schema, Some(layout), ts)
    }

    #[inline(always)]
    fn with_layout_opt(schema: &'a Schema, layout: Option<&'a LeafLayout>, ts: Timestamp) -> Self {
        let width = layout.map_or_else(|| schema.arity(), LeafLayout::width);
        assert!(
            width <= MAX_ATTRS_PER_RELATION,
            "schema {} exceeds the {MAX_ATTRS_PER_RELATION}-attribute leaf limit",
            schema.name
        );
        TupleBuilder {
            schema,
            layout,
            relation: schema.relation,
            ts,
            values: crate::arena::take_buffer(width),
            present: 0,
            bytes: 0,
        }
    }

    /// Sets an attribute by name. Unknown names are ignored with a debug
    /// assertion, so typos surface in tests without poisoning release runs.
    pub fn set(mut self, attr: &str, value: impl Into<Value>) -> Self {
        let slot = match self.layout {
            Some(layout) => layout.slot_of(attr),
            None => self.schema.attr_id(attr),
        };
        match slot {
            Some(id) => self.put(id.index(), value.into()),
            None => debug_assert!(false, "unknown attribute {attr} on {}", self.schema.name),
        }
        self
    }

    /// Sets an attribute by schema slot — the positional fast path for
    /// generators and codecs that resolved the slot once up front.
    /// Out-of-range slots are ignored with a debug assertion.
    /// `always`-inlined: the by-value chaining style moves the ~70-byte
    /// builder through every call, and only full inlining lets the
    /// optimizer collapse the chain into in-place writes.
    #[inline(always)]
    pub fn set_slot(mut self, attr: AttrId, value: impl Into<Value>) -> Self {
        self.put(attr.index(), value.into());
        self
    }

    #[inline(always)]
    fn put(&mut self, slot: usize, value: Value) {
        // Range guarding happens once, inside `write_slot` — a second
        // check here would add a dead branch (and a `value` drop path)
        // to every slot write.
        debug_assert!(
            slot < self.values.len(),
            "slot {slot} out of range on {}",
            self.schema.name
        );
        write_slot(
            &mut self.values,
            &mut self.present,
            &mut self.bytes,
            slot,
            value,
        );
    }

    /// Finishes the tuple. The filled buffer becomes the leaf directly —
    /// no re-scan, no copy.
    ///
    /// The builder deliberately has no `Drop` impl: one would force the
    /// compiler to thread drop flags through every by-value `set`/
    /// `set_slot` move, which measurably slows the per-tuple construction
    /// chain. The only cost is that an *abandoned* builder frees its
    /// buffer through the allocator instead of the arena — the built
    /// leaf still recycles it on expiry, which is the path that matters.
    #[inline]
    pub fn build(self) -> Tuple {
        let TupleBuilder {
            relation,
            ts,
            values,
            present,
            bytes,
            ..
        } = self;
        let leaf = BaseLeaf::from_parts(relation, present, values, bytes);
        Tuple {
            ts,
            ingest_ts: ts,
            relations: RelationSet::singleton(relation),
            node: Arc::new(Node::Base(leaf)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AttrId;

    fn schema_r() -> Schema {
        Schema::new(RelationId::new(0), "R", ["a", "x"])
    }

    fn schema_s() -> Schema {
        Schema::new(RelationId::new(1), "S", ["a", "b"])
    }

    fn schema_t() -> Schema {
        Schema::new(RelationId::new(2), "T", ["b", "c"])
    }

    fn r_tuple(a: i64, ts: u64) -> Tuple {
        TupleBuilder::new(&schema_r(), Timestamp::from_millis(ts))
            .set("a", a)
            .set("x", "payload")
            .build()
    }

    fn s_tuple(a: i64, b: i64, ts: u64) -> Tuple {
        TupleBuilder::new(&schema_s(), Timestamp::from_millis(ts))
            .set("a", a)
            .set("b", b)
            .build()
    }

    #[test]
    fn builder_resolves_names() {
        let t = r_tuple(7, 100);
        let a_ref = schema_r().attr_ref("a").unwrap();
        assert_eq!(t.get(&a_ref), Some(&Value::Int(7)));
        assert_eq!(t.arity(), 2);
        assert_eq!(t.relations, RelationSet::singleton(RelationId::new(0)));
        assert!(!t.is_intermediate());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn get_unknown_attribute_returns_none() {
        let t = r_tuple(7, 100);
        let foreign = AttrRef::new(RelationId::new(5), AttrId::new(0));
        assert_eq!(t.get(&foreign), None);
        // Unset slot of the own relation.
        let unset = AttrRef::new(RelationId::new(0), AttrId::new(9));
        assert_eq!(t.get(&unset), None);
    }

    #[test]
    fn join_concatenates_and_takes_max_timestamp() {
        let r = r_tuple(1, 100);
        let s = s_tuple(1, 9, 250);
        let rs = r.join(&s).expect("disjoint relations join");
        assert_eq!(rs.ts, Timestamp::from_millis(250));
        assert_eq!(rs.arity(), 4);
        assert!(rs.is_intermediate());
        assert!(rs.relations.contains(RelationId::new(0)));
        assert!(rs.relations.contains(RelationId::new(1)));
        let b_ref = schema_s().attr_ref("b").unwrap();
        assert_eq!(rs.get(&b_ref), Some(&Value::Int(9)));
        // Join is symmetric in the covered relations.
        let sr = s.join(&r).unwrap();
        assert_eq!(sr.relations, rs.relations);
        assert_eq!(sr.ts, rs.ts);
    }

    #[test]
    fn join_is_zero_copy_and_shares_constituent_payloads() {
        let r = r_tuple(1, 100);
        let s = s_tuple(1, 9, 250);
        let t = TupleBuilder::new(&schema_t(), Timestamp::from_millis(300))
            .set("b", 9)
            .set("c", 5)
            .build();
        let rs = r.join(&s).unwrap();
        // The join result references the constituents' payload ropes by
        // pointer — no per-attribute copying happened.
        assert!(rs.shares_payload_with(&r));
        assert!(rs.shares_payload_with(&s));
        let rst = rs.join(&t).unwrap();
        assert!(rst.shares_payload_with(&rs));
        assert!(rst.shares_payload_with(&r));
        assert!(rst.shares_payload_with(&s));
        assert!(rst.shares_payload_with(&t));
        assert!(!rs.shares_payload_with(&t));
        assert_eq!(rst.depth(), 2);
        // Every value is still reachable positionally.
        let c_ref = schema_t().attr_ref("c").unwrap();
        assert_eq!(rst.get(&c_ref), Some(&Value::Int(5)));
        let a_ref = schema_r().attr_ref("a").unwrap();
        assert_eq!(rst.get(&a_ref), Some(&Value::Int(1)));
    }

    #[test]
    fn join_rejects_overlapping_relation_sets() {
        let r1 = r_tuple(1, 100);
        let r2 = r_tuple(2, 200);
        assert!(r1.join(&r2).is_none());
        let s = s_tuple(1, 2, 50);
        let rs = r1.join(&s).unwrap();
        assert!(rs.join(&r2).is_none(), "partial result already covers R");
    }

    #[test]
    fn ingest_timestamp_propagates_through_joins() {
        let r = r_tuple(1, 100).with_ingest_ts(Timestamp::from_millis(1_000));
        let s = s_tuple(1, 2, 250).with_ingest_ts(Timestamp::from_millis(900));
        let rs = r.join(&s).unwrap();
        assert_eq!(rs.ingest_ts, Timestamp::from_millis(1_000));
    }

    #[test]
    fn size_accounting_grows_with_payload() {
        let small = r_tuple(1, 0);
        let joined = small.join(&s_tuple(1, 2, 0)).unwrap();
        assert!(joined.approx_size_bytes() > small.approx_size_bytes());
        // Join sizes are the sum of the flattened constituents (minus one
        // shared header): structural sharing does not hide logical bytes.
        assert_eq!(
            joined.approx_size_bytes(),
            small.approx_size_bytes() + s_tuple(1, 2, 0).approx_size_bytes() - SIZE_HEADER
        );
    }

    #[test]
    fn clone_shares_payload() {
        let t = r_tuple(1, 0);
        let c = t.clone();
        assert_eq!(t, c);
        // Rope payload: cloning does not deep copy (pointer equality).
        assert!(Arc::ptr_eq(&t.node, &c.node));
    }

    #[test]
    fn iter_yields_rope_order() {
        let r = r_tuple(1, 10);
        let s = s_tuple(1, 2, 20);
        let rs = r.join(&s).unwrap();
        let attrs: Vec<String> = rs.iter().map(|(a, _)| a.to_string()).collect();
        assert_eq!(attrs, vec!["R0.a0", "R0.a1", "R1.a0", "R1.a1"]);
        assert_eq!(rs.iter().count(), rs.arity());
    }

    #[test]
    fn slot_accessor_matches_get() {
        let r = r_tuple(3, 10);
        let s = s_tuple(3, 4, 20);
        let rs = r.join(&s).unwrap();
        for (attr, value) in rs.iter() {
            let slot = SlotAccessor::of(&attr);
            assert_eq!(slot.get(&rs), Some(value));
            assert_eq!(slot.attr(), attr);
        }
        let foreign = SlotAccessor::of(&AttrRef::new(RelationId::new(9), AttrId::new(0)));
        assert_eq!(foreign.get(&rs), None);
    }

    #[test]
    fn explicit_null_is_present_but_unset_slot_is_absent() {
        let schema = schema_s();
        let t = TupleBuilder::new(&schema, Timestamp::from_millis(1))
            .set("a", Value::Null)
            .build();
        assert_eq!(t.get(&schema.attr_ref("a").unwrap()), Some(&Value::Null));
        assert_eq!(t.get(&schema.attr_ref("b").unwrap()), None);
        assert_eq!(t.arity(), 1);
    }

    #[test]
    fn wire_round_trip_preserves_content() {
        let r = r_tuple(1, 100).with_ingest_ts(Timestamp::from_millis(123));
        let s = s_tuple(1, 9, 250);
        let t = TupleBuilder::new(&schema_t(), Timestamp::from_millis(300))
            .set("b", 9)
            .set("c", 5)
            .build();
        for tuple in [
            r.clone(),
            r.join(&s).unwrap(),
            r.join(&s).unwrap().join(&t).unwrap(),
        ] {
            let decoded = Tuple::from_wire(&tuple.to_wire()).expect("round trip");
            assert_eq!(decoded, tuple);
            assert_eq!(decoded.ts, tuple.ts);
            assert_eq!(decoded.ingest_ts, tuple.ingest_ts);
            assert_eq!(decoded.relations, tuple.relations);
            assert_eq!(decoded.approx_size_bytes(), tuple.approx_size_bytes());
        }
    }

    #[test]
    fn wire_rejects_garbage() {
        assert!(Tuple::from_wire(&[]).is_err());
        assert!(Tuple::from_wire(&[99, 0, 0]).is_err());
        let mut truncated = r_tuple(1, 5).to_wire();
        truncated.truncate(truncated.len() - 1);
        assert!(Tuple::from_wire(&truncated).is_err());
    }

    #[test]
    fn wire_rejects_hostile_counts_and_slots_without_panicking() {
        // Header claiming u32::MAX attributes with an empty payload: must
        // error out before allocating anything.
        let mut huge_count = Vec::new();
        huge_count.push(1u8); // version
        huge_count.extend_from_slice(&0u64.to_le_bytes()); // ts
        huge_count.extend_from_slice(&0u64.to_le_bytes()); // ingest_ts
        huge_count.extend_from_slice(&1u128.to_le_bytes()); // relations {0}
        huge_count.extend_from_slice(&u32::MAX.to_le_bytes()); // n
        assert!(Tuple::from_wire(&huge_count).is_err());

        // A pair with attribute slot 64 (beyond the leaf bitmap): must be
        // an error, not the leaf constructor's assert.
        let mut bad_slot = Vec::new();
        bad_slot.push(1u8);
        bad_slot.extend_from_slice(&0u64.to_le_bytes());
        bad_slot.extend_from_slice(&0u64.to_le_bytes());
        bad_slot.extend_from_slice(&1u128.to_le_bytes());
        bad_slot.extend_from_slice(&1u32.to_le_bytes()); // n = 1
        bad_slot.extend_from_slice(&0u32.to_le_bytes()); // relation 0
        bad_slot.extend_from_slice(&64u32.to_le_bytes()); // attr slot 64
        bad_slot.push(0u8); // Value::Null
        assert!(Tuple::from_wire(&bad_slot).is_err());
    }

    #[test]
    fn display_contains_values() {
        let t = r_tuple(3, 5);
        let s = t.to_string();
        assert!(s.contains("=3"));
        assert!(s.contains("τ=5ms"));
    }
}
