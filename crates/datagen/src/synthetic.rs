//! Synthetic environments: the ILP experiments (Fig. 9) and the
//! adaptivity scenario (Fig. 8).

use clash_catalog::{Catalog, Statistics};
use clash_common::{QueryId, RelationId, Result, Timestamp, Tuple, TupleBuilder, Window};
use clash_query::{EquiPredicate, JoinQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic environment of Section VII-C: `n`
/// relations with `attrs_per_relation` attributes each, identical arrival
/// rates, and pair-wise join selectivity `1/rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticWorkloadConfig {
    /// Number of input relations to draw from (10 or 100 in the paper).
    pub num_relations: usize,
    /// Attributes per relation (3 in the paper).
    pub attrs_per_relation: usize,
    /// Arrival rate of every relation in tuples per second.
    pub rate: f64,
    /// Store parallelism of every relation.
    pub parallelism: usize,
}

impl Default for SyntheticWorkloadConfig {
    fn default() -> Self {
        SyntheticWorkloadConfig {
            num_relations: 10,
            attrs_per_relation: 3,
            rate: 100.0,
            parallelism: 1,
        }
    }
}

/// A generated synthetic environment: catalog, statistics and a random
/// query generator.
#[derive(Debug)]
pub struct SyntheticEnv {
    /// Catalog with `num_relations` relations `S0, S1, ...`.
    pub catalog: Catalog,
    /// Uniform rates and `1/rate` selectivities.
    pub stats: Statistics,
    config: SyntheticWorkloadConfig,
    rng: StdRng,
}

impl SyntheticEnv {
    /// Builds the environment.
    pub fn new(config: SyntheticWorkloadConfig, seed: u64) -> Result<Self> {
        let mut catalog = Catalog::new();
        for i in 0..config.num_relations {
            let attrs: Vec<String> = (0..config.attrs_per_relation)
                .map(|a| format!("a{a}"))
                .collect();
            catalog.register(
                format!("S{i}"),
                attrs,
                Window::unbounded(),
                config.parallelism,
            )?;
        }
        let mut stats = Statistics::new();
        stats.default_selectivity = 1.0 / config.rate;
        for meta in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            stats.set_rate(meta, config.rate);
        }
        Ok(SyntheticEnv {
            catalog,
            stats,
            config,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Generates one random query over `size` relations: a random start
    /// relation, then joins are added to randomly chosen, not yet included
    /// relations until the desired size is reached (Section VII-A).
    pub fn random_query(&mut self, id: QueryId, size: usize) -> Result<JoinQuery> {
        let n = self.config.num_relations;
        assert!(size <= n, "query size exceeds relation count");
        let mut members: Vec<RelationId> = Vec::new();
        members.push(RelationId::from(self.rng.gen_range(0..n)));
        let mut predicates = Vec::new();
        while members.len() < size {
            let candidate = RelationId::from(self.rng.gen_range(0..n));
            if members.contains(&candidate) {
                continue;
            }
            // Join the new relation with a random existing member on random
            // attributes.
            let existing = members[self.rng.gen_range(0..members.len())];
            let a_existing = self.rng.gen_range(0..self.config.attrs_per_relation) as u32;
            let a_new = self.rng.gen_range(0..self.config.attrs_per_relation) as u32;
            predicates.push(EquiPredicate::new(
                clash_common::AttrRef::new(existing, clash_common::AttrId::new(a_existing)),
                clash_common::AttrRef::new(candidate, clash_common::AttrId::new(a_new)),
            ));
            members.push(candidate);
        }
        JoinQuery::new(
            id,
            format!("rq{}", id.0),
            members.into_iter().collect(),
            predicates,
            None,
        )
    }

    /// Generates `n_queries` random queries of the given size, skipping
    /// exact duplicates (as the paper does).
    pub fn random_queries(&mut self, n_queries: usize, size: usize) -> Result<Vec<JoinQuery>> {
        let mut out: Vec<JoinQuery> = Vec::new();
        let mut attempts = 0;
        while out.len() < n_queries && attempts < n_queries * 50 {
            attempts += 1;
            let q = self.random_query(QueryId::from(out.len()), size)?;
            let duplicate = out
                .iter()
                .any(|o| o.relations == q.relations && o.predicates == q.predicates);
            if !duplicate {
                out.push(q);
            }
        }
        Ok(out)
    }
}

/// The adaptivity scenario of Fig. 8: a four-way linear join
/// `R(a), S(a,b), T(b,c), U(c)` whose data characteristics flip mid-run.
///
/// * Phase 1: every tuple finds exactly one join partner per predicate
///   (selectivity `1/domain`).
/// * Phase 2 (after `shift_at`): `S` tuples find many partners in `R` but
///   none in `T` (and vice versa for `T`), which makes the initially
///   optimal probe orders explode — the situation a static plan cannot
///   recover from (Fig. 8a).
#[derive(Debug)]
pub struct AdaptiveScenario {
    /// Catalog with the four relations, window 5 s.
    pub catalog: Catalog,
    /// Prior statistics used for the initial deployment (slightly inflated
    /// S⋈T selectivity so the optimizer starts with ⟨S,R,T,U⟩ /
    /// ⟨T,U,R,S⟩-style orders, as in the paper).
    pub stats: Statistics,
    /// The query.
    pub query: JoinQuery,
    /// Stream time at which the data characteristics change.
    pub shift_at: Timestamp,
    key_domain: i64,
    rng: StdRng,
    next_ts: u64,
}

impl AdaptiveScenario {
    /// Creates the scenario. `key_domain` controls join fan-out; the shift
    /// happens at `shift_at`.
    pub fn new(key_domain: i64, shift_at: Timestamp, seed: u64) -> Result<Self> {
        let mut catalog = Catalog::new();
        catalog.register("R", ["a", "pay"], Window::secs(5), 1)?;
        catalog.register("S", ["a", "b"], Window::secs(5), 1)?;
        catalog.register("T", ["b", "c"], Window::secs(5), 1)?;
        catalog.register("U", ["c", "pay"], Window::secs(5), 1)?;
        let query = clash_query::parse_query(
            &catalog,
            QueryId::new(0),
            "q_adaptive",
            "R(a), S(a,b), T(b,c), U(c)",
        )?;
        let mut stats = Statistics::new();
        for id in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            stats.set_rate(id, 1000.0);
        }
        stats.default_selectivity = 1.0 / key_domain as f64;
        // Inflate the S ⋈ T selectivity so the initial plan avoids it.
        stats.set_selectivity(
            catalog.attr("S", "b")?,
            catalog.attr("T", "b")?,
            2.0 / key_domain as f64,
        );
        Ok(AdaptiveScenario {
            catalog,
            stats,
            query,
            shift_at,
            key_domain,
            rng: StdRng::seed_from_u64(seed),
            next_ts: 0,
        })
    }

    /// Generates the next round of tuples (one per relation) at the given
    /// timestamp step, honoring the phase shift.
    pub fn next_round(&mut self, step_ms: u64) -> Vec<(RelationId, Tuple)> {
        self.next_ts += step_ms;
        let ts = Timestamp::from_millis(self.next_ts);
        let shifted = ts >= self.shift_at;
        let domain = self.key_domain;
        let mut out = Vec::with_capacity(4);
        let uniform = |rng: &mut StdRng| rng.gen_range(0..domain);

        // Keys per relation; after the shift S and T stop matching each
        // other (disjoint b-domains) while S.a collides heavily with R.a.
        let r_a = uniform(&mut self.rng);
        let s_a = if shifted { r_a } else { uniform(&mut self.rng) };
        let s_b = if shifted {
            domain + uniform(&mut self.rng)
        } else {
            uniform(&mut self.rng)
        };
        let t_b = uniform(&mut self.rng);
        let t_c = uniform(&mut self.rng);
        let u_c = uniform(&mut self.rng);

        for (name, values) in [
            ("R", vec![("a", r_a), ("pay", 0)]),
            ("S", vec![("a", s_a), ("b", s_b)]),
            ("T", vec![("b", t_b), ("c", t_c)]),
            ("U", vec![("c", u_c), ("pay", 0)]),
        ] {
            let meta = self.catalog.relation_by_name(name).expect("registered");
            let mut b = TupleBuilder::with_layout(&meta.schema, &meta.layout, ts);
            for (attr, v) in &values {
                b = b.set(attr, *v);
            }
            out.push((meta.id, b.build()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_env_builds_catalog_and_stats() {
        let env = SyntheticEnv::new(SyntheticWorkloadConfig::default(), 1).unwrap();
        assert_eq!(env.catalog.len(), 10);
        let r0 = env.catalog.relation_id("S0").unwrap();
        assert_eq!(env.stats.rate(r0), 100.0);
        assert!((env.stats.default_selectivity - 0.01).abs() < 1e-12);
    }

    #[test]
    fn random_queries_have_requested_size_and_are_connected() {
        let mut env = SyntheticEnv::new(SyntheticWorkloadConfig::default(), 2).unwrap();
        let queries = env.random_queries(20, 3).unwrap();
        assert_eq!(queries.len(), 20);
        for q in &queries {
            assert_eq!(q.size(), 3);
            assert!(q.validate().is_ok());
        }
        // No exact duplicates.
        for i in 0..queries.len() {
            for j in (i + 1)..queries.len() {
                assert!(
                    queries[i].relations != queries[j].relations
                        || queries[i].predicates != queries[j].predicates
                );
            }
        }
    }

    #[test]
    fn random_queries_with_100_relations() {
        let config = SyntheticWorkloadConfig {
            num_relations: 100,
            ..SyntheticWorkloadConfig::default()
        };
        let mut env = SyntheticEnv::new(config, 3).unwrap();
        let queries = env.random_queries(10, 5).unwrap();
        assert_eq!(queries.len(), 10);
        assert!(queries.iter().all(|q| q.size() == 5));
    }

    #[test]
    fn query_generation_is_deterministic_per_seed() {
        let cfg = SyntheticWorkloadConfig::default();
        let a = SyntheticEnv::new(cfg, 7)
            .unwrap()
            .random_queries(5, 3)
            .unwrap();
        let b = SyntheticEnv::new(cfg, 7)
            .unwrap()
            .random_queries(5, 3)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_scenario_shifts_characteristics() {
        let mut scenario = AdaptiveScenario::new(100, Timestamp::from_millis(5_000), 11).unwrap();
        assert_eq!(scenario.query.size(), 4);
        let (s_id, b_attr) = {
            let s_meta = scenario.catalog.relation_by_name("S").unwrap();
            (s_meta.id, s_meta.schema.attr_ref("b").unwrap())
        };
        // Before the shift: S.b stays inside the base domain.
        let round = scenario.next_round(10);
        assert_eq!(round.len(), 4);
        let s_tuple = &round.iter().find(|(id, _)| *id == s_id).unwrap().1;
        assert!(s_tuple.get(&b_attr).unwrap().as_int().unwrap() < 100);
        // After the shift: S.b leaves the domain (no partners in T) and
        // S.a equals R.a (fan-out against R).
        for _ in 0..600 {
            scenario.next_round(10);
        }
        let round = scenario.next_round(10);
        let s_tuple = &round.iter().find(|(id, _)| *id == s_id).unwrap().1;
        assert!(s_tuple.get(&b_attr).unwrap().as_int().unwrap() >= 100);
    }
}
