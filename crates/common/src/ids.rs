//! Strongly typed identifiers.
//!
//! Every entity that flows between crates (relations, queries, stores,
//! workers, attributes, routing edges) is addressed by a small-integer
//! newtype. Using newtypes instead of raw `usize` prevents the classic
//! "passed a store index where a relation index was expected" bug and keeps
//! hash maps keyed by ids cheap.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            pub fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index, useful for indexing into dense vectors.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self(raw as u32)
            }
        }
    };
}

define_id!(
    /// Identifies a streamed input relation (`S_i` in the paper).
    RelationId,
    "R"
);
define_id!(
    /// Identifies a continuous join query (`q_i` in the paper).
    QueryId,
    "Q"
);
define_id!(
    /// Identifies a store: the joint set of workers materializing one
    /// (possibly intermediate) relation, e.g. the `T`-store or `RS`-store.
    StoreId,
    "St"
);
define_id!(
    /// Identifies a single worker task (one partition of a store).
    WorkerId,
    "W"
);
define_id!(
    /// Identifies an attribute within a relation schema.
    AttrId,
    "a"
);
define_id!(
    /// Identifies a routing edge in the deployed topology. Rules are keyed
    /// by the incoming edge label (Section V-B of the paper).
    EdgeId,
    "e"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_roundtrip_and_display() {
        let r = RelationId::new(3);
        assert_eq!(r.index(), 3);
        assert_eq!(r.to_string(), "R3");
        assert_eq!(QueryId::from(7u32).to_string(), "Q7");
        assert_eq!(StoreId::from(2usize).to_string(), "St2");
        assert_eq!(EdgeId::new(11).to_string(), "e11");
    }

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property, but check hashing/equality semantics here.
        let mut set = HashSet::new();
        set.insert(RelationId::new(1));
        set.insert(RelationId::new(1));
        set.insert(RelationId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(WorkerId::new(1) < WorkerId::new(2));
        assert!(AttrId::new(10) > AttrId::new(9));
    }
}
