//! Property tests for the zero-copy rope tuple representation.
//!
//! A flat reference model (the seed's `(AttrRef, Value)`-pair list with
//! linear lookup and copying concatenation) is built alongside every rope
//! under test; `get`, iteration, arity, size accounting, equality and the
//! wire codec must agree between the two — for random base tuples, random
//! join-tree shapes and random join orders. A second group checks that
//! deep rope chains flow end-to-end through both engines: a 5-way join
//! query on out-of-order input yields identical result multisets from
//! `LocalEngine` and `ParallelEngine`.

use clash_catalog::{Catalog, Statistics};
use clash_common::{
    AttrId, AttrRef, QueryId, RelationId, SlotAccessor, Timestamp, Tuple, Value, Window,
};
use clash_optimizer::{Planner, Strategy};
use clash_query::parse_query;
use clash_runtime::{EngineConfig, LocalEngine, ParallelEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// --- flat reference model -------------------------------------------------

/// The seed representation: flattened pairs, linear everything.
#[derive(Debug, Clone)]
struct FlatRef {
    ts: Timestamp,
    ingest_ts: Timestamp,
    pairs: Vec<(AttrRef, Value)>,
}

impl FlatRef {
    fn get(&self, attr: &AttrRef) -> Option<&Value> {
        self.pairs.iter().find(|(a, _)| a == attr).map(|(_, v)| v)
    }

    fn join(&self, other: &FlatRef) -> FlatRef {
        let mut pairs = self.pairs.clone();
        pairs.extend(other.pairs.iter().cloned());
        FlatRef {
            ts: self.ts.max(other.ts),
            ingest_ts: self.ingest_ts.max(other.ingest_ts),
            pairs,
        }
    }

    /// The seed's size formula: header + per-entry charge + value bytes.
    fn approx_size_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<(AttrRef, Value)>();
        32 + self
            .pairs
            .iter()
            .map(|(_, v)| per_entry + v.approx_size_bytes())
            .sum::<usize>()
    }
}

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..6u32) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range(-1_000..1_000i64)),
        3 => Value::Float(rng.gen_range(-10.0..10.0f64)),
        4 => Value::str(format!("s{}", rng.gen_range(0..50u32))),
        _ => Value::Int(rng.gen_range(0..10i64)),
    }
}

/// One random base tuple of `relation` with `arity` attributes at slots
/// 0..arity (slot order, so reference pair order == rope iteration order).
fn random_base(rng: &mut StdRng, relation: u32, arity: usize) -> (Tuple, FlatRef) {
    let rel = RelationId::new(relation);
    let ts = Timestamp::from_millis(rng.gen_range(0..10_000u64));
    let pairs: Vec<(AttrRef, Value)> = (0..arity)
        .map(|slot| {
            (
                AttrRef::new(rel, AttrId::new(slot as u32)),
                random_value(rng),
            )
        })
        .collect();
    let rope = Tuple::base(rel, ts, pairs.clone());
    let flat = FlatRef {
        ts,
        ingest_ts: ts,
        pairs,
    };
    (rope, flat)
}

/// Joins `leaves` into one tuple with a random tree shape (repeatedly
/// merging two adjacent entries), mirroring every merge on the reference.
fn random_tree(rng: &mut StdRng, mut leaves: Vec<(Tuple, FlatRef)>) -> (Tuple, FlatRef) {
    while leaves.len() > 1 {
        let i = rng.gen_range(0..leaves.len() - 1);
        let (right_rope, right_flat) = leaves.remove(i + 1);
        let (left_rope, left_flat) = leaves.remove(i);
        let rope = left_rope.join(&right_rope).expect("distinct relations");
        leaves.insert(i, (rope, left_flat.join(&right_flat)));
    }
    leaves.pop().expect("nonempty")
}

fn random_leaves(rng: &mut StdRng, relations: usize) -> Vec<(Tuple, FlatRef)> {
    (0..relations)
        .map(|r| {
            let arity = rng.gen_range(1..5usize);
            random_base(rng, r as u32, arity)
        })
        .collect()
}

proptest! {
    /// `get` (by attr and by precomputed slot accessor), `iter`, `arity`
    /// and `approx_size_bytes` agree with the flat reference model for
    /// random join trees.
    #[test]
    fn rope_agrees_with_flat_reference(seed in 0u64..1_000_000, relations in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let leaves = random_leaves(&mut rng, relations);
        let (rope, flat) = random_tree(&mut rng, leaves);

        prop_assert_eq!(rope.ts, flat.ts);
        prop_assert_eq!(rope.arity(), flat.pairs.len());
        prop_assert_eq!(rope.approx_size_bytes(), flat.approx_size_bytes());
        prop_assert_eq!(rope.is_intermediate(), relations > 1);

        // Iteration yields exactly the reference pairs (leaf slot order
        // inside each relation, relations left to right).
        let iterated: Vec<(AttrRef, Value)> = rope.iter().map(|(a, v)| (a, v.clone())).collect();
        prop_assert_eq!(&iterated, &flat.pairs);
        prop_assert_eq!(rope.flatten(), flat.pairs.clone());

        // Every attribute resolves identically, via `get` and via a
        // precomputed positional accessor.
        for (attr, _) in &flat.pairs {
            prop_assert_eq!(rope.get(attr), flat.get(attr), "attr {}", attr);
            prop_assert_eq!(SlotAccessor::of(attr).get(&rope), flat.get(attr));
        }
        // Absent attributes (unknown relation / out-of-range slot).
        let foreign = AttrRef::new(RelationId::new(99), AttrId::new(0));
        prop_assert_eq!(rope.get(&foreign), None);
        let out_of_range = AttrRef::new(RelationId::new(0), AttrId::new(63));
        prop_assert_eq!(rope.get(&out_of_range), flat.get(&out_of_range));
    }

    /// Equality is content equality: any two join-tree shapes and join
    /// orders over the same leaves compare equal, and the wire codec
    /// round-trips both (flattening the rope without losing anything).
    #[test]
    fn equality_and_wire_round_trip_are_shape_independent(
        seed in 0u64..1_000_000,
        relations in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let leaves = random_leaves(&mut rng, relations);

        let (tree_a, _) = random_tree(&mut rng, leaves.clone());
        // A second, independently random shape over a shuffled leaf order.
        let mut shuffled = leaves.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            shuffled.swap(i, j);
        }
        let (tree_b, _) = random_tree(&mut rng, shuffled);
        prop_assert_eq!(&tree_a, &tree_b, "shape/order must not affect equality");

        // Wire round trip: decode(encode(t)) == t, and the decoded tuple
        // still resolves every attribute.
        let decoded = Tuple::from_wire(&tree_a.to_wire()).expect("round trip");
        prop_assert_eq!(&decoded, &tree_a);
        prop_assert_eq!(decoded.ts, tree_a.ts);
        prop_assert_eq!(decoded.ingest_ts, tree_a.ingest_ts);
        prop_assert_eq!(decoded.relations, tree_a.relations);
        prop_assert_eq!(decoded.approx_size_bytes(), tree_a.approx_size_bytes());
        for (attr, value) in tree_a.iter() {
            prop_assert_eq!(decoded.get(&attr), Some(value));
        }

        // Mutating one value breaks equality (the comparison is not
        // trivially true).
        if let Some((attr, Value::Int(_))) = tree_a.iter().next().map(|(a, v)| (a, v.clone())) {
            let mut pairs = tree_a.flatten();
            for (a, v) in &mut pairs {
                if *a == attr {
                    *v = Value::Int(123_456);
                }
            }
            let changed = Tuple::base(attr.relation, tree_a.ts, pairs
                .into_iter()
                .filter(|(a, _)| a.relation == attr.relation)
                .collect());
            if relations == 1 {
                prop_assert!(changed != tree_a || tree_a.get(&attr) == Some(&Value::Int(123_456)));
            }
        }
    }
}

// --- deep rope chains through both engines --------------------------------

/// 5-relation chain A(x), B(x,y), C(y,z), D(z,w), E(w): results are built
/// through two levels of materialized intermediate stores, so rope depth
/// and Arc sharing are exercised across shard boundaries.
fn chain_catalog(parallelism: usize) -> (Catalog, Vec<clash_query::JoinQuery>) {
    let mut catalog = Catalog::new();
    catalog
        .register("A", ["x"], Window::secs(3600), parallelism)
        .unwrap();
    catalog
        .register("B", ["x", "y"], Window::secs(3600), parallelism)
        .unwrap();
    catalog
        .register("C", ["y", "z"], Window::secs(3600), parallelism)
        .unwrap();
    catalog
        .register("D", ["z", "w"], Window::secs(3600), parallelism)
        .unwrap();
    catalog.register("E", ["w"], Window::secs(3600), 1).unwrap();
    let q = parse_query(
        &catalog,
        QueryId::new(0),
        "chain5",
        "A(x), B(x,y), C(y,z), D(z,w), E(w)",
    )
    .unwrap();
    (catalog, vec![q])
}

/// Out-of-order stream: timestamps jitter backwards relative to arrival.
fn chain_stream(
    catalog: &Catalog,
    n_per_relation: usize,
    key_domain: i64,
    seed: u64,
) -> Vec<(RelationId, Tuple)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::new();
    let mut ts = 0u64;
    for _ in 0..n_per_relation {
        for name in ["A", "B", "C", "D", "E"] {
            let meta = catalog.relation_by_name(name).unwrap();
            ts += 7;
            let jitter = rng.gen_range(0..20u64);
            let mut b =
                clash_common::TupleBuilder::new(&meta.schema, Timestamp::from_millis(ts + jitter));
            for attr in &meta.schema.attributes {
                b = b.set(&attr.name, rng.gen_range(0..key_domain));
            }
            stream.push((meta.id, b.build()));
        }
    }
    stream
}

fn multiset(results: &[(QueryId, Tuple)]) -> Vec<String> {
    let mut rendered: Vec<String> = results
        .iter()
        .map(|(q, t)| {
            let mut attrs: Vec<String> = t.iter().map(|(a, v)| format!("{a}={v}")).collect();
            attrs.sort();
            format!("{q}|{}|{}", t.ts, attrs.join(","))
        })
        .collect();
    rendered.sort();
    rendered
}

#[test]
fn five_way_chain_multisets_agree_between_engines_on_out_of_order_input() {
    let (catalog, queries) = chain_catalog(2);
    let stream = chain_stream(&catalog, 24, 6, 0x5EED);
    let stats = Statistics::new();
    let planner = Planner::with_defaults(&catalog, &stats);
    let config = EngineConfig {
        collect_results: true,
        ..EngineConfig::default()
    };
    for strategy in [Strategy::Shared, Strategy::GlobalIlp] {
        let report = planner.plan(&queries, strategy).unwrap();
        let mut local = LocalEngine::new(catalog.clone(), report.plan.clone(), config);
        let mut parallel = ParallelEngine::new(catalog.clone(), report.plan, config, 3);
        for (relation, tuple) in &stream {
            local.ingest(*relation, tuple.clone()).unwrap();
            parallel.ingest(*relation, tuple.clone()).unwrap();
        }
        let local_snap = local.snapshot();
        let parallel_snap = parallel.snapshot();
        assert_eq!(
            local_snap.total_results(),
            parallel_snap.total_results(),
            "{strategy:?} result counts"
        );
        assert_eq!(
            multiset(local.results()),
            multiset(&parallel.results()),
            "{strategy:?} result multisets"
        );
        assert!(
            local_snap.total_results() > 0,
            "{strategy:?} produced no 5-way results; stream too sparse"
        );
        // The emitted results are genuine deep ropes: 5 constituent
        // relations, at least two join levels.
        for (_, tuple) in local.results().iter().take(16) {
            assert_eq!(tuple.relations.len(), 5);
            assert!(
                tuple.depth() >= 2,
                "expected a deep rope, got {}",
                tuple.depth()
            );
            assert_eq!(tuple.arity(), 8, "x + (x,y) + (y,z) + (z,w) + w");
        }
    }
}

#[test]
fn micro_batching_preserves_chain_equivalence() {
    // Same 5-way chain, explicitly sweeping router micro-batch sizes.
    let (catalog, queries) = chain_catalog(2);
    let stream = chain_stream(&catalog, 20, 5, 0xBA7C4);
    let stats = Statistics::new();
    let planner = Planner::with_defaults(&catalog, &stats);
    let report = planner.plan(&queries, Strategy::GlobalIlp).unwrap();
    let base = EngineConfig {
        collect_results: true,
        ..EngineConfig::default()
    };
    let mut local = LocalEngine::new(catalog.clone(), report.plan.clone(), base);
    for (relation, tuple) in &stream {
        local.ingest(*relation, tuple.clone()).unwrap();
    }
    let reference = multiset(local.results());
    for micro_batch in [1usize, 7, 1 << 20] {
        let config = EngineConfig {
            micro_batch,
            ..base
        };
        let mut engine = ParallelEngine::new(catalog.clone(), report.plan.clone(), config, 2);
        for (relation, tuple) in &stream {
            engine.ingest(*relation, tuple.clone()).unwrap();
        }
        engine.flush();
        assert_eq!(
            multiset(&engine.results()),
            reference,
            "micro_batch={micro_batch}"
        );
    }
}
