//! Partitioned, epoch-versioned relation stores with hash indexes.
//!
//! The probe hot path is allocation- and hash-lean: candidate lookups
//! borrow the index posting lists instead of cloning them (unindexed
//! attributes return a scan *marker*, never a materialized `0..len`
//! vector), probe predicates are resolved to positional [`SlotAccessor`]s
//! once per probe, and window expiry retains tuples in place while
//! repairing the hash indexes incrementally via an old→new offset remap —
//! no drain-and-rebuild.
//!
//! Hashing cost is kept off the per-tuple path three ways:
//!
//! * the per-value maps hash with [`clash_common::FxHasher`] instead of
//!   SipHash (trusted keys — see the fxhash module docs),
//! * the *outer* per-attribute level is not a map at all: a store indexes
//!   a handful of attributes, so each epoch container keeps its value
//!   maps in a `Vec` positionally aligned with the store's
//!   `indexed_attrs`, and probes resolve their attribute to a position
//!   **once** instead of re-hashing an `AttrRef` per epoch, and
//! * posting lists are small-inline ([`PostingList`]): a distinct
//!   join-key value only costs a heap allocation once it exceeds
//!   [`clash_common::INLINE_POSTINGS`] matches.

use clash_common::{
    fx_hash, AttrRef, BloomFilter, Epoch, FrozenSegment, FxHashMap, PostingList, SlotAccessor,
    Timestamp, Tuple, Value, Window,
};
use clash_optimizer::StoreDescriptor;
use clash_query::EquiPredicate;

/// An attribute a store maintains a hash index over, with its precomputed
/// positional accessor (resolved once per store, reused for every insert
/// and index rebuild).
#[derive(Debug, Clone, Copy)]
struct IndexedAttr {
    attr: AttrRef,
    slot: SlotAccessor,
}

impl IndexedAttr {
    fn new(attr: AttrRef) -> IndexedAttr {
        IndexedAttr {
            attr,
            slot: SlotAccessor::of(&attr),
        }
    }
}

/// Result of an index lookup: either a borrowed posting list, a proof that
/// no stored tuple matches, or a marker that the attribute is unindexed
/// and the caller must scan. Borrowing (instead of the seed's
/// `Vec<usize>` clone per lookup) keeps the probe hot path allocation-free.
enum Candidates<'a> {
    /// Tuples whose indexed value equals the probe value.
    Hit(&'a [usize]),
    /// The attribute is indexed but the value has no entry.
    Miss,
    /// The attribute is not indexed: scan all stored tuples.
    Scan,
}

/// One epoch's worth of stored tuples inside a partition, with hash
/// indexes per indexed attribute (the paper builds an index per distinct
/// attribute access of the registered probe rules).
#[derive(Debug, Default)]
struct EpochContainer {
    tuples: Vec<Tuple>,
    /// Ingest sequence number of the root tuple that caused each insertion
    /// (parallel runtime; `0` for the sequential engine, which needs no
    /// ordering guard beyond timestamps).
    seqs: Vec<u64>,
    /// Per-attribute value indexes, positionally aligned with the store's
    /// `indexed_attrs` (inserting keys by position avoids hashing an
    /// `AttrRef` per index entry; the value maps use the Fx hasher and
    /// inline posting lists).
    indexes: Vec<FxHashMap<Value, PostingList>>,
    bytes: usize,
}

impl EpochContainer {
    fn insert(&mut self, tuple: Tuple, seq: u64, indexed_attrs: &[IndexedAttr]) {
        if self.indexes.len() < indexed_attrs.len() {
            self.indexes
                .resize_with(indexed_attrs.len(), FxHashMap::default);
        }
        let idx = self.tuples.len();
        self.bytes += tuple.approx_size_bytes();
        for (pos, indexed) in indexed_attrs.iter().enumerate() {
            if let Some(value) = indexed.slot.get(&tuple) {
                // Index keys are cheap clones: `Value::Str` shares its
                // `Arc<str>` with the stored tuple, never reallocating the
                // string payload.
                self.indexes[pos]
                    .entry(value.clone())
                    .or_default()
                    .push(idx);
            }
        }
        self.tuples.push(tuple);
        self.seqs.push(seq);
    }

    /// Candidate matches via the index at attribute position `pos`
    /// (resolved once per probe); borrowed, never cloned.
    fn candidates(&self, pos: usize, value: &Value) -> Candidates<'_> {
        match self.indexes.get(pos) {
            Some(by_value) => match by_value.get(value) {
                Some(postings) => Candidates::Hit(postings.as_slice()),
                None => Candidates::Miss,
            },
            // Containers always carry every registered index (inserts
            // extend, `add_indexed_attr` backfills); a missing position
            // means the attribute is not indexed at all.
            None => Candidates::Scan,
        }
    }

    /// Drops tuples older than `horizon`, retaining survivors in place and
    /// repairing the hash indexes incrementally: posting lists keep their
    /// entries for surviving tuples, remapped to their new offsets instead
    /// of being cleared and rebuilt from scratch.
    ///
    /// Fast path: when the expired tuples form a *prefix* of the container
    /// (every expired tuple precedes every survivor — the steady state for
    /// in-order streams, where arrival order and timestamp order agree),
    /// the remap is a constant subtraction: tuples and seqs shift down via
    /// one `drain` memmove and postings remap with `idx - cutoff`, with no
    /// per-tuple offset table built or consulted. Out-of-order containers
    /// fall back to the general table-driven remap.
    fn expire(&mut self, horizon: Timestamp) -> usize {
        let before = self.tuples.len();
        // One scan: count expired tuples, account their bytes, and find
        // the first survivor — the expired set is a prefix iff the first
        // survivor's offset equals the expired count.
        let mut expired = 0usize;
        let mut freed_bytes = 0usize;
        let mut first_survivor = before;
        for (idx, tuple) in self.tuples.iter().enumerate() {
            if tuple.ts < horizon {
                expired += 1;
                freed_bytes += tuple.approx_size_bytes();
            } else if first_survivor == before {
                first_survivor = idx;
            }
        }
        if expired == 0 {
            return 0;
        }
        self.bytes -= freed_bytes;
        if first_survivor == expired {
            // Prefix case: survivors keep their order, offsets shift by a
            // constant.
            self.tuples.drain(..expired);
            self.seqs.drain(..expired);
            for by_value in &mut self.indexes {
                by_value.retain(|_, postings| {
                    postings.retain_map(|idx| idx.checked_sub(expired));
                    !postings.is_empty()
                });
            }
            return expired;
        }
        // General case: build the old → new offset table.
        const EXPIRED: usize = usize::MAX;
        let mut remap: Vec<usize> = Vec::with_capacity(before);
        let mut kept = 0usize;
        for tuple in &self.tuples {
            if tuple.ts >= horizon {
                remap.push(kept);
                kept += 1;
            } else {
                remap.push(EXPIRED);
            }
        }
        let mut old_idx = 0usize;
        self.tuples.retain(|_| {
            let keep = remap[old_idx] != EXPIRED;
            old_idx += 1;
            keep
        });
        let mut old_idx = 0usize;
        self.seqs.retain(|_| {
            let keep = remap[old_idx] != EXPIRED;
            old_idx += 1;
            keep
        });
        for by_value in &mut self.indexes {
            by_value.retain(|_, postings| {
                postings.retain_map(|idx| {
                    let new_idx = remap[idx];
                    (new_idx != EXPIRED).then_some(new_idx)
                });
                !postings.is_empty()
            });
        }
        expired
    }

    /// Builds the index at attribute position `pos` over the stored tuples
    /// (used when a later-installed plan probes on a new attribute).
    fn index_attr(&mut self, pos: usize, indexed: &IndexedAttr) {
        if self.indexes.len() <= pos {
            self.indexes.resize_with(pos + 1, FxHashMap::default);
        }
        let by_value = &mut self.indexes[pos];
        by_value.clear();
        for (idx, tuple) in self.tuples.iter().enumerate() {
            if let Some(value) = indexed.slot.get(tuple) {
                by_value.entry(value.clone()).or_default().push(idx);
            }
        }
    }
}

/// A store holding the tuples of one (possibly intermediate) relation,
/// split into `parallelism` partitions, each keeping an independent
/// container per epoch (Algorithm 4 stores and probes "with respect to an
/// epoch").
#[derive(Debug)]
pub struct StoreInstance {
    /// The store's descriptor (relations, partitioning, parallelism).
    pub descriptor: StoreDescriptor,
    /// Window governing expiry of stored tuples.
    pub window: Window,
    /// Attributes indexed for probing, with precomputed slot accessors.
    indexed_attrs: Vec<IndexedAttr>,
    /// Hot tier: partition -> epoch -> live container.
    partitions: Vec<FxHashMap<Epoch, EpochContainer>>,
    /// Cold tier: partition -> epoch -> frozen columnar segment (built by
    /// [`Self::freeze_before`]). An epoch may appear in both tiers when a
    /// late tuple arrives after its freeze — probes check both.
    frozen: Vec<FxHashMap<Epoch, FrozenSegment>>,
    /// Tier-level probe pruning: per partition, per indexed-attribute
    /// position, a bloom over the union of every frozen segment's index
    /// hashes. One check answers "no frozen segment of this partition
    /// holds the key" before the per-epoch loop runs, so a cold miss
    /// costs O(1) instead of O(epochs). `None` = pruning unavailable for
    /// that position (some segment froze before it was registered);
    /// rebuilt whenever the partition's segment set changes.
    frozen_blooms: Vec<Vec<Option<BloomFilter>>>,
    /// Segments built over the store's lifetime (monotone counter).
    compactions: u64,
}

/// Hash used for partition routing (stable across the process — and, with
/// the deterministic Fx hasher, across processes too). The router pays
/// this per routed tuple, so it must not cost a keyed SipHash: routing
/// keys are trusted internal values, making the fast hasher safe here.
pub fn partition_hash(value: &Value, parallelism: usize) -> usize {
    if parallelism <= 1 {
        return 0;
    }
    (fx_hash(value) as usize) % parallelism
}

impl StoreInstance {
    /// Creates an empty store.
    pub fn new(descriptor: StoreDescriptor, window: Window, indexed_attrs: Vec<AttrRef>) -> Self {
        let parallelism = descriptor.parallelism.max(1);
        StoreInstance {
            descriptor,
            window,
            indexed_attrs: indexed_attrs.into_iter().map(IndexedAttr::new).collect(),
            partitions: (0..parallelism).map(|_| FxHashMap::default()).collect(),
            frozen: (0..parallelism).map(|_| FxHashMap::default()).collect(),
            frozen_blooms: (0..parallelism).map(|_| Vec::new()).collect(),
            compactions: 0,
        }
    }

    /// Rebuilds partition `p`'s union blooms from its current segment
    /// set. Runs at segment-set changes (freeze, wholesale drop), never
    /// per probe; within-segment expiry only advances cursors and leaves
    /// the blooms a safe superset.
    fn rebuild_frozen_blooms(&mut self, p: usize) {
        let segments: Vec<&FrozenSegment> = self.frozen[p].values().collect();
        self.frozen_blooms[p] = (0..self.indexed_attrs.len())
            .map(|pos| {
                let mut total = 0usize;
                for segment in &segments {
                    total += segment.index_hashes(pos)?.len();
                }
                let mut bloom = BloomFilter::with_capacity(total);
                for segment in &segments {
                    for &hash in segment.index_hashes(pos).expect("checked above") {
                        bloom.insert_hash(hash);
                    }
                }
                Some(bloom)
            })
            .collect();
    }

    /// Freezes every hot epoch container strictly older than `horizon`
    /// into a columnar [`FrozenSegment`] (cold tier). Epochs that already
    /// have a segment keep any late-arrival remainder hot — probes merge
    /// both tiers. Returns the number of segments built by this pass.
    pub fn freeze_before(&mut self, horizon: Epoch) -> usize {
        let slots: Vec<SlotAccessor> = self.indexed_attrs.iter().map(|i| i.slot).collect();
        let mut built = 0usize;
        let mut changed: Vec<usize> = Vec::new();
        for (p, (partition, frozen)) in self
            .partitions
            .iter_mut()
            .zip(self.frozen.iter_mut())
            .enumerate()
        {
            let cold: Vec<Epoch> = partition
                .keys()
                .filter(|e| **e < horizon && !frozen.contains_key(e))
                .copied()
                .collect();
            let before = built;
            for epoch in cold {
                let Some(container) = partition.remove(&epoch) else {
                    continue;
                };
                if container.tuples.is_empty() {
                    continue;
                }
                frozen.insert(
                    epoch,
                    FrozenSegment::freeze(container.tuples, container.seqs, &slots),
                );
                built += 1;
            }
            if built > before {
                changed.push(p);
            }
        }
        for p in changed {
            self.rebuild_frozen_blooms(p);
        }
        self.compactions += built as u64;
        built
    }

    /// Registers an additional indexed attribute (rules installed later may
    /// probe on new attributes). Only the new attribute's index is built
    /// over existing containers; established indexes are left untouched.
    pub fn add_indexed_attr(&mut self, attr: AttrRef) {
        if self.indexed_attrs.iter().any(|i| i.attr == attr) {
            return;
        }
        let indexed = IndexedAttr::new(attr);
        self.indexed_attrs.push(indexed);
        let pos = self.indexed_attrs.len() - 1;
        for partition in &mut self.partitions {
            for container in partition.values_mut() {
                container.index_attr(pos, &indexed);
            }
        }
        // Existing segments index the new position lazily, so their hash
        // sets are not available for a union bloom — the position probes
        // unpruned until those segments expire.
        for blooms in &mut self.frozen_blooms {
            blooms.push(None);
        }
    }

    /// Number of partitions.
    pub fn parallelism(&self) -> usize {
        self.partitions.len()
    }

    /// The partition an arriving tuple belongs to, given the routing key
    /// resolved by the optimizer (`None` = broadcast is decided by the
    /// caller; storing falls back to partition 0).
    pub fn partition_for(&self, tuple: &Tuple) -> usize {
        match self.descriptor.partition {
            Some(attr) => match tuple.get(&attr) {
                Some(v) => partition_hash(v, self.parallelism()),
                None => 0,
            },
            None => 0,
        }
    }

    /// Inserts a tuple into the given epoch and partition.
    pub fn insert(&mut self, partition: usize, epoch: Epoch, tuple: Tuple) {
        self.insert_seq(partition, epoch, tuple, 0);
    }

    /// Inserts a tuple tagged with the ingest sequence number of its root
    /// input tuple. The parallel runtime uses the tag to restrict probes to
    /// strictly earlier arrivals (see [`Self::probe_seq`]); the sequential
    /// engine always passes `0`.
    pub fn insert_seq(&mut self, partition: usize, epoch: Epoch, tuple: Tuple, seq: u64) {
        let p = partition.min(self.partitions.len().saturating_sub(1));
        self.partitions[p]
            .entry(epoch)
            .or_default()
            .insert(tuple, seq, &self.indexed_attrs);
    }

    /// Probes one partition across the given epochs: returns all stored
    /// tuples that satisfy every predicate against `probe`, arrived
    /// strictly before the probing tuple and lie within the window.
    ///
    /// `probe_attrs` maps each predicate to the attribute on the probing
    /// tuple's side; the first indexed predicate drives the index lookup.
    pub fn probe(
        &self,
        partition: usize,
        epochs: &[Epoch],
        probe: &Tuple,
        predicates: &[EquiPredicate],
    ) -> Vec<Tuple> {
        self.probe_seq(partition, epochs, probe, predicates, None)
    }

    /// Resolves, for each predicate, which attribute lives on this store's
    /// relation set (stored side) and which on the probing tuple (probe
    /// side). Shared by the in-store probe and the parallel runtime's
    /// retroactive matching so the two halves can never drift apart.
    pub fn predicate_sides<'a>(
        &self,
        predicates: &'a [EquiPredicate],
    ) -> impl Iterator<Item = (AttrRef, AttrRef)> + 'a {
        let relations = self.descriptor.relations;
        predicates.iter().map(move |pred| {
            if relations.contains(pred.left.relation) {
                (pred.left, pred.right)
            } else {
                (pred.right, pred.left)
            }
        })
    }

    /// Like [`Self::probe`], but additionally restricted to tuples stored
    /// by roots with a strictly smaller ingest sequence number. The
    /// parallel runtime relies on this to reproduce the sequential engine's
    /// "probe only earlier arrivals" semantics when shards race ahead of
    /// each other; timestamps alone cannot express arrival order for
    /// out-of-order streams.
    pub fn probe_seq(
        &self,
        partition: usize,
        epochs: &[Epoch],
        probe: &Tuple,
        predicates: &[EquiPredicate],
        probe_seq: Option<u64>,
    ) -> Vec<Tuple> {
        let p = partition.min(self.partitions.len().saturating_sub(1));
        let mut results = Vec::new();
        // Resolve, per predicate, which side belongs to the stored relation
        // (as a positional accessor) and which value the probing tuple
        // supplies; probe values are borrowed, never cloned.
        let mut resolved: Vec<(SlotAccessor, &Value)> = Vec::with_capacity(predicates.len());
        let mut first_stored: Option<AttrRef> = None;
        for (stored_side, probe_side) in self.predicate_sides(predicates) {
            match SlotAccessor::of(&probe_side).get(probe) {
                Some(v) => {
                    first_stored.get_or_insert(stored_side);
                    resolved.push((SlotAccessor::of(&stored_side), v));
                }
                None => return results,
            }
        }
        // `Null` never `join_eq`-matches anything: a probe carrying a Null
        // predicate value is answered empty without touching state.
        if resolved.iter().any(|(_, v)| v.is_null()) {
            return results;
        }
        // The index position of the driving predicate's stored-side
        // attribute, resolved once per probe (not re-hashed per epoch).
        let index_pos: Option<usize> =
            first_stored.and_then(|attr| self.indexed_attrs.iter().position(|i| i.attr == attr));
        // Frozen-tier probe state, shared across segments: the driving
        // value's hash is computed at most once per probe, and the
        // per-segment column resolution reuses one scratch vector.
        let mut drive_hash: Option<u64> = None;
        let mut frozen_cols: Vec<(usize, &Value)> = Vec::new();
        // Tier-level pruning: one union-bloom check decides whether ANY
        // frozen segment of this partition can hold the driving key. A
        // cold miss skips the whole frozen tier instead of paying a map
        // lookup + segment bloom per epoch.
        let mut try_frozen = !self.frozen[p].is_empty();
        if try_frozen {
            if let (Some(pos), Some((_, value))) = (index_pos, resolved.first()) {
                if let Some(union) = self.frozen_blooms[p].get(pos).and_then(|b| b.as_ref()) {
                    let hash = *drive_hash.get_or_insert_with(|| fx_hash(*value));
                    try_frozen = union.contains_hash(hash);
                }
            }
        }
        for epoch in epochs {
            if let Some(container) = self.partitions[p].get(epoch) {
                let candidates = match (index_pos, resolved.first()) {
                    (Some(pos), Some((_, value))) => container.candidates(pos, value),
                    _ => Candidates::Scan,
                };
                if let Candidates::Hit(postings) = &candidates {
                    results.reserve(postings.len());
                }
                // One shared match check, statically dispatched from both the
                // indexed and the scan path. `checks` lists the predicates
                // still to verify per candidate: an index *hit* already proves
                // the driving predicate (the index key equals the probe value,
                // both non-Null, and map equality coincides with `join_eq` for
                // non-Null values), so hit candidates skip it.
                let mut consider = |idx: usize, checks: &[(SlotAccessor, &Value)]| {
                    let stored = &container.tuples[idx];
                    // Only earlier-arrived tuples join (the probing tuple is the
                    // latest constituent of the result) and the window must hold.
                    if stored.ts >= probe.ts || !self.window.contains(probe.ts, stored.ts) {
                        return;
                    }
                    if let Some(seq) = probe_seq {
                        if container.seqs[idx] >= seq {
                            return;
                        }
                    }
                    for (stored_slot, value) in checks {
                        match stored_slot.get(stored) {
                            Some(v) if v.join_eq(value) => {}
                            _ => return,
                        }
                    }
                    results.push(stored.clone());
                };
                match candidates {
                    Candidates::Miss => {}
                    Candidates::Hit(postings) => {
                        for &idx in postings {
                            consider(idx, &resolved[1..]);
                        }
                    }
                    Candidates::Scan => {
                        for idx in 0..container.tuples.len() {
                            consider(idx, &resolved);
                        }
                    }
                }
            }
            if let Some(segment) = try_frozen.then(|| self.frozen[p].get(epoch)).flatten() {
                self.probe_frozen(
                    segment,
                    probe,
                    probe_seq,
                    &resolved,
                    index_pos,
                    &mut drive_hash,
                    &mut frozen_cols,
                    &mut results,
                );
            }
        }
        results
    }

    /// Probes one frozen segment. Candidates come from the segment's
    /// hash-run indexes (bloom-gated binary search) or a cursor-bounded
    /// scan; **every** predicate — including the driving one — is
    /// re-verified against the columns, because hash runs group by
    /// `fx_hash(value)` and distinct values can collide. Matches are
    /// reconstructed into content-equal tuples, so emitted results are
    /// indistinguishable from live-tier matches.
    #[allow(clippy::too_many_arguments)]
    fn probe_frozen<'v>(
        &self,
        segment: &FrozenSegment,
        probe: &Tuple,
        probe_seq: Option<u64>,
        resolved: &[(SlotAccessor, &'v Value)],
        index_pos: Option<usize>,
        drive_hash: &mut Option<u64>,
        cols: &mut Vec<(usize, &'v Value)>,
        results: &mut Vec<Tuple>,
    ) {
        // Resolves each predicate's column id into `cols`; `false` means
        // no row of the segment carries some predicate's attribute, so
        // nothing can match.
        fn resolve<'v>(
            segment: &FrozenSegment,
            resolved: &[(SlotAccessor, &'v Value)],
            cols: &mut Vec<(usize, &'v Value)>,
        ) -> bool {
            cols.clear();
            for (slot, value) in resolved {
                match segment.column_of(&slot.attr()) {
                    Some(col) => cols.push((col, value)),
                    None => return false,
                }
            }
            true
        }
        let check = |cols: &[(usize, &'v Value)], row: usize| -> bool {
            let stored_ts = segment.ts(row);
            if stored_ts >= probe.ts || !self.window.contains(probe.ts, stored_ts) {
                return false;
            }
            if let Some(seq) = probe_seq {
                if segment.seq(row) >= seq {
                    return false;
                }
            }
            for &(col, value) in cols {
                match segment.value_at(col, row) {
                    Some(v) if v.join_eq(value) => {}
                    _ => return false,
                }
            }
            true
        };
        match (index_pos, resolved.first()) {
            (Some(pos), Some((_, value))) => {
                let hash = *drive_hash.get_or_insert_with(|| fx_hash(*value));
                let accessor = &self.indexed_attrs[pos].slot;
                segment.with_candidates(pos, accessor, hash, |run| {
                    // Run offsets ascend, so the expired rows below the
                    // cursor form a prefix — skip it with one
                    // `partition_point` (the frozen analogue of the live
                    // tier's posting-list remap).
                    let begin = run.partition_point(|&r| (r as usize) < segment.first_live());
                    let run = &run[begin..];
                    // Misses (the common case under bloom gating) exit
                    // before predicate columns are even resolved.
                    if run.is_empty() || !resolve(segment, resolved, cols) {
                        return;
                    }
                    for &row in run {
                        if check(cols, row as usize) {
                            results.push(segment.tuple_at(row as usize));
                        }
                    }
                });
            }
            _ => {
                if !resolve(segment, resolved, cols) {
                    return;
                }
                for row in segment.first_live()..segment.len() {
                    if check(cols, row) {
                        results.push(segment.tuple_at(row));
                    }
                }
            }
        }
    }

    /// Drops tuples older than `horizon` from every partition and epoch,
    /// removing empty epoch containers. Indexes are repaired in place
    /// (incremental remap), not rebuilt. Returns the number of expired
    /// tuples.
    pub fn expire(&mut self, horizon: Timestamp) -> usize {
        let mut removed = 0;
        for partition in &mut self.partitions {
            for container in partition.values_mut() {
                removed += container.expire(horizon);
            }
            partition.retain(|_, c| !c.tuples.is_empty());
        }
        // Frozen tier: each segment advances its ts cursor (one
        // `partition_point`, no per-tuple work); a fully expired segment
        // is dropped wholesale with its map entry. Dropping segments
        // shrinks the partition's key set, so its union blooms rebuild
        // (cursor-only advances leave them a safe superset).
        let mut changed: Vec<usize> = Vec::new();
        for (p, frozen) in self.frozen.iter_mut().enumerate() {
            let before = frozen.len();
            frozen.retain(|_, segment| {
                removed += segment.expire(horizon);
                !segment.is_empty()
            });
            if frozen.len() < before {
                changed.push(p);
            }
        }
        for p in changed {
            self.rebuild_frozen_blooms(p);
        }
        removed
    }

    /// Number of stored tuples across partitions and epochs, both tiers.
    pub fn len(&self) -> usize {
        let hot: usize = self
            .partitions
            .iter()
            .flat_map(|p| p.values())
            .map(|c| c.tuples.len())
            .sum();
        let cold: usize = self
            .frozen
            .iter()
            .flat_map(|p| p.values())
            .map(|s| s.live_len())
            .sum();
        hot + cold
    }

    /// `true` when the store holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint of the stored tuples, both tiers
    /// (frozen segments use the same flattened-payload accounting).
    pub fn bytes(&self) -> usize {
        let hot: usize = self
            .partitions
            .iter()
            .flat_map(|p| p.values())
            .map(|c| c.bytes)
            .sum();
        let cold: usize = self
            .frozen
            .iter()
            .flat_map(|p| p.values())
            .map(|s| s.bytes())
            .sum();
        hot + cold
    }

    /// Cold-tier shape: `(segments, live_bytes)` across all partitions.
    pub fn segment_stats(&self) -> (usize, usize) {
        let segments = self.frozen.iter().map(|p| p.len()).sum();
        let bytes = self
            .frozen
            .iter()
            .flat_map(|p| p.values())
            .map(|s| s.bytes())
            .sum();
        (segments, bytes)
    }

    /// Segments built over the store's lifetime (monotone; survives
    /// wholesale segment drops).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Index shape: `(posting_lists, spilled)` across every partition,
    /// epoch container and indexed attribute — how many distinct
    /// (attribute, value) posting lists exist and how many have spilled
    /// past [`clash_common::INLINE_POSTINGS`] to a heap vector. Exposed
    /// for the telemetry surface; walks the indexes, so call it at
    /// barriers, not per tuple.
    pub fn posting_stats(&self) -> (usize, usize) {
        let mut lists = 0;
        let mut spilled = 0;
        for container in self.partitions.iter().flat_map(|p| p.values()) {
            for by_value in &container.indexes {
                lists += by_value.len();
                spilled += by_value.values().filter(|l| l.is_spilled()).count();
            }
        }
        (lists, spilled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::{AttrId, RelationId, RelationSet, Schema, TupleBuilder};

    fn schema_s() -> Schema {
        Schema::new(RelationId::new(1), "S", ["a", "b"])
    }

    fn s_tuple(a: i64, b: i64, ts: u64) -> Tuple {
        TupleBuilder::new(&schema_s(), Timestamp::from_millis(ts))
            .set("a", a)
            .set("b", b)
            .build()
    }

    fn s_store(parallelism: usize) -> StoreInstance {
        let attr_a = AttrRef::new(RelationId::new(1), AttrId::new(0));
        let descriptor = if parallelism > 1 {
            StoreDescriptor::partitioned(
                RelationSet::singleton(RelationId::new(1)),
                attr_a,
                parallelism,
            )
        } else {
            StoreDescriptor::unpartitioned(RelationSet::singleton(RelationId::new(1)))
        };
        StoreInstance::new(descriptor, Window::secs(10), vec![attr_a])
    }

    fn pred_ra_sa() -> EquiPredicate {
        // R.a = S.a with R = relation 0 attr 0, S = relation 1 attr 0.
        EquiPredicate::new(
            AttrRef::new(RelationId::new(0), AttrId::new(0)),
            AttrRef::new(RelationId::new(1), AttrId::new(0)),
        )
    }

    fn r_tuple(a: i64, ts: u64) -> Tuple {
        let schema = Schema::new(RelationId::new(0), "R", ["a"]);
        TupleBuilder::new(&schema, Timestamp::from_millis(ts))
            .set("a", a)
            .build()
    }

    #[test]
    fn insert_and_probe_matches_on_predicate() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 10, 100));
        store.insert(0, Epoch(0), s_tuple(2, 20, 150));
        store.insert(0, Epoch(0), s_tuple(1, 30, 200));
        assert_eq!(store.len(), 3);
        assert!(store.bytes() > 0);

        let probe = r_tuple(1, 500);
        let matches = store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]);
        assert_eq!(matches.len(), 2, "both S tuples with a=1 match");

        let probe = r_tuple(3, 500);
        assert!(store
            .probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()])
            .is_empty());
    }

    #[test]
    fn probe_only_sees_earlier_tuples_within_window() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 0, 1_000));
        store.insert(0, Epoch(0), s_tuple(1, 0, 30_000));
        // Probe at t=12s: the 1s tuple is outside the 10s window, the 30s
        // tuple arrived later.
        let probe = r_tuple(1, 12_000);
        assert!(store
            .probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()])
            .is_empty());
        // Probe at t=8s sees the 1s tuple.
        let probe = r_tuple(1, 8_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            1
        );
    }

    #[test]
    fn probing_respects_epoch_scoping() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 0, 100));
        store.insert(0, Epoch(1), s_tuple(1, 0, 200));
        let probe = r_tuple(1, 1_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            1
        );
        assert_eq!(
            store
                .probe(0, &[Epoch(0), Epoch(1)], &probe, &[pred_ra_sa()])
                .len(),
            2
        );
        assert!(store
            .probe(0, &[Epoch(5)], &probe, &[pred_ra_sa()])
            .is_empty());
    }

    #[test]
    fn partitioned_store_routes_by_partition_attribute() {
        let mut store = s_store(4);
        let t = s_tuple(42, 7, 100);
        let p = store.partition_for(&t);
        store.insert(p, Epoch(0), t);
        // Probing the right partition finds it, a wrong partition does not.
        let probe = r_tuple(42, 500);
        assert_eq!(
            store.probe(p, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            1
        );
        let other = (p + 1) % 4;
        assert!(store
            .probe(other, &[Epoch(0)], &probe, &[pred_ra_sa()])
            .is_empty());
    }

    #[test]
    fn expiry_removes_old_tuples_and_keeps_probes_working() {
        let mut store = s_store(1);
        for i in 0..10 {
            store.insert(0, Epoch(0), s_tuple(1, i, 100 * i as u64));
        }
        assert_eq!(store.len(), 10);
        let removed = store.expire(Timestamp::from_millis(500));
        assert_eq!(removed, 5);
        assert_eq!(store.len(), 5);
        let probe = r_tuple(1, 10_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            5
        );
        // Expiring everything empties the store.
        store.expire(Timestamp::from_millis(100_000));
        assert!(store.is_empty());
        assert_eq!(store.bytes(), 0);
    }

    #[test]
    fn incremental_index_repair_survives_interleaved_expiry_and_inserts() {
        let mut store = s_store(1);
        for i in 0..8 {
            store.insert(0, Epoch(0), s_tuple(i % 3, i, 100 * i as u64));
        }
        // Expire the first half: surviving posting lists must be remapped.
        assert_eq!(store.expire(Timestamp::from_millis(400)), 4);
        // Insert more tuples after the repair; indexes must keep working
        // for both survivors and newcomers.
        for i in 8..12 {
            store.insert(0, Epoch(0), s_tuple(i % 3, i, 100 * i as u64));
        }
        for key in 0..3i64 {
            let probe = r_tuple(key, 10_000);
            let expected = (4..12).filter(|i| i % 3 == key).count();
            assert_eq!(
                store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
                expected,
                "key {key}"
            );
        }
        // A second expiry over the repaired state stays consistent.
        assert_eq!(store.expire(Timestamp::from_millis(900)), 5);
        let probe = r_tuple(0, 10_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            (9..12).filter(|i| i % 3 == 0).count()
        );
    }

    #[test]
    fn out_of_order_expiry_uses_the_general_remap_and_stays_consistent() {
        // Timestamps deliberately interleave so the expired set is NOT a
        // prefix of the container: survivors precede expired tuples.
        let mut store = s_store(1);
        let timestamps = [9_000u64, 100, 8_500, 200, 9_500, 300, 8_800, 400];
        for (i, ts) in timestamps.iter().enumerate() {
            store.insert(0, Epoch(0), s_tuple((i % 2) as i64, i as i64, *ts));
        }
        let removed = store.expire(Timestamp::from_millis(1_000));
        assert_eq!(removed, 4, "the four small timestamps expire");
        assert_eq!(store.len(), 4);
        // Index-driven probes still find exactly the surviving tuples
        // (probe at 10s: every survivor is inside the 10s window).
        let probe = r_tuple(0, 10_000);
        let survivors_key0 = timestamps
            .iter()
            .enumerate()
            .filter(|(i, ts)| **ts >= 1_000 && i % 2 == 0)
            .count();
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            survivors_key0
        );
        // A second, again non-prefix expiry over the repaired state.
        assert_eq!(store.expire(Timestamp::from_millis(8_900)), 2);
        let probe = r_tuple(0, 10_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            2,
            "the ts=9000 and ts=9500 tuples (key 0) survive"
        );
    }

    #[test]
    fn expiry_with_nothing_to_remove_is_a_noop() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 1, 5_000));
        let bytes = store.bytes();
        assert_eq!(store.expire(Timestamp::from_millis(1_000)), 0);
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), bytes);
    }

    #[test]
    fn unindexed_predicate_falls_back_to_scan() {
        // Store indexes only S.a; probe with a predicate on S.b.
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 50, 100));
        store.insert(0, Epoch(0), s_tuple(2, 60, 200));
        let t_schema = Schema::new(RelationId::new(2), "T", ["b"]);
        let probe = TupleBuilder::new(&t_schema, Timestamp::from_millis(900))
            .set("b", 50)
            .build();
        let pred = EquiPredicate::new(
            AttrRef::new(RelationId::new(1), AttrId::new(1)),
            AttrRef::new(RelationId::new(2), AttrId::new(0)),
        );
        let matches = store.probe(0, &[Epoch(0)], &probe, &[pred]);
        assert_eq!(matches.len(), 1, "scan fallback still finds the match");
    }

    #[test]
    fn probe_without_predicates_returns_all_earlier_tuples() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 1, 100));
        store.insert(0, Epoch(0), s_tuple(2, 2, 200));
        let probe = r_tuple(9, 1_000);
        let matches = store.probe(0, &[Epoch(0)], &probe, &[]);
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn adding_indexed_attribute_rebuilds_indexes() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(5, 50, 100));
        let attr_b = AttrRef::new(RelationId::new(1), AttrId::new(1));
        store.add_indexed_attr(attr_b);
        // Probe on S.b = T.b style predicate.
        let t_schema = Schema::new(RelationId::new(2), "T", ["b"]);
        let probe = TupleBuilder::new(&t_schema, Timestamp::from_millis(900))
            .set("b", 50)
            .build();
        let pred = EquiPredicate::new(attr_b, AttrRef::new(RelationId::new(2), AttrId::new(0)));
        assert_eq!(store.probe(0, &[Epoch(0)], &probe, &[pred]).len(), 1);
    }

    /// Freezing must be invisible to probes: same matches before and
    /// after, with reconstructed tuples content-equal to the originals.
    #[test]
    fn frozen_probe_matches_live_probe_exactly() {
        let mut live = s_store(1);
        let mut tiered = s_store(1);
        for i in 0..16 {
            let t = s_tuple(i % 4, i, 100 * i as u64 + 1);
            live.insert(0, Epoch((i % 3) as u64), t.clone());
            tiered.insert(0, Epoch((i % 3) as u64), t);
        }
        assert_eq!(tiered.freeze_before(Epoch(2)), 2, "epochs 0 and 1 freeze");
        assert_eq!(tiered.compactions(), 2);
        assert_eq!(tiered.len(), live.len());
        assert_eq!(tiered.bytes(), live.bytes());
        let epochs = [Epoch(0), Epoch(1), Epoch(2)];
        for key in 0..4i64 {
            let probe = r_tuple(key, 5_000);
            let mut expect = live.probe(0, &epochs, &probe, &[pred_ra_sa()]);
            let mut got = tiered.probe(0, &epochs, &probe, &[pred_ra_sa()]);
            expect.sort_by_key(|t| t.ts);
            got.sort_by_key(|t| t.ts);
            assert_eq!(got, expect, "key {key}");
        }
    }

    /// Late arrivals into an already-frozen epoch stay hot; probes merge
    /// both tiers for that epoch.
    #[test]
    fn late_insert_after_freeze_is_still_probed() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 1, 100));
        assert_eq!(store.freeze_before(Epoch(1)), 1);
        store.insert(0, Epoch(0), s_tuple(1, 2, 200));
        // A second freeze pass leaves the late remainder hot.
        assert_eq!(store.freeze_before(Epoch(1)), 0);
        let probe = r_tuple(1, 1_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            2
        );
        assert_eq!(store.len(), 2);
    }

    /// Expiring a frozen epoch advances its cursor (exact counts) and a
    /// fully expired segment drops wholesale.
    #[test]
    fn frozen_expiry_counts_exactly_and_drops_wholesale() {
        let mut store = s_store(1);
        for i in 0..10 {
            store.insert(0, Epoch(0), s_tuple(1, i, 100 * i as u64));
        }
        assert_eq!(store.freeze_before(Epoch(1)), 1);
        assert_eq!(store.expire(Timestamp::from_millis(500)), 5);
        assert_eq!(store.len(), 5);
        let (segments, bytes) = store.segment_stats();
        assert_eq!(segments, 1);
        assert!(bytes > 0);
        let probe = r_tuple(1, 10_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            5
        );
        store.expire(Timestamp::from_millis(100_000));
        assert!(store.is_empty());
        assert_eq!(store.segment_stats(), (0, 0));
        assert_eq!(store.compactions(), 1, "the counter survives the drop");
    }

    /// An attribute indexed after the freeze probes the segment through a
    /// lazily built hash run (and keeps matching the scan answer).
    #[test]
    fn add_indexed_attr_after_freeze_probes_lazily() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(5, 50, 100));
        store.insert(0, Epoch(0), s_tuple(6, 60, 200));
        assert_eq!(store.freeze_before(Epoch(1)), 1);
        let attr_b = AttrRef::new(RelationId::new(1), AttrId::new(1));
        store.add_indexed_attr(attr_b);
        let t_schema = Schema::new(RelationId::new(2), "T", ["b"]);
        let probe = TupleBuilder::new(&t_schema, Timestamp::from_millis(900))
            .set("b", 50)
            .build();
        let pred = EquiPredicate::new(attr_b, AttrRef::new(RelationId::new(2), AttrId::new(0)));
        assert_eq!(store.probe(0, &[Epoch(0)], &probe, &[pred]).len(), 1);
    }

    #[test]
    fn partition_hash_is_stable_and_bounded() {
        let v = Value::Int(123);
        let a = partition_hash(&v, 7);
        let b = partition_hash(&v, 7);
        assert_eq!(a, b);
        assert!(a < 7);
        assert_eq!(partition_hash(&v, 1), 0);
        assert_eq!(partition_hash(&v, 0), 0);
    }
}
