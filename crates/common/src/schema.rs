//! Relation schemas and attribute references.
//!
//! A streamed relation has a name and a list of named attributes. Join
//! predicates and partitioning decisions reference attributes through
//! [`AttrRef`], a `(relation, attribute)` pair, e.g. `S.a` in the paper's
//! notation `Si.a = Sj.b`.

use crate::ids::{AttrId, RelationId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A named attribute within a relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
}

impl Attribute {
    /// Creates an attribute with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Attribute { name: name.into() }
    }
}

/// Schema of a streamed base relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Identifier of the relation this schema belongs to.
    pub relation: RelationId,
    /// Human readable relation name, e.g. `"lineitem"` or `"S"`.
    pub name: String,
    /// Ordered list of attributes. The position of an attribute is its
    /// [`AttrId`].
    pub attributes: Vec<Attribute>,
}

/// Shared, immutable schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Creates a schema from a relation id, name and attribute names.
    pub fn new(
        relation: RelationId,
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Schema {
            relation,
            name: name.into(),
            attributes: attributes.into_iter().map(Attribute::new).collect(),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Looks up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(AttrId::from)
    }

    /// Returns the attribute name for an id, if valid.
    pub fn attr_name(&self, id: AttrId) -> Option<&str> {
        self.attributes.get(id.index()).map(|a| a.name.as_str())
    }

    /// Builds an [`AttrRef`] for the named attribute of this relation.
    pub fn attr_ref(&self, name: &str) -> Option<AttrRef> {
        self.attr_id(name).map(|attr| AttrRef {
            relation: self.relation,
            attr,
        })
    }

    /// Iterates over all attribute references of this relation.
    pub fn attr_refs(&self) -> impl Iterator<Item = AttrRef> + '_ {
        (0..self.arity()).map(|i| AttrRef {
            relation: self.relation,
            attr: AttrId::from(i),
        })
    }
}

/// A fully qualified attribute reference: `relation.attribute`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrRef {
    /// The relation the attribute belongs to.
    pub relation: RelationId,
    /// The attribute within that relation's schema.
    pub attr: AttrId,
}

impl AttrRef {
    /// Creates a reference from raw parts.
    pub fn new(relation: RelationId, attr: AttrId) -> Self {
        AttrRef { relation, attr }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.relation, self.attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(RelationId::new(2), "S", ["a", "b", "c"])
    }

    #[test]
    fn attribute_lookup_by_name_and_id() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_id("b"), Some(AttrId::new(1)));
        assert_eq!(s.attr_id("z"), None);
        assert_eq!(s.attr_name(AttrId::new(2)), Some("c"));
        assert_eq!(s.attr_name(AttrId::new(9)), None);
    }

    #[test]
    fn attr_ref_construction() {
        let s = schema();
        let r = s.attr_ref("a").unwrap();
        assert_eq!(r.relation, RelationId::new(2));
        assert_eq!(r.attr, AttrId::new(0));
        assert!(s.attr_ref("missing").is_none());
        assert_eq!(r.to_string(), "R2.a0");
    }

    #[test]
    fn attr_refs_iterates_in_schema_order() {
        let s = schema();
        let refs: Vec<AttrRef> = s.attr_refs().collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0].attr, AttrId::new(0));
        assert_eq!(refs[2].attr, AttrId::new(2));
        assert!(refs.iter().all(|r| r.relation == s.relation));
    }

    #[test]
    fn schemas_with_same_shape_are_equal() {
        assert_eq!(schema(), schema());
        let other = Schema::new(RelationId::new(2), "S", ["a", "b"]);
        assert_ne!(schema(), other);
    }
}
