//! # clash-optimizer
//!
//! The multi-query optimizer of the CLASH reproduction (Section V of the
//! paper): it turns a workload of continuous multi-way equi-join queries
//! into a deployable topology of partitioned stores and routing rules.
//!
//! Pipeline:
//!
//! 1. [`candidate`] — enumerate the plan space: MIRs, candidate probe
//!    orders (Algorithm 1) and partitioning decorations, with their
//!    probe costs (Equation 1),
//! 2. [`ilp_builder`] — translate the candidates of all queries into one
//!    0/1 ILP (Algorithm 2) whose step variables are shared across
//!    queries, and extract the chosen probe orders from its solution,
//! 3. [`topology`] — merge the chosen probe orders into probe trees
//!    (Fig. 4) and emit a [`TopologyPlan`]: stores, rule sets keyed by
//!    incoming edge labels, and ingest routing (Section V-B),
//! 4. [`planner`] — the top-level API with three strategies: the paper's
//!    CLASH-MQO (`GlobalIlp`) and the two baselines used in Fig. 7,
//!    `Independent` (one isolated plan per query) and `Shared` (per-query
//!    optimal plans with identical sub-plans deduplicated).

pub mod candidate;
pub mod ilp_builder;
pub mod planner;
pub mod store;
pub mod topology;

pub use candidate::{
    enumerate_candidates, CandidateSet, DecoratedProbeOrder, PlanSpaceConfig, StepKey,
};
pub use ilp_builder::{build_ilp, extract_selection, IlpArtifacts, Selection};
pub use planner::{OptimizationReport, Planner, PlannerConfig, Strategy};
pub use store::StoreDescriptor;
pub use topology::{
    IngestRoute, OutputAction, Rule, SendTarget, StoreDef, TopologyBuilder, TopologyPlan,
};
