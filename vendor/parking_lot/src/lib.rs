//! Offline stub of `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! guard-returning (non-`Result`) API. Lock poisoning is translated to a
//! panic propagation: a thread that panicked while holding the lock
//! poisons it, and the next accessor re-raises — acceptable for this
//! workspace, which never continues after a panicking critical section.

use std::sync::{self, LockResult};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Reader-writer lock with parking_lot's API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// Mutex with parking_lot's API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Exclusive mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(&*m.lock(), "ab");
    }
}
