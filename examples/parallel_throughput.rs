//! Sharded parallel runtime demo: three streamed relations, two
//! continuous multi-way join queries, executed once on the sequential
//! `LocalEngine` and then on the sharded `ParallelEngine` with 1, 2 and 4
//! worker threads. Prints end-to-end wall-clock tuples/sec per runtime and
//! verifies that every deployment produces the identical result count.
//!
//! Run with: `cargo run --release --example parallel_throughput`

use clash_common::{Duration, EpochConfig, Window};
use clash_core::{ClashSystem, RuntimeMode, Strategy, SystemConfig};
use clash_runtime::EngineConfig;
use std::time::Instant;

const TUPLES_PER_RELATION: u64 = 20_000;

fn run(mode: RuntimeMode) -> Result<(f64, u64, String), Box<dyn std::error::Error>> {
    let mut clash = ClashSystem::new(SystemConfig {
        runtime: mode,
        // One epoch covering the whole stream: this demo compares raw
        // throughput on a *fixed* plan, so keep the adaptive controller
        // (ingest-driven on Local, epoch-driver-driven on Parallel) from
        // rewiring mid-stream — reconfiguration points are wall-clock
        // relative to the stream and would make the result counts
        // differ between runtimes.
        engine: EngineConfig {
            epoch: EpochConfig::new(Duration::from_secs(1 << 20)),
            ..EngineConfig::default()
        },
        ..SystemConfig::default()
    });
    // Three streamed relations; store parallelism 4 so the catalog carries
    // enough partitions for every worker count in the sweep.
    clash.register_relation("orders", ["orderkey", "custkey"], Window::secs(3600), 4)?;
    clash.register_relation(
        "lineitem",
        ["orderkey", "partkey", "qty"],
        Window::secs(3600),
        4,
    )?;
    clash.register_relation("part", ["partkey", "size"], Window::secs(3600), 4)?;
    clash.set_rate("orders", 1000.0)?;
    clash.set_rate("lineitem", 1000.0)?;
    clash.set_rate("part", 1000.0)?;

    // Two queries sharing the orders ⋈ lineitem state.
    clash.register_query(
        "q1",
        "orders(orderkey), lineitem(orderkey,partkey), part(partkey)",
    )?;
    clash.register_query("q2", "orders(orderkey), lineitem(orderkey)")?;
    clash.deploy(Strategy::GlobalIlp)?;

    let orders = clash.catalog().relation_id("orders").unwrap();
    let lineitem = clash.catalog().relation_id("lineitem").unwrap();
    let part = clash.catalog().relation_id("part").unwrap();

    let started = Instant::now();
    let mut sent = 0u64;
    for i in 0..TUPLES_PER_RELATION {
        let ts = i * 2;
        let orderkey = (i % 500) as i64;
        let partkey = (i % 200) as i64;
        let o = clash.tuple(
            "orders",
            ts,
            &[
                ("orderkey", orderkey.into()),
                ("custkey", ((i % 97) as i64).into()),
            ],
        )?;
        let l = clash.tuple(
            "lineitem",
            ts + 1,
            &[
                ("orderkey", orderkey.into()),
                ("partkey", partkey.into()),
                ("qty", ((i % 13) as i64).into()),
            ],
        )?;
        let p = clash.tuple(
            "part",
            ts + 1,
            &[
                ("partkey", partkey.into()),
                ("size", ((i % 7) as i64).into()),
            ],
        )?;
        clash.ingest_by_id(orders, o)?;
        clash.ingest_by_id(lineitem, l)?;
        clash.ingest_by_id(part, p)?;
        sent += 3;
    }
    let snap = clash.snapshot()?; // drains the parallel runtime
    let elapsed = started.elapsed().as_secs_f64();
    let busy = match clash.parallel_engine_mut() {
        Some(engine) => {
            let shares: Vec<String> = engine
                .worker_busy()
                .iter()
                .map(|d| format!("{:.1}s", d.as_secs_f64()))
                .collect();
            format!("[{}]", shares.join(" "))
        }
        None => String::new(),
    };
    Ok((sent as f64 / elapsed, snap.total_results(), busy))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("3 streams x {TUPLES_PER_RELATION} tuples, 2 shared queries, GlobalIlp plan\n");
    println!(
        "{:<16} {:>18} {:>14} {:>10}  worker busy",
        "runtime", "throughput[t/s]", "results", "speedup"
    );
    let (local_tps, local_results, _) = run(RuntimeMode::Local)?;
    println!(
        "{:<16} {:>18.0} {:>14} {:>9.2}x",
        "Local", local_tps, local_results, 1.0
    );
    for workers in [1usize, 2, 4] {
        let (tps, results, busy) = run(RuntimeMode::Parallel(workers))?;
        assert_eq!(
            results, local_results,
            "parallel runtime must produce identical results"
        );
        println!(
            "{:<16} {:>18.0} {:>14} {:>9.2}x  {}",
            format!("Parallel({workers})"),
            tps,
            results,
            tps / local_tps,
            busy
        );
    }
    println!(
        "
(Wall-clock speedup is bounded by the host's core count — this
 demo saturates every worker; the busy column shows the even shard
 split that turns into speedup on multi-core hardware.)"
    );
    Ok(())
}
