//! # clash-runtime
//!
//! Execution substrate for the topologies produced by `clash-optimizer`.
//!
//! The paper deploys its plans as Apache Storm topologies on a cluster;
//! this crate substitutes a self-contained runtime that executes the same
//! stores, rule sets and routing decisions (the substitution is documented
//! in DESIGN.md):
//!
//! * [`StoreInstance`] — a partitioned, epoch-versioned, window-expiring
//!   relation store with per-attribute hash indexes,
//! * [`LocalEngine`] — a deterministic, single-process executor that
//!   ingests input tuples, walks the routing rules of a
//!   [`clash_optimizer::TopologyPlan`] (Algorithm 3 / 4 of the paper),
//!   maintains intermediate-result stores, emits join results and tracks
//!   the metrics the evaluation reports (tuples sent, store memory,
//!   per-result latency, throughput),
//! * [`ParallelEngine`] — the sharded counterpart: one worker thread per
//!   store shard, `partition_hash` routing over channels, and epoch
//!   barriers that aggregate per-worker metrics/statistics while keeping
//!   the result set identical to `LocalEngine` (see [`parallel`]),
//! * [`SourceHandle`] — concurrent multi-source ingestion for the
//!   parallel engine: N producer threads push straight to the worker
//!   shards through per-source micro-batching routers with bounded
//!   in-flight backpressure, while results stream to subscribers between
//!   barriers; plan installs quiesce producers (no push is ever dropped
//!   by a reconfiguration) and a control-plane epoch driver re-optimizes
//!   source-fed streams off the stream clock (see [`ingest`] and
//!   [`parallel`]),
//! * [`StatsCollector`] — per-epoch sampling of arrival rates and
//!   predicate selectivities (the "statistics gathering" of Fig. 5),
//! * [`AdaptiveController`] — epoch-based re-optimization: statistics from
//!   epoch `i` are evaluated in epoch `i+1` and the new configuration
//!   becomes active in epoch `i+2` (Section VI-A), with store state
//!   carried over across reconfigurations and store reference counting on
//!   query removal (Section VI-B).

pub mod adaptive;
pub mod engine;
mod exposition;
pub mod ingest;
pub mod metrics;
pub mod parallel;
pub mod stats_collector;
pub mod store;

pub use adaptive::{AdaptiveConfig, AdaptiveController, ControllerDecision};
pub use engine::{EngineConfig, EngineControl, LocalEngine, ResultSink};
pub use ingest::SourceHandle;
pub use metrics::{EngineMetrics, LatencyStats, MetricsSnapshot};
pub use parallel::ParallelEngine;
pub use stats_collector::StatsCollector;
pub use store::StoreInstance;
