//! CI smoke: every plan behind the paper's benchmark figures must pass
//! the static verifier with zero errors, under every strategy.
//!
//! Covers the Fig. 7 TPC-H multi-query workloads (five and ten queries),
//! the Fig. 8 adaptive scenario and a sweep of Fig. 9 random synthetic
//! workloads. Any Error-level diagnostic fails the run (exit 1);
//! warnings are printed but tolerated.
//!
//! Run with: `cargo run --release -p clash-bench --bin plan_smoke`

use std::process::ExitCode;

use clash_analyzer::{errors, verify_plan_with_queries};
use clash_catalog::{Catalog, Statistics};
use clash_common::{Timestamp, Window};
use clash_datagen::{AdaptiveScenario, SyntheticEnv, SyntheticWorkloadConfig, TpchWorkload};
use clash_optimizer::{Planner, PlannerConfig, Strategy};
use clash_query::JoinQuery;

const STRATEGIES: [Strategy; 3] = [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp];

/// Plans `queries` under every strategy and verifies each plan, counting
/// errors and warnings into the totals. Returns the number of failing
/// (Error-carrying) plans.
fn check(
    label: &str,
    catalog: &Catalog,
    stats: &Statistics,
    queries: &[JoinQuery],
    warnings: &mut usize,
) -> usize {
    let mut failing = 0;
    for strategy in STRATEGIES {
        let planner = Planner::new(catalog, stats, PlannerConfig::default());
        let report = match planner.plan(queries, strategy) {
            Ok(report) => report,
            Err(e) => {
                println!("FAIL {label} [{strategy:?}]: planning failed: {e}");
                failing += 1;
                continue;
            }
        };
        let diags = verify_plan_with_queries(catalog, queries, &report.plan);
        let errs = errors(&diags);
        for d in &diags {
            if !d.is_error() {
                println!("  warn {label} [{strategy:?}]: {d}");
                *warnings += 1;
            }
        }
        if errs.is_empty() {
            println!(
                "ok   {label} [{strategy:?}]: {} stores, {} rule sets, clean",
                report.plan.num_stores(),
                report.plan.rules.len()
            );
        } else {
            failing += 1;
            println!("FAIL {label} [{strategy:?}]:");
            for d in errs {
                println!("  {d}");
            }
        }
    }
    failing
}

fn main() -> ExitCode {
    let mut failing = 0;
    let mut warnings = 0;

    // Fig. 7: the TPC-H multi-query workloads, five and ten queries.
    let workload = TpchWorkload::new(2, Window::secs(3600)).expect("tpch workload");
    let five = workload.five_queries().expect("five queries");
    let ten = workload.ten_queries().expect("ten queries");
    failing += check(
        "fig7/5q",
        &workload.catalog,
        &workload.stats,
        &five,
        &mut warnings,
    );
    failing += check(
        "fig7/10q",
        &workload.catalog,
        &workload.stats,
        &ten,
        &mut warnings,
    );

    // Fig. 8: the adaptive re-optimization scenario's query.
    let scenario =
        AdaptiveScenario::new(200, Timestamp::from_millis(30_000), 42).expect("scenario");
    let query = vec![scenario.query.clone()];
    failing += check(
        "fig8/adaptive",
        &scenario.catalog,
        &scenario.stats,
        &query,
        &mut warnings,
    );

    // Fig. 9: random synthetic workloads across sizes and parallelism.
    for (seed, num_queries, query_size, parallelism) in
        [(1, 2, 3, 1), (2, 3, 3, 2), (3, 4, 4, 2), (4, 5, 3, 4)]
    {
        let config = SyntheticWorkloadConfig {
            parallelism,
            ..SyntheticWorkloadConfig::default()
        };
        let mut env = SyntheticEnv::new(config, seed).expect("synthetic env");
        let queries = env
            .random_queries(num_queries, query_size)
            .expect("random queries");
        let label = format!("fig9/seed{seed}-q{num_queries}x{query_size}-p{parallelism}");
        failing += check(&label, &env.catalog, &env.stats, &queries, &mut warnings);
    }

    println!();
    if failing == 0 {
        println!("plan smoke passed: all benchmark plans verify clean ({warnings} warnings)");
        ExitCode::SUCCESS
    } else {
        println!("plan smoke FAILED: {failing} plan(s) carry Error diagnostics");
        ExitCode::FAILURE
    }
}
