//! Runtime metrics: the quantities behind Fig. 7b–7d and Fig. 8.

use clash_common::{FxHashMap, LatencyHistogram, QueryId};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Aggregated latency statistics in microseconds, extracted from a
/// [`LatencyHistogram`]: count, mean and exact max as before, plus the
/// tail quantiles the paper's evaluation (Fig. 7d) actually argues about.
/// Quantiles carry the histogram's bucket error (≤
/// [`LatencyHistogram::RELATIVE_ERROR`] above the exact sample quantile).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median latency (µs).
    pub p50_us: f64,
    /// 90th-percentile latency (µs).
    pub p90_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_us: f64,
    /// 99.9th-percentile latency (µs).
    pub p999_us: f64,
    /// Maximum latency (µs, exact).
    pub max_us: f64,
}

impl LatencyStats {
    /// Summarizes a histogram.
    pub fn from_histogram(hist: &LatencyHistogram) -> LatencyStats {
        LatencyStats {
            count: hist.count(),
            mean_us: hist.mean_us(),
            p50_us: hist.quantile_us(0.5),
            p90_us: hist.quantile_us(0.9),
            p99_us: hist.quantile_us(0.99),
            p999_us: hist.quantile_us(0.999),
            max_us: hist.max_us(),
        }
    }
}

/// Mutable metrics accumulated by the engine.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    /// Input tuples ingested per relation (keyed by raw relation id).
    pub tuples_ingested: u64,
    /// Tuple copies sent between stores (the probe cost actually paid).
    pub tuples_sent: u64,
    /// Messages that were broadcast to every partition of a store.
    pub broadcasts: u64,
    /// Join results emitted per query (bumped once per emitted result —
    /// Fx-hashed so the emission path does not pay SipHash per result).
    pub results: FxHashMap<QueryId, u64>,
    /// Probe lookups performed.
    pub probes: u64,
    /// Per-result ingest-to-emit latency, one mergeable histogram per
    /// query (keyed like `results`; merged bucket-wise at epoch barriers).
    latency: FxHashMap<QueryId, LatencyHistogram>,
    /// Age of micro-batch buffers when they were flushed (how long the
    /// oldest buffered delivery waited for the size or time trigger).
    pub flush_age: LatencyHistogram,
    /// Wall-clock processing time spent inside `ingest`.
    pub busy: Duration,
    /// Candidate plans rejected by the static analyzer at install time.
    pub plan_rejections: u64,
}

impl EngineMetrics {
    /// Records the latency of one result emitted for `query`.
    #[inline]
    pub fn record_latency(&mut self, query: QueryId, latency: Duration) {
        self.latency.entry(query).or_default().record(latency);
    }

    /// Latency statistics over all emitted results (all queries merged).
    pub fn latency(&self) -> LatencyStats {
        LatencyStats::from_histogram(&self.combined_latency())
    }

    /// Latency statistics for one query.
    pub fn latency_for(&self, query: QueryId) -> LatencyStats {
        self.latency
            .get(&query)
            .map(LatencyStats::from_histogram)
            .unwrap_or_default()
    }

    /// The per-query latency histograms.
    pub fn latency_histograms(&self) -> impl Iterator<Item = (QueryId, &LatencyHistogram)> {
        self.latency.iter().map(|(q, h)| (*q, h))
    }

    /// Per-query latency summaries keyed by raw query id — the shape
    /// [`MetricsSnapshot::latency_per_query`] wants.
    pub fn latency_per_query_stats(&self) -> FxHashMap<u32, LatencyStats> {
        self.latency
            .iter()
            .map(|(q, h)| (q.0, LatencyStats::from_histogram(h)))
            .collect()
    }

    /// One histogram over every emitted result (all queries merged) —
    /// what the coordinator accumulates per worker to report per-shard
    /// tail latency.
    pub fn combined_latency(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::new();
        for hist in self.latency.values() {
            all.merge(hist);
        }
        all
    }

    /// Total results across all queries.
    pub fn total_results(&self) -> u64 {
        self.results.values().sum()
    }

    /// Merges another metrics accumulation into this one (used by the
    /// parallel runtime to aggregate per-worker deltas at epoch barriers).
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.tuples_ingested += other.tuples_ingested;
        self.tuples_sent += other.tuples_sent;
        self.broadcasts += other.broadcasts;
        self.probes += other.probes;
        for (query, n) in &other.results {
            *self.results.entry(*query).or_default() += n;
        }
        for (query, hist) in &other.latency {
            self.latency.entry(*query).or_default().merge(hist);
        }
        self.flush_age.merge(&other.flush_age);
        self.busy += other.busy;
        self.plan_rejections += other.plan_rejections;
    }
}

/// Immutable snapshot of the engine state used by experiment drivers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Input tuples ingested.
    pub tuples_ingested: u64,
    /// Tuple copies sent between stores.
    pub tuples_sent: u64,
    /// Broadcast sends.
    pub broadcasts: u64,
    /// Probe lookups performed.
    pub probes: u64,
    /// Results per query (keyed by raw query id).
    pub results: FxHashMap<u32, u64>,
    /// Latency statistics over all queries.
    pub latency: LatencyStats,
    /// Latency statistics per query (keyed by raw query id, like
    /// `results`).
    pub latency_per_query: FxHashMap<u32, LatencyStats>,
    /// Total bytes held by all stores.
    pub store_bytes: usize,
    /// Total tuples held by all stores.
    pub store_tuples: usize,
    /// Number of store instances.
    pub num_stores: usize,
    /// Wall-clock time spent processing (`ingest` calls).
    pub busy_secs: f64,
    /// Throughput: ingested tuples per busy second.
    pub throughput_tps: f64,
}

impl MetricsSnapshot {
    /// Results emitted for one query.
    pub fn results_for(&self, query: QueryId) -> u64 {
        self.results.get(&query.0).copied().unwrap_or(0)
    }

    /// Total results across queries.
    pub fn total_results(&self) -> u64 {
        self.results.values().sum()
    }

    /// Latency statistics for one query.
    pub fn latency_for(&self, query: QueryId) -> LatencyStats {
        self.latency_per_query
            .get(&query.0)
            .copied()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_aggregation() {
        let mut m = EngineMetrics::default();
        assert_eq!(m.latency(), LatencyStats::default());
        let q = QueryId::new(0);
        m.record_latency(q, Duration::from_micros(100));
        m.record_latency(q, Duration::from_micros(300));
        let l = m.latency();
        assert_eq!(l.count, 2);
        assert!((l.mean_us - 200.0).abs() < 1e-6);
        assert!((l.max_us - 300.0).abs() < 1e-6);
        // Quantiles carry at most one bucket's relative error.
        let bound = 1.0 + clash_common::LatencyHistogram::RELATIVE_ERROR;
        assert!(l.p50_us >= 100.0 && l.p50_us <= 100.0 * bound);
        assert!(l.p99_us >= 300.0 - 1e-9 && l.p99_us <= 300.0 * bound);
    }

    #[test]
    fn latency_is_tracked_per_query() {
        let mut m = EngineMetrics::default();
        let q1 = QueryId::new(1);
        let q2 = QueryId::new(2);
        m.record_latency(q1, Duration::from_micros(100));
        m.record_latency(q2, Duration::from_micros(900));
        assert_eq!(m.latency_for(q1).count, 1);
        assert_eq!(m.latency_for(q2).count, 1);
        assert!(m.latency_for(q1).max_us < m.latency_for(q2).max_us);
        assert_eq!(m.latency_for(QueryId::new(3)).count, 0);
        assert_eq!(m.latency().count, 2, "combined view spans all queries");
    }

    #[test]
    fn merge_combines_per_query_histograms() {
        let q1 = QueryId::new(1);
        let q2 = QueryId::new(2);
        let mut a = EngineMetrics::default();
        let mut b = EngineMetrics::default();
        a.record_latency(q1, Duration::from_micros(50));
        b.record_latency(q1, Duration::from_micros(150));
        b.record_latency(q2, Duration::from_micros(500));
        a.merge(&b);
        assert_eq!(a.latency_for(q1).count, 2);
        assert_eq!(a.latency_for(q2).count, 1);
        assert!((a.latency_for(q1).mean_us - 100.0).abs() < 1e-6);
        assert_eq!(a.latency().count, 3);
    }

    #[test]
    fn result_counting() {
        let mut m = EngineMetrics::default();
        *m.results.entry(QueryId::new(1)).or_default() += 3;
        *m.results.entry(QueryId::new(2)).or_default() += 2;
        assert_eq!(m.total_results(), 5);
    }

    #[test]
    fn snapshot_lookups() {
        let mut s = MetricsSnapshot::default();
        s.results.insert(7, 11);
        assert_eq!(s.results_for(QueryId::new(7)), 11);
        assert_eq!(s.results_for(QueryId::new(8)), 0);
        assert_eq!(s.total_results(), 11);
        s.latency_per_query.insert(
            7,
            LatencyStats {
                count: 11,
                ..LatencyStats::default()
            },
        );
        assert_eq!(s.latency_for(QueryId::new(7)).count, 11);
        assert_eq!(s.latency_for(QueryId::new(8)).count, 0);
    }
}
