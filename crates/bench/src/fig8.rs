//! Fig. 8: adaptive vs. static execution under changing data
//! characteristics.
//!
//! A four-way linear join `R(a), S(a,b), T(b,c), U(c)` is deployed twice —
//! once with the adaptive controller enabled and once with the initial
//! plan frozen. After `shift_at` the input characteristics flip (Fig. 8a:
//! `S` tuples suddenly find many partners in `R` and none in `T`), which
//! makes the frozen plan's intermediate results explode while the adaptive
//! deployment re-optimizes after one epoch.

use clash_common::{Duration, Epoch, EpochConfig, Timestamp};
use clash_datagen::AdaptiveScenario;
use clash_optimizer::Strategy;
use clash_runtime::{AdaptiveConfig, AdaptiveController, EngineConfig, LocalEngine};
use serde::Serialize;

/// One time-bucket of the Fig. 8 latency series.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Point {
    /// Stream time in seconds.
    pub time_s: u64,
    /// Mean per-result processing latency of the adaptive deployment in
    /// this bucket (µs).
    pub adaptive_latency_us: f64,
    /// Mean latency of the static deployment (µs).
    pub static_latency_us: f64,
    /// Tuple copies sent by the adaptive deployment in this bucket.
    pub adaptive_tuples_sent: u64,
    /// Tuple copies sent by the static deployment in this bucket.
    pub static_tuples_sent: u64,
    /// Store bytes of the adaptive deployment at the end of the bucket.
    pub adaptive_store_bytes: usize,
    /// Store bytes of the static deployment at the end of the bucket.
    pub static_store_bytes: usize,
    /// Number of reconfigurations the adaptive controller has installed so
    /// far.
    pub reconfigurations: usize,
}

struct Deployment {
    engine: LocalEngine,
    controller: AdaptiveController,
    last_epoch: Epoch,
}

fn deploy(scenario: &AdaptiveScenario, adaptive: bool) -> Deployment {
    let config = AdaptiveConfig {
        strategy: Strategy::GlobalIlp,
        enabled: adaptive,
        ..AdaptiveConfig::default()
    };
    let (controller, plan) = AdaptiveController::new(
        scenario.catalog.clone(),
        vec![scenario.query.clone()],
        scenario.stats.clone(),
        config,
    )
    .expect("initial plan");
    let engine = LocalEngine::new(
        scenario.catalog.clone(),
        plan,
        EngineConfig {
            epoch: EpochConfig::new(Duration::from_secs(1)),
            expire_every: 256,
            ..EngineConfig::default()
        },
    );
    Deployment {
        engine,
        controller,
        last_epoch: Epoch::ZERO,
    }
}

/// Runs the Fig. 8a scenario: `duration_s` seconds of stream time with
/// `rounds_per_s` tuples per relation and second, characteristics flipping
/// at `shift_s`.
pub fn run_fig8(duration_s: u64, rounds_per_s: u64, shift_s: u64, seed: u64) -> Vec<Fig8Point> {
    let mut scenario =
        AdaptiveScenario::new(200, Timestamp::from_millis(shift_s * 1000), seed).expect("scenario");
    let mut adaptive = deploy(&scenario, true);
    let mut static_dep = deploy(&scenario, false);

    let step_ms = 1000 / rounds_per_s.max(1);
    let mut points = Vec::new();
    for second in 0..duration_s {
        for _ in 0..rounds_per_s {
            let round = scenario.next_round(step_ms);
            for (relation, tuple) in &round {
                let epoch = EpochConfig::new(Duration::from_secs(1)).epoch_of(tuple.ts);
                for dep in [&mut adaptive, &mut static_dep] {
                    dep.engine.ingest(*relation, tuple.clone()).expect("ingest");
                    if epoch > dep.last_epoch {
                        dep.last_epoch = epoch;
                        dep.controller
                            .on_epoch(&mut dep.engine, epoch)
                            .expect("epoch handling");
                    }
                }
            }
        }
        let a = adaptive.engine.snapshot();
        let s = static_dep.engine.snapshot();
        points.push(Fig8Point {
            time_s: second + 1,
            adaptive_latency_us: a.latency.mean_us,
            static_latency_us: s.latency.mean_us,
            adaptive_tuples_sent: a.tuples_sent,
            static_tuples_sent: s.tuples_sent,
            adaptive_store_bytes: a.store_bytes,
            static_store_bytes: s.store_bytes,
            reconfigurations: adaptive.controller.reconfigurations,
        });
        // Per-bucket statistics: reset the counters, keep the store state.
        adaptive.engine.reset_metrics();
        static_dep.engine.reset_metrics();
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_deployment_reconfigures_and_sends_fewer_tuples_after_shift() {
        // 12 s of stream time, shift at 5 s.
        let points = run_fig8(12, 40, 5, 7);
        assert_eq!(points.len(), 12);
        let reconfigs = points.last().unwrap().reconfigurations;
        assert!(reconfigs >= 1, "adaptive controller never reconfigured");
        // After the shift (plus the two-epoch pipeline), the adaptive
        // deployment should not send more tuple copies than the static one.
        let tail = &points[9..];
        let adaptive_sent: u64 = tail.iter().map(|p| p.adaptive_tuples_sent).sum();
        let static_sent: u64 = tail.iter().map(|p| p.static_tuples_sent).sum();
        assert!(
            adaptive_sent <= static_sent,
            "adaptive {adaptive_sent} vs static {static_sent}"
        );
    }
}
