//! Offline stub of `rand` 0.8.
//!
//! Provides the exact API subset this workspace uses — `Rng::{gen_range,
//! gen_bool}`, `SeedableRng::seed_from_u64` and `rngs::StdRng` — backed by
//! a deterministic xoshiro256++ generator seeded through splitmix64. Not
//! cryptographic and not bit-compatible with the real `StdRng`; streams
//! are stable across runs and platforms, which is all the workloads and
//! property tests here need.

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types with a uniform sampler over a half-open range. Mirrors rand's
/// `SampleUniform` so the element type of a `Range<T>` flows through type
/// inference exactly as with the real crate.
pub trait SampleUniform: Sized {
    /// Draws one value from `[start, end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                (((rng.next_u64() as u128) % span) as i128 + start as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start < end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + unit * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: f32, end: f32) -> f32 {
        f64::sample_range(rng, start as f64, end as f64) as f32
    }
}

/// Range shapes that can be sampled (only `Range<T>` in this stub).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_range(0.0..1.0f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction, `seed_from_u64` only.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stub for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Avoid the all-zero state (splitmix cannot produce it from a
            // single pass, but stay defensive).
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same xoshiro in this stub.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(10..20i64);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
