//! Fig. 7: multi-query performance on the TPC-H-shaped workload.
//!
//! For each strategy (Independent ≈ FI/SI, Shared ≈ FS/SS, CMQO) the
//! driver plans the 5- or 10-query workload, streams the same generated
//! tuple mix through the resulting topology and reports throughput
//! (Fig. 7b), store memory (Fig. 7c) and mean result latency (Fig. 7d).

use clash_common::Window;
use clash_datagen::{TpchGenerator, TpchWorkload};
use clash_optimizer::{Planner, PlannerConfig, Strategy};
use clash_runtime::{EngineConfig, LocalEngine};
use serde::Serialize;

/// One row of the Fig. 7 result table.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Number of queries in the workload (5 or 10).
    pub num_queries: usize,
    /// Strategy label (Independent / Shared / CMQO).
    pub strategy: String,
    /// Throughput in tuples per second (Fig. 7b).
    pub throughput_tps: f64,
    /// Store memory in megabytes (Fig. 7c).
    pub memory_mb: f64,
    /// Mean end-to-end result latency in milliseconds (Fig. 7d).
    pub latency_ms: f64,
    /// Total join results produced (sanity check: equal across strategies).
    pub results: u64,
    /// Tuple copies sent between stores (the optimized probe cost).
    pub tuples_sent: u64,
}

/// Runs the Fig. 7 experiment.
///
/// * `num_queries`: 5 (Fig. 7a workload) or 10 (extended workload).
/// * `num_tuples`: length of the generated input stream.
/// * `scale`: key-domain scale factor of the generator.
pub fn run_fig7(num_queries: usize, num_tuples: usize, scale: f64, seed: u64) -> Vec<Fig7Row> {
    let workload = TpchWorkload::new(2, Window::secs(3600)).expect("workload");
    let queries = if num_queries <= 5 {
        workload.five_queries().expect("queries")
    } else {
        workload.ten_queries().expect("queries")
    };
    let planner_config = PlannerConfig::default();
    let planner = Planner::new(&workload.catalog, &workload.stats, planner_config);

    let mut rows = Vec::new();
    for strategy in [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp] {
        let report = planner.plan(&queries, strategy).expect("plan");
        let mut engine = LocalEngine::new(
            workload.catalog.clone(),
            report.plan,
            EngineConfig::default(),
        );
        // Identical input stream for every strategy.
        let mut generator = TpchGenerator::new(scale, seed);
        let stream = generator
            .mixed_stream(&workload, num_tuples)
            .expect("stream");
        for (relation, tuple) in stream {
            engine.ingest(relation, tuple).expect("ingest");
        }
        let snap = engine.snapshot();
        rows.push(Fig7Row {
            num_queries: queries.len(),
            strategy: strategy.label().to_string(),
            throughput_tps: snap.throughput_tps,
            memory_mb: snap.store_bytes as f64 / (1024.0 * 1024.0),
            latency_ms: snap.latency.mean_us / 1000.0,
            results: snap.total_results(),
            tuples_sent: snap.tuples_sent,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shapes_hold_on_a_small_stream() {
        let rows = run_fig7(5, 3_000, 0.002, 42);
        assert_eq!(rows.len(), 3);
        let get = |label: &str| rows.iter().find(|r| r.strategy == label).unwrap();
        let independent = get("Independent");
        let shared = get("Shared");
        let cmqo = get("CMQO");
        // Correctness: every strategy produces the same results.
        assert_eq!(independent.results, shared.results);
        assert_eq!(shared.results, cmqo.results);
        // Shape of Fig. 7c: the independent plan needs the most memory.
        assert!(independent.memory_mb > shared.memory_mb);
        assert!(independent.memory_mb > cmqo.memory_mb);
        // Shape of Fig. 7b: sharing does not send more tuple copies than
        // independent execution.
        assert!(cmqo.tuples_sent <= independent.tuples_sent);
    }
}
