//! Per-epoch sampling of data characteristics (Fig. 2 / Fig. 5).
//!
//! The collector observes the stream as the engine processes it: arrivals
//! per relation and, for every equi-join predicate evaluated by a probe
//! rule, how many matches a probing tuple found relative to the size of
//! the probed store. From these observations it derives the arrival rates
//! and selectivities that the optimizer's cost model consumes in the next
//! epoch.

use clash_catalog::Statistics;
use clash_common::{AttrRef, Duration, Epoch, FxHashMap, RelationId};
use clash_query::EquiPredicate;

#[derive(Debug, Default, Clone)]
struct EpochObservations {
    arrivals: FxHashMap<RelationId, u64>,
    /// predicate -> (probes, matches, accumulated probed-store size).
    predicate_obs: FxHashMap<(AttrRef, AttrRef), (u64, u64, u64)>,
}

/// Collects observations keyed by epoch and turns them into
/// [`Statistics`] snapshots.
#[derive(Debug, Default)]
pub struct StatsCollector {
    epochs: FxHashMap<Epoch, EpochObservations>,
    epoch_length: Duration,
}

impl StatsCollector {
    /// Creates a collector for the given epoch length.
    pub fn new(epoch_length: Duration) -> Self {
        StatsCollector {
            epochs: FxHashMap::default(),
            epoch_length,
        }
    }

    /// Records the arrival of an input tuple.
    pub fn record_arrival(&mut self, epoch: Epoch, relation: RelationId) {
        *self
            .epochs
            .entry(epoch)
            .or_default()
            .arrivals
            .entry(relation)
            .or_default() += 1;
    }

    /// Records the outcome of probing a store with `store_size` live tuples
    /// under the given predicates.
    pub fn record_probe(
        &mut self,
        epoch: Epoch,
        predicates: &[EquiPredicate],
        matches: u64,
        store_size: u64,
    ) {
        self.record_probe_obs(epoch, predicates, 1, matches, store_size);
    }

    /// Records a partial probe observation with an explicit probe count.
    /// The parallel runtime splits one logical probe across workers: one
    /// shard contributes the probe count, the others only their matches
    /// and store-size shares, so the merged totals equal what a single
    /// engine observing the whole probe would have recorded.
    pub fn record_probe_obs(
        &mut self,
        epoch: Epoch,
        predicates: &[EquiPredicate],
        probes: u64,
        matches: u64,
        store_size: u64,
    ) {
        let obs = self.epochs.entry(epoch).or_default();
        for p in predicates {
            let entry = obs
                .predicate_obs
                .entry((p.left, p.right))
                .or_insert((0, 0, 0));
            entry.0 += probes;
            entry.1 += matches;
            entry.2 += store_size;
        }
    }

    /// Whether any observation (arrival or probe) was recorded for the
    /// given epoch. The adaptive controller uses this to skip re-planning
    /// over epochs a timer-driven cadence jumped over: without fresh
    /// samples a snapshot would just echo the prior.
    pub fn has_samples(&self, epoch: Epoch) -> bool {
        self.epochs
            .get(&epoch)
            .is_some_and(|o| !o.arrivals.is_empty() || !o.predicate_obs.is_empty())
    }

    /// Builds a statistics snapshot from the observations of one epoch.
    /// Relations or predicates without observations keep the defaults of
    /// the provided prior.
    pub fn snapshot(&self, epoch: Epoch, prior: &Statistics) -> Statistics {
        let mut stats = prior.clone();
        stats.epoch = epoch;
        let Some(obs) = self.epochs.get(&epoch) else {
            return stats;
        };
        let secs = self.epoch_length.as_secs_f64().max(1e-9);
        for (relation, count) in &obs.arrivals {
            stats.set_rate(*relation, *count as f64 / secs);
        }
        for ((left, right), (probes, matches, store_size_sum)) in &obs.predicate_obs {
            if *probes == 0 {
                continue;
            }
            let avg_store = *store_size_sum as f64 / *probes as f64;
            if avg_store <= 0.0 {
                continue;
            }
            let matches_per_probe = *matches as f64 / *probes as f64;
            let selectivity = (matches_per_probe / avg_store).clamp(0.0, 1.0);
            stats.set_selectivity(*left, *right, selectivity);
        }
        stats
    }

    /// Drops observations older than `keep_from` (epochs already consumed
    /// by the optimizer).
    pub fn prune(&mut self, keep_from: Epoch) {
        self.epochs.retain(|e, _| *e >= keep_from);
    }

    /// Drains every observation into a standalone delta collector (the
    /// epoch length is copied so the delta normalizes rates identically).
    /// Used by parallel workers to hand their observations to the
    /// coordinator at epoch barriers.
    pub fn take_delta(&mut self) -> StatsCollector {
        StatsCollector {
            epochs: std::mem::take(&mut self.epochs),
            epoch_length: self.epoch_length,
        }
    }

    /// Merges the observations of a delta collector into this one. Arrival
    /// counts and predicate observations are summed per epoch, so the
    /// selectivity estimate over the merged data equals the estimate a
    /// single engine observing the union of the streams would produce.
    pub fn merge(&mut self, delta: StatsCollector) {
        for (epoch, obs) in delta.epochs {
            let target = self.epochs.entry(epoch).or_default();
            for (relation, n) in obs.arrivals {
                *target.arrivals.entry(relation).or_default() += n;
            }
            for (key, (probes, matches, size)) in obs.predicate_obs {
                let entry = target.predicate_obs.entry(key).or_insert((0, 0, 0));
                entry.0 += probes;
                entry.1 += matches;
                entry.2 += size;
            }
        }
    }

    /// Number of epochs with observations (for tests / introspection).
    pub fn observed_epochs(&self) -> usize {
        self.epochs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::AttrId;

    fn attr(rel: u32, a: u32) -> AttrRef {
        AttrRef::new(RelationId::new(rel), AttrId::new(a))
    }

    #[test]
    fn arrival_rates_are_normalized_by_epoch_length() {
        let mut c = StatsCollector::new(Duration::from_secs(2));
        for _ in 0..200 {
            c.record_arrival(Epoch(3), RelationId::new(0));
        }
        let stats = c.snapshot(Epoch(3), &Statistics::new());
        assert!((stats.rate(RelationId::new(0)) - 100.0).abs() < 1e-9);
        assert_eq!(stats.epoch, Epoch(3));
        // Unobserved relations keep the prior default.
        assert_eq!(
            stats.rate(RelationId::new(5)),
            Statistics::new().default_rate
        );
    }

    #[test]
    fn selectivity_estimated_from_matches_per_probe() {
        let mut c = StatsCollector::new(Duration::from_secs(1));
        let pred = EquiPredicate::new(attr(0, 0), attr(1, 0));
        // 10 probes against a store of 100 tuples, 50 matches total ->
        // 5 matches per probe -> selectivity 0.05.
        for _ in 0..10 {
            c.record_probe(Epoch(0), &[pred], 5, 100);
        }
        let stats = c.snapshot(Epoch(0), &Statistics::new());
        assert!((stats.selectivity(attr(0, 0), attr(1, 0)) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn snapshot_of_unobserved_epoch_returns_prior() {
        let c = StatsCollector::new(Duration::from_secs(1));
        let mut prior = Statistics::new();
        prior.set_rate(RelationId::new(1), 42.0);
        let stats = c.snapshot(Epoch(9), &prior);
        assert_eq!(stats.rate(RelationId::new(1)), 42.0);
        assert_eq!(stats.epoch, Epoch(9));
    }

    #[test]
    fn has_samples_reflects_recorded_observations() {
        let mut c = StatsCollector::new(Duration::from_secs(1));
        assert!(!c.has_samples(Epoch(0)));
        c.record_arrival(Epoch(0), RelationId::new(0));
        assert!(c.has_samples(Epoch(0)));
        assert!(!c.has_samples(Epoch(1)), "other epochs stay empty");
        let pred = EquiPredicate::new(attr(0, 0), attr(1, 0));
        c.record_probe(Epoch(2), &[pred], 1, 10);
        assert!(c.has_samples(Epoch(2)), "probe observations count too");
    }

    #[test]
    fn pruning_drops_old_epochs() {
        let mut c = StatsCollector::new(Duration::from_secs(1));
        c.record_arrival(Epoch(0), RelationId::new(0));
        c.record_arrival(Epoch(1), RelationId::new(0));
        c.record_arrival(Epoch(2), RelationId::new(0));
        assert_eq!(c.observed_epochs(), 3);
        c.prune(Epoch(2));
        assert_eq!(c.observed_epochs(), 1);
    }

    #[test]
    fn zero_store_size_probes_are_ignored_for_selectivity() {
        let mut c = StatsCollector::new(Duration::from_secs(1));
        let pred = EquiPredicate::new(attr(0, 0), attr(1, 0));
        c.record_probe(Epoch(0), &[pred], 0, 0);
        let stats = c.snapshot(Epoch(0), &Statistics::new());
        assert_eq!(
            stats.selectivity(attr(0, 0), attr(1, 0)),
            Statistics::new().default_selectivity
        );
    }
}
