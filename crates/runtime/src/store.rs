//! Partitioned, epoch-versioned relation stores with hash indexes.
//!
//! The probe hot path is allocation- and hash-lean: candidate lookups
//! borrow the index posting lists instead of cloning them (unindexed
//! attributes return a scan *marker*, never a materialized `0..len`
//! vector), probe predicates are resolved to positional [`SlotAccessor`]s
//! once per probe, and window expiry retains tuples in place while
//! repairing the hash indexes incrementally via an old→new offset remap —
//! no drain-and-rebuild.
//!
//! Hashing cost is kept off the per-tuple path three ways:
//!
//! * the per-value maps hash with [`clash_common::FxHasher`] instead of
//!   SipHash (trusted keys — see the fxhash module docs),
//! * the *outer* per-attribute level is not a map at all: a store indexes
//!   a handful of attributes, so each epoch container keeps its value
//!   maps in a `Vec` positionally aligned with the store's
//!   `indexed_attrs`, and probes resolve their attribute to a position
//!   **once** instead of re-hashing an `AttrRef` per epoch, and
//! * posting lists are small-inline ([`PostingList`]): a distinct
//!   join-key value only costs a heap allocation once it exceeds
//!   [`clash_common::INLINE_POSTINGS`] matches.

use clash_common::{
    fx_hash, AttrRef, Epoch, FxHashMap, PostingList, SlotAccessor, Timestamp, Tuple, Value, Window,
};
use clash_optimizer::StoreDescriptor;
use clash_query::EquiPredicate;

/// An attribute a store maintains a hash index over, with its precomputed
/// positional accessor (resolved once per store, reused for every insert
/// and index rebuild).
#[derive(Debug, Clone, Copy)]
struct IndexedAttr {
    attr: AttrRef,
    slot: SlotAccessor,
}

impl IndexedAttr {
    fn new(attr: AttrRef) -> IndexedAttr {
        IndexedAttr {
            attr,
            slot: SlotAccessor::of(&attr),
        }
    }
}

/// Result of an index lookup: either a borrowed posting list, a proof that
/// no stored tuple matches, or a marker that the attribute is unindexed
/// and the caller must scan. Borrowing (instead of the seed's
/// `Vec<usize>` clone per lookup) keeps the probe hot path allocation-free.
enum Candidates<'a> {
    /// Tuples whose indexed value equals the probe value.
    Hit(&'a [usize]),
    /// The attribute is indexed but the value has no entry.
    Miss,
    /// The attribute is not indexed: scan all stored tuples.
    Scan,
}

/// One epoch's worth of stored tuples inside a partition, with hash
/// indexes per indexed attribute (the paper builds an index per distinct
/// attribute access of the registered probe rules).
#[derive(Debug, Default)]
struct EpochContainer {
    tuples: Vec<Tuple>,
    /// Ingest sequence number of the root tuple that caused each insertion
    /// (parallel runtime; `0` for the sequential engine, which needs no
    /// ordering guard beyond timestamps).
    seqs: Vec<u64>,
    /// Per-attribute value indexes, positionally aligned with the store's
    /// `indexed_attrs` (inserting keys by position avoids hashing an
    /// `AttrRef` per index entry; the value maps use the Fx hasher and
    /// inline posting lists).
    indexes: Vec<FxHashMap<Value, PostingList>>,
    bytes: usize,
}

impl EpochContainer {
    fn insert(&mut self, tuple: Tuple, seq: u64, indexed_attrs: &[IndexedAttr]) {
        if self.indexes.len() < indexed_attrs.len() {
            self.indexes
                .resize_with(indexed_attrs.len(), FxHashMap::default);
        }
        let idx = self.tuples.len();
        self.bytes += tuple.approx_size_bytes();
        for (pos, indexed) in indexed_attrs.iter().enumerate() {
            if let Some(value) = indexed.slot.get(&tuple) {
                // Index keys are cheap clones: `Value::Str` shares its
                // `Arc<str>` with the stored tuple, never reallocating the
                // string payload.
                self.indexes[pos]
                    .entry(value.clone())
                    .or_default()
                    .push(idx);
            }
        }
        self.tuples.push(tuple);
        self.seqs.push(seq);
    }

    /// Candidate matches via the index at attribute position `pos`
    /// (resolved once per probe); borrowed, never cloned.
    fn candidates(&self, pos: usize, value: &Value) -> Candidates<'_> {
        match self.indexes.get(pos) {
            Some(by_value) => match by_value.get(value) {
                Some(postings) => Candidates::Hit(postings.as_slice()),
                None => Candidates::Miss,
            },
            // Containers always carry every registered index (inserts
            // extend, `add_indexed_attr` backfills); a missing position
            // means the attribute is not indexed at all.
            None => Candidates::Scan,
        }
    }

    /// Drops tuples older than `horizon`, retaining survivors in place and
    /// repairing the hash indexes incrementally: posting lists keep their
    /// entries for surviving tuples, remapped to their new offsets instead
    /// of being cleared and rebuilt from scratch.
    ///
    /// Fast path: when the expired tuples form a *prefix* of the container
    /// (every expired tuple precedes every survivor — the steady state for
    /// in-order streams, where arrival order and timestamp order agree),
    /// the remap is a constant subtraction: tuples and seqs shift down via
    /// one `drain` memmove and postings remap with `idx - cutoff`, with no
    /// per-tuple offset table built or consulted. Out-of-order containers
    /// fall back to the general table-driven remap.
    fn expire(&mut self, horizon: Timestamp) -> usize {
        let before = self.tuples.len();
        // One scan: count expired tuples, account their bytes, and find
        // the first survivor — the expired set is a prefix iff the first
        // survivor's offset equals the expired count.
        let mut expired = 0usize;
        let mut freed_bytes = 0usize;
        let mut first_survivor = before;
        for (idx, tuple) in self.tuples.iter().enumerate() {
            if tuple.ts < horizon {
                expired += 1;
                freed_bytes += tuple.approx_size_bytes();
            } else if first_survivor == before {
                first_survivor = idx;
            }
        }
        if expired == 0 {
            return 0;
        }
        self.bytes -= freed_bytes;
        if first_survivor == expired {
            // Prefix case: survivors keep their order, offsets shift by a
            // constant.
            self.tuples.drain(..expired);
            self.seqs.drain(..expired);
            for by_value in &mut self.indexes {
                by_value.retain(|_, postings| {
                    postings.retain_map(|idx| idx.checked_sub(expired));
                    !postings.is_empty()
                });
            }
            return expired;
        }
        // General case: build the old → new offset table.
        const EXPIRED: usize = usize::MAX;
        let mut remap: Vec<usize> = Vec::with_capacity(before);
        let mut kept = 0usize;
        for tuple in &self.tuples {
            if tuple.ts >= horizon {
                remap.push(kept);
                kept += 1;
            } else {
                remap.push(EXPIRED);
            }
        }
        let mut old_idx = 0usize;
        self.tuples.retain(|_| {
            let keep = remap[old_idx] != EXPIRED;
            old_idx += 1;
            keep
        });
        let mut old_idx = 0usize;
        self.seqs.retain(|_| {
            let keep = remap[old_idx] != EXPIRED;
            old_idx += 1;
            keep
        });
        for by_value in &mut self.indexes {
            by_value.retain(|_, postings| {
                postings.retain_map(|idx| {
                    let new_idx = remap[idx];
                    (new_idx != EXPIRED).then_some(new_idx)
                });
                !postings.is_empty()
            });
        }
        expired
    }

    /// Builds the index at attribute position `pos` over the stored tuples
    /// (used when a later-installed plan probes on a new attribute).
    fn index_attr(&mut self, pos: usize, indexed: &IndexedAttr) {
        if self.indexes.len() <= pos {
            self.indexes.resize_with(pos + 1, FxHashMap::default);
        }
        let by_value = &mut self.indexes[pos];
        by_value.clear();
        for (idx, tuple) in self.tuples.iter().enumerate() {
            if let Some(value) = indexed.slot.get(tuple) {
                by_value.entry(value.clone()).or_default().push(idx);
            }
        }
    }
}

/// A store holding the tuples of one (possibly intermediate) relation,
/// split into `parallelism` partitions, each keeping an independent
/// container per epoch (Algorithm 4 stores and probes "with respect to an
/// epoch").
#[derive(Debug)]
pub struct StoreInstance {
    /// The store's descriptor (relations, partitioning, parallelism).
    pub descriptor: StoreDescriptor,
    /// Window governing expiry of stored tuples.
    pub window: Window,
    /// Attributes indexed for probing, with precomputed slot accessors.
    indexed_attrs: Vec<IndexedAttr>,
    /// partition -> epoch -> container.
    partitions: Vec<FxHashMap<Epoch, EpochContainer>>,
}

/// Hash used for partition routing (stable across the process — and, with
/// the deterministic Fx hasher, across processes too). The router pays
/// this per routed tuple, so it must not cost a keyed SipHash: routing
/// keys are trusted internal values, making the fast hasher safe here.
pub fn partition_hash(value: &Value, parallelism: usize) -> usize {
    if parallelism <= 1 {
        return 0;
    }
    (fx_hash(value) as usize) % parallelism
}

impl StoreInstance {
    /// Creates an empty store.
    pub fn new(descriptor: StoreDescriptor, window: Window, indexed_attrs: Vec<AttrRef>) -> Self {
        let partitions = (0..descriptor.parallelism.max(1))
            .map(|_| FxHashMap::default())
            .collect();
        StoreInstance {
            descriptor,
            window,
            indexed_attrs: indexed_attrs.into_iter().map(IndexedAttr::new).collect(),
            partitions,
        }
    }

    /// Registers an additional indexed attribute (rules installed later may
    /// probe on new attributes). Only the new attribute's index is built
    /// over existing containers; established indexes are left untouched.
    pub fn add_indexed_attr(&mut self, attr: AttrRef) {
        if self.indexed_attrs.iter().any(|i| i.attr == attr) {
            return;
        }
        let indexed = IndexedAttr::new(attr);
        self.indexed_attrs.push(indexed);
        let pos = self.indexed_attrs.len() - 1;
        for partition in &mut self.partitions {
            for container in partition.values_mut() {
                container.index_attr(pos, &indexed);
            }
        }
    }

    /// Number of partitions.
    pub fn parallelism(&self) -> usize {
        self.partitions.len()
    }

    /// The partition an arriving tuple belongs to, given the routing key
    /// resolved by the optimizer (`None` = broadcast is decided by the
    /// caller; storing falls back to partition 0).
    pub fn partition_for(&self, tuple: &Tuple) -> usize {
        match self.descriptor.partition {
            Some(attr) => match tuple.get(&attr) {
                Some(v) => partition_hash(v, self.parallelism()),
                None => 0,
            },
            None => 0,
        }
    }

    /// Inserts a tuple into the given epoch and partition.
    pub fn insert(&mut self, partition: usize, epoch: Epoch, tuple: Tuple) {
        self.insert_seq(partition, epoch, tuple, 0);
    }

    /// Inserts a tuple tagged with the ingest sequence number of its root
    /// input tuple. The parallel runtime uses the tag to restrict probes to
    /// strictly earlier arrivals (see [`Self::probe_seq`]); the sequential
    /// engine always passes `0`.
    pub fn insert_seq(&mut self, partition: usize, epoch: Epoch, tuple: Tuple, seq: u64) {
        let p = partition.min(self.partitions.len().saturating_sub(1));
        self.partitions[p]
            .entry(epoch)
            .or_default()
            .insert(tuple, seq, &self.indexed_attrs);
    }

    /// Probes one partition across the given epochs: returns all stored
    /// tuples that satisfy every predicate against `probe`, arrived
    /// strictly before the probing tuple and lie within the window.
    ///
    /// `probe_attrs` maps each predicate to the attribute on the probing
    /// tuple's side; the first indexed predicate drives the index lookup.
    pub fn probe(
        &self,
        partition: usize,
        epochs: &[Epoch],
        probe: &Tuple,
        predicates: &[EquiPredicate],
    ) -> Vec<Tuple> {
        self.probe_seq(partition, epochs, probe, predicates, None)
    }

    /// Resolves, for each predicate, which attribute lives on this store's
    /// relation set (stored side) and which on the probing tuple (probe
    /// side). Shared by the in-store probe and the parallel runtime's
    /// retroactive matching so the two halves can never drift apart.
    pub fn predicate_sides<'a>(
        &self,
        predicates: &'a [EquiPredicate],
    ) -> impl Iterator<Item = (AttrRef, AttrRef)> + 'a {
        let relations = self.descriptor.relations;
        predicates.iter().map(move |pred| {
            if relations.contains(pred.left.relation) {
                (pred.left, pred.right)
            } else {
                (pred.right, pred.left)
            }
        })
    }

    /// Like [`Self::probe`], but additionally restricted to tuples stored
    /// by roots with a strictly smaller ingest sequence number. The
    /// parallel runtime relies on this to reproduce the sequential engine's
    /// "probe only earlier arrivals" semantics when shards race ahead of
    /// each other; timestamps alone cannot express arrival order for
    /// out-of-order streams.
    pub fn probe_seq(
        &self,
        partition: usize,
        epochs: &[Epoch],
        probe: &Tuple,
        predicates: &[EquiPredicate],
        probe_seq: Option<u64>,
    ) -> Vec<Tuple> {
        let p = partition.min(self.partitions.len().saturating_sub(1));
        let mut results = Vec::new();
        // Resolve, per predicate, which side belongs to the stored relation
        // (as a positional accessor) and which value the probing tuple
        // supplies; probe values are borrowed, never cloned.
        let mut resolved: Vec<(SlotAccessor, &Value)> = Vec::with_capacity(predicates.len());
        let mut first_stored: Option<AttrRef> = None;
        for (stored_side, probe_side) in self.predicate_sides(predicates) {
            match SlotAccessor::of(&probe_side).get(probe) {
                Some(v) => {
                    first_stored.get_or_insert(stored_side);
                    resolved.push((SlotAccessor::of(&stored_side), v));
                }
                None => return results,
            }
        }
        // `Null` never `join_eq`-matches anything: a probe carrying a Null
        // predicate value is answered empty without touching state.
        if resolved.iter().any(|(_, v)| v.is_null()) {
            return results;
        }
        // The index position of the driving predicate's stored-side
        // attribute, resolved once per probe (not re-hashed per epoch).
        let index_pos: Option<usize> =
            first_stored.and_then(|attr| self.indexed_attrs.iter().position(|i| i.attr == attr));
        for epoch in epochs {
            let Some(container) = self.partitions[p].get(epoch) else {
                continue;
            };
            let candidates = match (index_pos, resolved.first()) {
                (Some(pos), Some((_, value))) => container.candidates(pos, value),
                _ => Candidates::Scan,
            };
            if let Candidates::Hit(postings) = &candidates {
                results.reserve(postings.len());
            }
            // One shared match check, statically dispatched from both the
            // indexed and the scan path. `checks` lists the predicates
            // still to verify per candidate: an index *hit* already proves
            // the driving predicate (the index key equals the probe value,
            // both non-Null, and map equality coincides with `join_eq` for
            // non-Null values), so hit candidates skip it.
            let mut consider = |idx: usize, checks: &[(SlotAccessor, &Value)]| {
                let stored = &container.tuples[idx];
                // Only earlier-arrived tuples join (the probing tuple is the
                // latest constituent of the result) and the window must hold.
                if stored.ts >= probe.ts || !self.window.contains(probe.ts, stored.ts) {
                    return;
                }
                if let Some(seq) = probe_seq {
                    if container.seqs[idx] >= seq {
                        return;
                    }
                }
                for (stored_slot, value) in checks {
                    match stored_slot.get(stored) {
                        Some(v) if v.join_eq(value) => {}
                        _ => return,
                    }
                }
                results.push(stored.clone());
            };
            match candidates {
                Candidates::Miss => {}
                Candidates::Hit(postings) => {
                    for &idx in postings {
                        consider(idx, &resolved[1..]);
                    }
                }
                Candidates::Scan => {
                    for idx in 0..container.tuples.len() {
                        consider(idx, &resolved);
                    }
                }
            }
        }
        results
    }

    /// Drops tuples older than `horizon` from every partition and epoch,
    /// removing empty epoch containers. Indexes are repaired in place
    /// (incremental remap), not rebuilt. Returns the number of expired
    /// tuples.
    pub fn expire(&mut self, horizon: Timestamp) -> usize {
        let mut removed = 0;
        for partition in &mut self.partitions {
            for container in partition.values_mut() {
                removed += container.expire(horizon);
            }
            partition.retain(|_, c| !c.tuples.is_empty());
        }
        removed
    }

    /// Number of stored tuples across partitions and epochs.
    pub fn len(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.values())
            .map(|c| c.tuples.len())
            .sum()
    }

    /// `true` when the store holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint of the stored tuples.
    pub fn bytes(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.values())
            .map(|c| c.bytes)
            .sum()
    }

    /// Index shape: `(posting_lists, spilled)` across every partition,
    /// epoch container and indexed attribute — how many distinct
    /// (attribute, value) posting lists exist and how many have spilled
    /// past [`clash_common::INLINE_POSTINGS`] to a heap vector. Exposed
    /// for the telemetry surface; walks the indexes, so call it at
    /// barriers, not per tuple.
    pub fn posting_stats(&self) -> (usize, usize) {
        let mut lists = 0;
        let mut spilled = 0;
        for container in self.partitions.iter().flat_map(|p| p.values()) {
            for by_value in &container.indexes {
                lists += by_value.len();
                spilled += by_value.values().filter(|l| l.is_spilled()).count();
            }
        }
        (lists, spilled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::{AttrId, RelationId, RelationSet, Schema, TupleBuilder};

    fn schema_s() -> Schema {
        Schema::new(RelationId::new(1), "S", ["a", "b"])
    }

    fn s_tuple(a: i64, b: i64, ts: u64) -> Tuple {
        TupleBuilder::new(&schema_s(), Timestamp::from_millis(ts))
            .set("a", a)
            .set("b", b)
            .build()
    }

    fn s_store(parallelism: usize) -> StoreInstance {
        let attr_a = AttrRef::new(RelationId::new(1), AttrId::new(0));
        let descriptor = if parallelism > 1 {
            StoreDescriptor::partitioned(
                RelationSet::singleton(RelationId::new(1)),
                attr_a,
                parallelism,
            )
        } else {
            StoreDescriptor::unpartitioned(RelationSet::singleton(RelationId::new(1)))
        };
        StoreInstance::new(descriptor, Window::secs(10), vec![attr_a])
    }

    fn pred_ra_sa() -> EquiPredicate {
        // R.a = S.a with R = relation 0 attr 0, S = relation 1 attr 0.
        EquiPredicate::new(
            AttrRef::new(RelationId::new(0), AttrId::new(0)),
            AttrRef::new(RelationId::new(1), AttrId::new(0)),
        )
    }

    fn r_tuple(a: i64, ts: u64) -> Tuple {
        let schema = Schema::new(RelationId::new(0), "R", ["a"]);
        TupleBuilder::new(&schema, Timestamp::from_millis(ts))
            .set("a", a)
            .build()
    }

    #[test]
    fn insert_and_probe_matches_on_predicate() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 10, 100));
        store.insert(0, Epoch(0), s_tuple(2, 20, 150));
        store.insert(0, Epoch(0), s_tuple(1, 30, 200));
        assert_eq!(store.len(), 3);
        assert!(store.bytes() > 0);

        let probe = r_tuple(1, 500);
        let matches = store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]);
        assert_eq!(matches.len(), 2, "both S tuples with a=1 match");

        let probe = r_tuple(3, 500);
        assert!(store
            .probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()])
            .is_empty());
    }

    #[test]
    fn probe_only_sees_earlier_tuples_within_window() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 0, 1_000));
        store.insert(0, Epoch(0), s_tuple(1, 0, 30_000));
        // Probe at t=12s: the 1s tuple is outside the 10s window, the 30s
        // tuple arrived later.
        let probe = r_tuple(1, 12_000);
        assert!(store
            .probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()])
            .is_empty());
        // Probe at t=8s sees the 1s tuple.
        let probe = r_tuple(1, 8_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            1
        );
    }

    #[test]
    fn probing_respects_epoch_scoping() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 0, 100));
        store.insert(0, Epoch(1), s_tuple(1, 0, 200));
        let probe = r_tuple(1, 1_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            1
        );
        assert_eq!(
            store
                .probe(0, &[Epoch(0), Epoch(1)], &probe, &[pred_ra_sa()])
                .len(),
            2
        );
        assert!(store
            .probe(0, &[Epoch(5)], &probe, &[pred_ra_sa()])
            .is_empty());
    }

    #[test]
    fn partitioned_store_routes_by_partition_attribute() {
        let mut store = s_store(4);
        let t = s_tuple(42, 7, 100);
        let p = store.partition_for(&t);
        store.insert(p, Epoch(0), t);
        // Probing the right partition finds it, a wrong partition does not.
        let probe = r_tuple(42, 500);
        assert_eq!(
            store.probe(p, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            1
        );
        let other = (p + 1) % 4;
        assert!(store
            .probe(other, &[Epoch(0)], &probe, &[pred_ra_sa()])
            .is_empty());
    }

    #[test]
    fn expiry_removes_old_tuples_and_keeps_probes_working() {
        let mut store = s_store(1);
        for i in 0..10 {
            store.insert(0, Epoch(0), s_tuple(1, i, 100 * i as u64));
        }
        assert_eq!(store.len(), 10);
        let removed = store.expire(Timestamp::from_millis(500));
        assert_eq!(removed, 5);
        assert_eq!(store.len(), 5);
        let probe = r_tuple(1, 10_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            5
        );
        // Expiring everything empties the store.
        store.expire(Timestamp::from_millis(100_000));
        assert!(store.is_empty());
        assert_eq!(store.bytes(), 0);
    }

    #[test]
    fn incremental_index_repair_survives_interleaved_expiry_and_inserts() {
        let mut store = s_store(1);
        for i in 0..8 {
            store.insert(0, Epoch(0), s_tuple(i % 3, i, 100 * i as u64));
        }
        // Expire the first half: surviving posting lists must be remapped.
        assert_eq!(store.expire(Timestamp::from_millis(400)), 4);
        // Insert more tuples after the repair; indexes must keep working
        // for both survivors and newcomers.
        for i in 8..12 {
            store.insert(0, Epoch(0), s_tuple(i % 3, i, 100 * i as u64));
        }
        for key in 0..3i64 {
            let probe = r_tuple(key, 10_000);
            let expected = (4..12).filter(|i| i % 3 == key).count();
            assert_eq!(
                store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
                expected,
                "key {key}"
            );
        }
        // A second expiry over the repaired state stays consistent.
        assert_eq!(store.expire(Timestamp::from_millis(900)), 5);
        let probe = r_tuple(0, 10_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            (9..12).filter(|i| i % 3 == 0).count()
        );
    }

    #[test]
    fn out_of_order_expiry_uses_the_general_remap_and_stays_consistent() {
        // Timestamps deliberately interleave so the expired set is NOT a
        // prefix of the container: survivors precede expired tuples.
        let mut store = s_store(1);
        let timestamps = [9_000u64, 100, 8_500, 200, 9_500, 300, 8_800, 400];
        for (i, ts) in timestamps.iter().enumerate() {
            store.insert(0, Epoch(0), s_tuple((i % 2) as i64, i as i64, *ts));
        }
        let removed = store.expire(Timestamp::from_millis(1_000));
        assert_eq!(removed, 4, "the four small timestamps expire");
        assert_eq!(store.len(), 4);
        // Index-driven probes still find exactly the surviving tuples
        // (probe at 10s: every survivor is inside the 10s window).
        let probe = r_tuple(0, 10_000);
        let survivors_key0 = timestamps
            .iter()
            .enumerate()
            .filter(|(i, ts)| **ts >= 1_000 && i % 2 == 0)
            .count();
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            survivors_key0
        );
        // A second, again non-prefix expiry over the repaired state.
        assert_eq!(store.expire(Timestamp::from_millis(8_900)), 2);
        let probe = r_tuple(0, 10_000);
        assert_eq!(
            store.probe(0, &[Epoch(0)], &probe, &[pred_ra_sa()]).len(),
            2,
            "the ts=9000 and ts=9500 tuples (key 0) survive"
        );
    }

    #[test]
    fn expiry_with_nothing_to_remove_is_a_noop() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 1, 5_000));
        let bytes = store.bytes();
        assert_eq!(store.expire(Timestamp::from_millis(1_000)), 0);
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), bytes);
    }

    #[test]
    fn unindexed_predicate_falls_back_to_scan() {
        // Store indexes only S.a; probe with a predicate on S.b.
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 50, 100));
        store.insert(0, Epoch(0), s_tuple(2, 60, 200));
        let t_schema = Schema::new(RelationId::new(2), "T", ["b"]);
        let probe = TupleBuilder::new(&t_schema, Timestamp::from_millis(900))
            .set("b", 50)
            .build();
        let pred = EquiPredicate::new(
            AttrRef::new(RelationId::new(1), AttrId::new(1)),
            AttrRef::new(RelationId::new(2), AttrId::new(0)),
        );
        let matches = store.probe(0, &[Epoch(0)], &probe, &[pred]);
        assert_eq!(matches.len(), 1, "scan fallback still finds the match");
    }

    #[test]
    fn probe_without_predicates_returns_all_earlier_tuples() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(1, 1, 100));
        store.insert(0, Epoch(0), s_tuple(2, 2, 200));
        let probe = r_tuple(9, 1_000);
        let matches = store.probe(0, &[Epoch(0)], &probe, &[]);
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn adding_indexed_attribute_rebuilds_indexes() {
        let mut store = s_store(1);
        store.insert(0, Epoch(0), s_tuple(5, 50, 100));
        let attr_b = AttrRef::new(RelationId::new(1), AttrId::new(1));
        store.add_indexed_attr(attr_b);
        // Probe on S.b = T.b style predicate.
        let t_schema = Schema::new(RelationId::new(2), "T", ["b"]);
        let probe = TupleBuilder::new(&t_schema, Timestamp::from_millis(900))
            .set("b", 50)
            .build();
        let pred = EquiPredicate::new(attr_b, AttrRef::new(RelationId::new(2), AttrId::new(0)));
        assert_eq!(store.probe(0, &[Epoch(0)], &probe, &[pred]).len(), 1);
    }

    #[test]
    fn partition_hash_is_stable_and_bounded() {
        let v = Value::Int(123);
        let a = partition_hash(&v, 7);
        let b = partition_hash(&v, 7);
        assert_eq!(a, b);
        assert!(a < 7);
        assert_eq!(partition_hash(&v, 1), 0);
        assert_eq!(partition_hash(&v, 0), 0);
    }
}
