//! # clash-ilp
//!
//! A from-scratch 0/1 integer linear programming toolkit used to solve the
//! multi-query optimization problem of Section V of the paper.
//!
//! The paper hands its ILP to Gurobi; shipping a commercial solver is not
//! possible here, so this crate provides
//!
//! * [`Model`] — a modeling API for binary variables, linear constraints
//!   (`=`, `≥`, `≤`) and a linear minimization objective, mirroring the
//!   structure produced by Algorithm 2,
//! * [`solve`] — an exact branch-and-bound solver built on unit-style
//!   constraint propagation over binary domains, warm-started by
//!   [`greedy`], with node- and time-limits that turn it into an anytime
//!   solver for large instances,
//! * [`enumerate_optimal`] — brute-force enumeration for tiny models, used
//!   by the test-suite to certify that branch-and-bound returns optimal
//!   solutions.
//!
//! The substitution (Gurobi → propagation-based B&B) is documented in
//! DESIGN.md: the models built by the optimizer are pure 0/1 selection
//! problems whose constraints propagate strongly, so exactness is retained
//! for the problem sizes of the paper's Fig. 9 while absolute solve times
//! differ.

pub mod enumerate;
pub mod greedy;
pub mod model;
pub mod propagation;
pub mod solver;

pub use enumerate::enumerate_optimal;
pub use greedy::greedy;
pub use model::{Assignment, Constraint, LinExpr, Model, ModelStats, Sense, VarId};
pub use solver::{solve, Solution, SolveStatus, SolverConfig};
