//! Property tests for the allocation- and hash-lean state layer: the
//! arena-backed `TupleBuilder` against the pair-vector `Tuple::base`
//! reference, and the two-tier store (hot inline-posting indexes +
//! frozen columnar segments) against a rebuilt-from-scratch oracle
//! under interleaved insert / expire / `add_indexed_attr` /
//! `freeze_before` sequences spread over multiple epochs.

use clash_common::{
    arena_stats, AttrId, AttrRef, Epoch, LeafLayout, RelationId, RelationSet, Schema, Timestamp,
    Tuple, TupleBuilder, Value, Window,
};
use clash_optimizer::StoreDescriptor;
use clash_query::EquiPredicate;
use clash_runtime::store::StoreInstance;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..6u32) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range(-100..100i64)),
        3 => Value::Float(rng.gen_range(-5.0..5.0f64)),
        4 => Value::str(format!("v{}", rng.gen_range(0..20u32))),
        _ => Value::Int(rng.gen_range(0..5i64)),
    }
}

fn schema_of(arity: usize) -> Schema {
    Schema::new(RelationId::new(3), "P", (0..arity).map(|i| format!("a{i}")))
}

proptest! {
    /// Arena-backed builder tuples are content-equal (and wire-round-trip
    /// equal) to `Tuple::base`-built ones for random slot subsets, values
    /// and duplicate writes, whether slots are set positionally or by
    /// name through the cached layout.
    #[test]
    fn builder_matches_pair_vector_construction(seed in 0u64..1_000_000, arity in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = schema_of(arity);
        let layout = LeafLayout::of_schema(&schema);
        let ts = Timestamp::from_millis(rng.gen_range(0..10_000u64));
        // Random multiset of slot writes, possibly with duplicates (the
        // first write must win on every construction path).
        let writes: Vec<(usize, Value)> = (0..rng.gen_range(0..12usize))
            .map(|_| (rng.gen_range(0..arity), random_value(&mut rng)))
            .collect();

        let pairs: Vec<(AttrRef, Value)> = writes
            .iter()
            .map(|(slot, v)| {
                (
                    AttrRef::new(schema.relation, AttrId::new(*slot as u32)),
                    v.clone(),
                )
            })
            .collect();
        let reference = Tuple::base(schema.relation, ts, pairs);

        let mut by_slot = TupleBuilder::with_layout(&schema, &layout, ts);
        for (slot, v) in &writes {
            by_slot = by_slot.set_slot(AttrId::new(*slot as u32), v.clone());
        }
        let by_slot = by_slot.build();

        let mut by_name = TupleBuilder::with_layout(&schema, &layout, ts);
        for (slot, v) in &writes {
            by_name = by_name.set(&format!("a{slot}"), v.clone());
        }
        let by_name = by_name.build();

        prop_assert_eq!(&reference, &by_slot);
        prop_assert_eq!(&reference, &by_name);
        prop_assert_eq!(reference.arity(), by_slot.arity());
        prop_assert_eq!(reference.approx_size_bytes(), by_slot.approx_size_bytes());
        for slot in 0..arity {
            let attr = AttrRef::new(schema.relation, AttrId::new(slot as u32));
            prop_assert_eq!(reference.get(&attr), by_slot.get(&attr));
            prop_assert_eq!(reference.get(&attr), by_name.get(&attr));
        }
        prop_assert_eq!(reference.relations, RelationSet::singleton(schema.relation));

        // Wire round trip: builder-built tuples decode back equal, and
        // both construction paths serialize identically.
        let decoded = Tuple::from_wire(&by_slot.to_wire()).expect("round trip");
        prop_assert_eq!(&decoded, &by_slot);
        prop_assert_eq!(by_slot.to_wire(), reference.to_wire());
    }
}

#[test]
fn arena_recycles_leaf_buffers_through_build_drop_cycles() {
    let schema = schema_of(4);
    let layout = LeafLayout::of_schema(&schema);
    // Warm one buffer of this width into the pool.
    drop(
        TupleBuilder::with_layout(&schema, &layout, Timestamp::from_millis(0))
            .set_slot(AttrId::new(0), 1i64)
            .build(),
    );
    let before = arena_stats();
    for i in 0..100u64 {
        let t = TupleBuilder::with_layout(&schema, &layout, Timestamp::from_millis(i))
            .set_slot(AttrId::new(0), i as i64)
            .set_slot(AttrId::new(3), Value::str("payload"))
            .build();
        assert_eq!(t.arity(), 2);
        // `t` drops here; its leaf buffer must come back for the next one.
    }
    let after = arena_stats();
    assert!(
        after.reused >= before.reused + 100,
        "expected 100 pool reuses, got {} -> {:?}",
        before.reused,
        after
    );
    assert_eq!(
        after.allocated, before.allocated,
        "steady-state build/drop cycles must not allocate fresh buffers"
    );
}

// --- store index oracle ---------------------------------------------------

/// The oracle: a plain list of stored tuples. Probing filters it with the
/// same timestamp/window/predicate semantics the store promises; no index
/// is maintained, so any index-repair bug in the store diverges from it.
struct Oracle {
    tuples: Vec<Tuple>,
    window: Window,
}

impl Oracle {
    fn probe_count(&self, probe: &Tuple, predicates: &[(AttrRef, AttrRef)]) -> usize {
        self.tuples
            .iter()
            .filter(|stored| {
                if stored.ts >= probe.ts || !self.window.contains(probe.ts, stored.ts) {
                    return false;
                }
                predicates.iter().all(|(stored_attr, probe_attr)| {
                    match (stored.get(stored_attr), probe.get(probe_attr)) {
                        (Some(sv), Some(pv)) => sv.join_eq(pv),
                        _ => false,
                    }
                })
            })
            .count()
    }
}

fn stored_tuple(schema: &Schema, rng: &mut StdRng, ts: u64, key_domain: i64) -> Tuple {
    let layout = LeafLayout::of_schema(schema);
    TupleBuilder::with_layout(schema, &layout, Timestamp::from_millis(ts))
        .set_slot(AttrId::new(0), rng.gen_range(0..key_domain))
        .set_slot(AttrId::new(1), rng.gen_range(0..key_domain))
        .set_slot(AttrId::new(2), Value::str(format!("p{}", ts % 7)))
        .build()
}

proptest! {
    /// Interleaved insert / expire / `add_indexed_attr` / `freeze_before`
    /// sequences over multiple epochs keep both state tiers consistent
    /// with a scan oracle: every probe (on the originally indexed
    /// attribute, the later-indexed one and the never-indexed scan
    /// fallback) returns exactly the oracle's match count, no matter how
    /// the tuples are split between hot containers and frozen segments —
    /// including late inserts into already-frozen epochs and probes that
    /// the frozen tier's union blooms prune wholesale.
    #[test]
    fn store_indexes_match_scan_oracle(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Schema::new(RelationId::new(0), "S", ["a", "b", "c"]);
        let probe_schema = Schema::new(RelationId::new(1), "R", ["a", "b", "c"]);
        let window = Window::secs(8);
        let key_domain = rng.gen_range(2..6i64);
        let attr = |i: u32| AttrRef::new(schema.relation, AttrId::new(i));
        let probe_attr = |i: u32| AttrRef::new(probe_schema.relation, AttrId::new(i));

        let mut store = StoreInstance::new(
            StoreDescriptor::unpartitioned(RelationSet::singleton(schema.relation)),
            window,
            vec![attr(0)],
        );
        let mut oracle = Oracle { tuples: Vec::new(), window };
        // Tuples land in one of four epochs; probes always cover all of
        // them, so the hot/frozen split per epoch is invisible to results.
        const EPOCHS: u64 = 4;
        let epochs: Vec<Epoch> = (0..EPOCHS).map(Epoch).collect();
        let mut now = 0u64;
        let mut b_indexed = false;

        for _ in 0..rng.gen_range(10..60usize) {
            match rng.gen_range(0..12u32) {
                // Expire a random horizon (sometimes everything).
                0 | 1 => {
                    let horizon = Timestamp::from_millis(now.saturating_sub(rng.gen_range(0..12_000u64)));
                    let removed = store.expire(horizon);
                    let before = oracle.tuples.len();
                    oracle.tuples.retain(|t| t.ts >= horizon);
                    prop_assert_eq!(removed, before - oracle.tuples.len());
                }
                // Index S.b mid-stream (idempotent after the first call;
                // frozen segments index it lazily on first probe).
                2 => {
                    store.add_indexed_attr(attr(1));
                    b_indexed = true;
                }
                // Insert out of timestamp order (exercises the general,
                // table-driven expiry remap rather than the in-order
                // prefix fast path).
                3 => {
                    let ts = now.saturating_sub(rng.gen_range(0..4_000u64)).max(1);
                    let t = stored_tuple(&schema, &mut rng, ts, key_domain);
                    store.insert(0, Epoch(rng.gen_range(0..EPOCHS)), t.clone());
                    oracle.tuples.push(t);
                }
                // Freeze every hot epoch below a random horizon into the
                // columnar tier. Epochs frozen earlier keep any late
                // arrivals hot, so probes must merge both tiers. The
                // oracle is untouched: freezing must not change results.
                4 | 5 => {
                    store.freeze_before(Epoch(rng.gen_range(0..EPOCHS + 1)));
                }
                // Insert at an advancing timestamp.
                _ => {
                    now += rng.gen_range(1..2_000u64);
                    let t = stored_tuple(&schema, &mut rng, now, key_domain);
                    store.insert(0, Epoch(rng.gen_range(0..EPOCHS)), t.clone());
                    oracle.tuples.push(t);
                }
            }
            // Cross-check: probes on the indexed key, the (possibly)
            // later-indexed attribute and the unindexed scan fallback all
            // agree with the oracle, for every key in the domain plus a
            // guaranteed miss.
            let probe_ts = now + rng.gen_range(1..3_000u64);
            let probe_layout = LeafLayout::of_schema(&probe_schema);
            for key in 0..key_domain + 1 {
                let probe = TupleBuilder::with_layout(
                    &probe_schema,
                    &probe_layout,
                    Timestamp::from_millis(probe_ts),
                )
                .set_slot(AttrId::new(0), key)
                .set_slot(AttrId::new(1), key)
                .set_slot(AttrId::new(2), Value::str("p1"))
                .build();
                // Indexed from the start.
                let pred_a = EquiPredicate::new(attr(0), probe_attr(0));
                prop_assert_eq!(
                    store.probe(0, &epochs, &probe, std::slice::from_ref(&pred_a)).len(),
                    oracle.probe_count(&probe, &[(attr(0), probe_attr(0))]),
                    "key {} on indexed attribute", key
                );
                // Indexed mid-stream or still scanning, depending on ops.
                let pred_b = EquiPredicate::new(attr(1), probe_attr(1));
                prop_assert_eq!(
                    store.probe(0, &epochs, &probe, std::slice::from_ref(&pred_b)).len(),
                    oracle.probe_count(&probe, &[(attr(1), probe_attr(1))]),
                    "key {} on {} attribute", key, if b_indexed { "late-indexed" } else { "unindexed" }
                );
                // Never indexed: exercises the scan-marker path.
                let pred_c = EquiPredicate::new(attr(2), probe_attr(2));
                prop_assert_eq!(
                    store.probe(0, &epochs, &probe, std::slice::from_ref(&pred_c)).len(),
                    oracle.probe_count(&probe, &[(attr(2), probe_attr(2))]),
                    "key {} on scan fallback", key
                );
                // Conjunction of an indexed and an unindexed predicate.
                let both = [pred_a, pred_c];
                prop_assert_eq!(
                    store.probe(0, &epochs, &probe, &both).len(),
                    oracle.probe_count(
                        &probe,
                        &[(attr(0), probe_attr(0)), (attr(2), probe_attr(2))]
                    ),
                    "key {} on conjunction", key
                );
            }
        }
    }
}

#[test]
fn null_probe_values_never_match() {
    let schema = Schema::new(RelationId::new(0), "S", ["a"]);
    let probe_schema = Schema::new(RelationId::new(1), "R", ["a"]);
    let attr_s = AttrRef::new(schema.relation, AttrId::new(0));
    let attr_r = AttrRef::new(probe_schema.relation, AttrId::new(0));
    let mut store = StoreInstance::new(
        StoreDescriptor::unpartitioned(RelationSet::singleton(schema.relation)),
        Window::secs(60),
        vec![attr_s],
    );
    // One tuple with a Null key, one with a real key.
    for v in [Value::Null, Value::Int(1)] {
        let t = TupleBuilder::new(&schema, Timestamp::from_millis(10))
            .set("a", v)
            .build();
        store.insert(0, Epoch(0), t);
    }
    let pred = EquiPredicate::new(attr_s, attr_r);
    let null_probe = TupleBuilder::new(&probe_schema, Timestamp::from_millis(99))
        .set("a", Value::Null)
        .build();
    assert!(store
        .probe(0, &[Epoch(0)], &null_probe, std::slice::from_ref(&pred))
        .is_empty());
    let int_probe = TupleBuilder::new(&probe_schema, Timestamp::from_millis(99))
        .set("a", 1i64)
        .build();
    assert_eq!(
        store
            .probe(0, &[Epoch(0)], &int_probe, std::slice::from_ref(&pred))
            .len(),
        1
    );
}
