//! Regenerates Fig. 7b (throughput), 7c (memory) and 7d (latency):
//! multi-query performance of Independent / Shared / CMQO execution on the
//! TPC-H-shaped workload with 5 and 10 queries, plus the sharded-runtime
//! comparison (LocalEngine vs ParallelEngine at 1/2/4 workers).
//!
//! Usage: `cargo run --release -p clash-bench --bin fig7_multi_query [num_tuples]`

use clash_bench::fig7::{run_fig7, run_fig7_parallel};
use clash_bench::print_rows;

fn main() {
    let num_tuples: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    println!("# Fig. 7 — multi-query performance (stream of {num_tuples} tuples per workload)\n");
    for num_queries in [5usize, 10] {
        let rows = run_fig7(num_queries, num_tuples, 0.002, 42);
        print_rows(&format!("Fig. 7b/7c/7d — {num_queries} queries"), &rows);
        println!(
            "{:<12} {:>16} {:>12} {:>12} {:>12}",
            "strategy", "throughput[t/s]", "memory[MB]", "latency[ms]", "results"
        );
        for r in &rows {
            println!(
                "{:<12} {:>16.0} {:>12.2} {:>12.3} {:>12}",
                r.strategy, r.throughput_tps, r.memory_mb, r.latency_ms, r.results
            );
        }
        println!();
    }

    println!("# Sharded runtime — CMQO plan, wall-clock engine comparison\n");
    for num_queries in [5usize, 10] {
        let rows = run_fig7_parallel(num_queries, num_tuples, 0.002, 42, &[1, 2, 4]);
        print_rows(&format!("Fig. 7 parallel — {num_queries} queries"), &rows);
        println!(
            "{:<12} {:>8} {:>16} {:>10} {:>10} {:>10} {:>12}",
            "engine", "workers", "wall tput[t/s]", "speedup", "busy[s]", "balance", "results"
        );
        for r in &rows {
            println!(
                "{:<12} {:>8} {:>16.0} {:>9.2}x {:>10.2} {:>10.2} {:>12}",
                r.engine, r.workers, r.wall_tps, r.speedup, r.busy_secs, r.busy_balance, r.results
            );
        }
        println!();
    }
}
