//! 0/1 ILP modeling: variables, linear expressions, constraints, models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a binary decision variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Comparison sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
    /// `expr ≤ rhs`
    Le,
}

/// A linear expression `Σ coeff_i · x_i` over binary variables.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// The empty expression.
    pub fn new() -> Self {
        LinExpr { terms: Vec::new() }
    }

    /// Adds a term `coeff · var`. Terms over the same variable are merged.
    pub fn add(&mut self, var: VarId, coeff: f64) -> &mut Self {
        if coeff == 0.0 {
            return self;
        }
        if let Some(t) = self.terms.iter_mut().find(|(v, _)| *v == var) {
            t.1 += coeff;
        } else {
            self.terms.push((var, coeff));
        }
        self
    }

    /// Builds an expression from `(var, coeff)` pairs.
    pub fn from_terms(terms: impl IntoIterator<Item = (VarId, f64)>) -> Self {
        let mut e = LinExpr::new();
        for (v, c) in terms {
            e.add(v, c);
        }
        e
    }

    /// Builds `Σ x_i` over the given variables (all coefficients 1).
    pub fn sum(vars: impl IntoIterator<Item = VarId>) -> Self {
        LinExpr::from_terms(vars.into_iter().map(|v| (v, 1.0)))
    }

    /// The terms of the expression.
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression under a full assignment.
    pub fn evaluate(&self, assignment: &Assignment) -> f64 {
        self.terms
            .iter()
            .map(|(v, c)| if assignment.get(*v) { *c } else { 0.0 })
            .sum()
    }
}

/// A linear constraint `expr (sense) rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison sense.
    pub sense: Sense,
    /// Right-hand side constant.
    pub rhs: f64,
    /// Debug name (shows up in infeasibility reports).
    pub name: String,
}

impl Constraint {
    /// `true` when the constraint holds under the assignment (within
    /// `tolerance`).
    pub fn is_satisfied(&self, assignment: &Assignment, tolerance: f64) -> bool {
        let lhs = self.expr.evaluate(assignment);
        match self.sense {
            Sense::Eq => (lhs - self.rhs).abs() <= tolerance,
            Sense::Ge => lhs >= self.rhs - tolerance,
            Sense::Le => lhs <= self.rhs + tolerance,
        }
    }
}

/// A complete 0/1 assignment of the model's variables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    /// All-zero assignment over `n` variables.
    pub fn zeros(n: usize) -> Self {
        Assignment {
            values: vec![false; n],
        }
    }

    /// Builds an assignment from raw values.
    pub fn from_values(values: Vec<bool>) -> Self {
        Assignment { values }
    }

    /// Value of a variable.
    pub fn get(&self, var: VarId) -> bool {
        self.values.get(var.index()).copied().unwrap_or(false)
    }

    /// Sets the value of a variable.
    pub fn set(&mut self, var: VarId, value: bool) {
        if var.index() < self.values.len() {
            self.values[var.index()] = value;
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when there are no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Ids of the variables set to 1.
    pub fn ones(&self) -> impl Iterator<Item = VarId> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| **v)
            .map(|(i, _)| VarId(i as u32))
    }
}

/// Size statistics of a model — the quantities plotted in Fig. 9b / 9d of
/// the paper (number of ILP variables and constraints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Number of binary variables.
    pub variables: usize,
    /// Number of linear constraints.
    pub constraints: usize,
    /// Total number of non-zero coefficients.
    pub nonzeros: usize,
}

/// A 0/1 integer linear program with a minimization objective.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Model {
    objective: Vec<f64>,
    names: Vec<String>,
    constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a binary variable with the given objective coefficient.
    pub fn add_binary(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        let id = VarId(self.objective.len() as u32);
        self.objective.push(objective);
        self.names.push(name.into());
        id
    }

    /// Changes the objective coefficient of an existing variable.
    pub fn set_objective(&mut self, var: VarId, objective: f64) {
        self.objective[var.index()] = objective;
    }

    /// Adds a constraint.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        sense: Sense,
        rhs: f64,
    ) {
        self.constraints.push(Constraint {
            expr,
            sense,
            rhs,
            name: name.into(),
        });
    }

    /// Convenience: `Σ vars = 1` (the "choose exactly one plan" constraints
    /// of Equation 2).
    pub fn add_choose_one(
        &mut self,
        name: impl Into<String>,
        vars: impl IntoIterator<Item = VarId>,
    ) {
        self.add_constraint(name, LinExpr::sum(vars), Sense::Eq, 1.0);
    }

    /// Convenience: `x = 1 ⇒ at least one of ys` encoded as
    /// `-x + Σ ys ≥ 0`.
    pub fn add_implies_any(
        &mut self,
        name: impl Into<String>,
        x: VarId,
        ys: impl IntoIterator<Item = VarId>,
    ) {
        let mut expr = LinExpr::sum(ys);
        expr.add(x, -1.0);
        self.add_constraint(name, expr, Sense::Ge, 0.0);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficient of a variable.
    pub fn objective_coeff(&self, var: VarId) -> f64 {
        self.objective[var.index()]
    }

    /// Name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// All variable ids.
    pub fn vars(&self) -> impl Iterator<Item = VarId> {
        (0..self.num_vars() as u32).map(VarId)
    }

    /// The constraints of the model.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Objective value of an assignment.
    pub fn objective_value(&self, assignment: &Assignment) -> f64 {
        self.objective
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if assignment.get(VarId(i as u32)) {
                    *c
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Returns the first violated constraint under the assignment, if any.
    pub fn first_violation(&self, assignment: &Assignment, tolerance: f64) -> Option<&Constraint> {
        self.constraints
            .iter()
            .find(|c| !c.is_satisfied(assignment, tolerance))
    }

    /// `true` when the assignment satisfies every constraint.
    pub fn is_feasible(&self, assignment: &Assignment, tolerance: f64) -> bool {
        self.first_violation(assignment, tolerance).is_none()
    }

    /// Size statistics (Fig. 9b / 9d).
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            variables: self.num_vars(),
            constraints: self.num_constraints(),
            nonzeros: self.constraints.iter().map(|c| c.expr.len()).sum(),
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "minimize")?;
        let obj: Vec<String> = self
            .objective
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0.0)
            .map(|(i, c)| format!("{c}·{}", self.names[i]))
            .collect();
        writeln!(f, "  {}", obj.join(" + "))?;
        writeln!(f, "subject to")?;
        for c in &self.constraints {
            let lhs: Vec<String> = c
                .expr
                .terms()
                .iter()
                .map(|(v, coeff)| format!("{coeff}·{}", self.names[v.index()]))
                .collect();
            let sense = match c.sense {
                Sense::Eq => "=",
                Sense::Ge => "≥",
                Sense::Le => "≤",
            };
            writeln!(f, "  [{}] {} {} {}", c.name, lhs.join(" + "), sense, c.rhs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> (Model, VarId, VarId, VarId) {
        // min 2a + 3b + c  s.t.  a + b = 1,  -a + c >= 0 (a ⇒ c)
        let mut m = Model::new();
        let a = m.add_binary("a", 2.0);
        let b = m.add_binary("b", 3.0);
        let c = m.add_binary("c", 1.0);
        m.add_choose_one("choice", [a, b]);
        m.add_implies_any("a_implies_c", a, [c]);
        (m, a, b, c)
    }

    #[test]
    fn expression_merges_terms_and_evaluates() {
        let mut e = LinExpr::new();
        e.add(VarId(0), 1.0)
            .add(VarId(1), 2.0)
            .add(VarId(0), 0.5)
            .add(VarId(2), 0.0);
        assert_eq!(e.len(), 2, "zero coefficients dropped, duplicates merged");
        let mut asg = Assignment::zeros(3);
        asg.set(VarId(0), true);
        assert!((e.evaluate(&asg) - 1.5).abs() < 1e-12);
        asg.set(VarId(1), true);
        assert!((e.evaluate(&asg) - 3.5).abs() < 1e-12);
        assert!(!e.is_empty());
        assert!(LinExpr::new().is_empty());
    }

    #[test]
    fn feasibility_and_objective() {
        let (m, a, b, c) = toy_model();
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.num_constraints(), 2);
        assert_eq!(m.stats().nonzeros, 2 + 2);

        // a=1, c=1 is feasible with objective 3.
        let mut asg = Assignment::zeros(3);
        asg.set(a, true);
        asg.set(c, true);
        assert!(m.is_feasible(&asg, 1e-9));
        assert!((m.objective_value(&asg) - 3.0).abs() < 1e-12);

        // b=1 alone is feasible with objective 3.
        let mut asg = Assignment::zeros(3);
        asg.set(b, true);
        assert!(m.is_feasible(&asg, 1e-9));

        // a=1 without c violates the implication.
        let mut asg = Assignment::zeros(3);
        asg.set(a, true);
        let v = m.first_violation(&asg, 1e-9).unwrap();
        assert_eq!(v.name, "a_implies_c");

        // Nothing chosen violates the choice constraint.
        let asg = Assignment::zeros(3);
        assert!(!m.is_feasible(&asg, 1e-9));

        // Both chosen violates it too (Eq sense).
        let mut asg = Assignment::zeros(3);
        asg.set(a, true);
        asg.set(b, true);
        asg.set(c, true);
        assert!(!m.is_feasible(&asg, 1e-9));
    }

    #[test]
    fn constraint_sense_semantics() {
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("le", LinExpr::sum([x, y]), Sense::Le, 1.0);
        let mut asg = Assignment::zeros(2);
        assert!(m.is_feasible(&asg, 1e-9));
        asg.set(x, true);
        assert!(m.is_feasible(&asg, 1e-9));
        asg.set(y, true);
        assert!(!m.is_feasible(&asg, 1e-9));
    }

    #[test]
    fn assignment_accessors() {
        let mut asg = Assignment::zeros(4);
        assert_eq!(asg.len(), 4);
        assert!(!asg.is_empty());
        asg.set(VarId(1), true);
        asg.set(VarId(3), true);
        let ones: Vec<u32> = asg.ones().map(|v| v.0).collect();
        assert_eq!(ones, vec![1, 3]);
        // Out-of-range reads return false, writes are ignored.
        assert!(!asg.get(VarId(17)));
        asg.set(VarId(17), true);
        assert_eq!(asg.len(), 4);
    }

    #[test]
    fn display_contains_constraint_names() {
        let (m, ..) = toy_model();
        let text = m.to_string();
        assert!(text.contains("minimize"));
        assert!(text.contains("choice"));
        assert!(text.contains("a_implies_c"));
    }

    #[test]
    fn set_objective_overrides_coefficient() {
        let (mut m, a, ..) = toy_model();
        m.set_objective(a, 10.0);
        assert_eq!(m.objective_coeff(a), 10.0);
        assert_eq!(m.var_name(a), "a");
    }
}
