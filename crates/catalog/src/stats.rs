//! Data-characteristic statistics: arrival rates and join selectivities.
//!
//! The probe-cost model of the paper (Equation 1) needs, for every step of
//! a probe order, the expected size of the intermediate join result built
//! so far. That estimate is derived from
//!
//! * the arrival **rate** of each input relation (tuples per second),
//! * the **selectivity** of each equi-join predicate `Si.a = Sj.b`
//!   (fraction of pairs from the windows of `Si` and `Sj` that match), and
//! * the per-relation window lengths (from the [`crate::Catalog`]).
//!
//! Statistics are sampled per epoch by the runtime's statistics collector
//! and swapped atomically into a [`SharedStatistics`] handle that the
//! adaptive controller reads before re-running the optimizer (Section VI-A,
//! Fig. 5).

use clash_common::{AttrRef, Epoch, RelationId};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Normalizes an attribute pair so that `(a, b)` and `(b, a)` address the
/// same selectivity entry.
fn normalize(a: AttrRef, b: AttrRef) -> (AttrRef, AttrRef) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A snapshot of data characteristics valid for one optimization run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Statistics {
    /// Epoch this snapshot was gathered in (metadata only).
    pub epoch: Epoch,
    /// Arrival rate per relation in tuples per second.
    rates: HashMap<RelationId, f64>,
    /// Selectivity per (normalized) attribute pair.
    selectivities: HashMap<(AttrRef, AttrRef), f64>,
    /// Rate assumed for relations without an explicit entry.
    pub default_rate: f64,
    /// Selectivity assumed for predicates without an explicit entry.
    pub default_selectivity: f64,
}

impl Default for Statistics {
    fn default() -> Self {
        Statistics {
            epoch: Epoch::ZERO,
            rates: HashMap::new(),
            selectivities: HashMap::new(),
            default_rate: 100.0,
            default_selectivity: 0.01,
        }
    }
}

impl Statistics {
    /// Creates an empty snapshot with the library defaults
    /// (rate 100 t/s, selectivity 0.01).
    pub fn new() -> Self {
        Statistics::default()
    }

    /// Creates an empty snapshot tagged with an epoch.
    pub fn for_epoch(epoch: Epoch) -> Self {
        Statistics {
            epoch,
            ..Statistics::default()
        }
    }

    /// Sets the arrival rate (tuples/second) of a relation.
    pub fn set_rate(&mut self, relation: RelationId, rate: f64) -> &mut Self {
        self.rates.insert(relation, rate.max(0.0));
        self
    }

    /// Arrival rate of a relation (default if never set).
    pub fn rate(&self, relation: RelationId) -> f64 {
        self.rates
            .get(&relation)
            .copied()
            .unwrap_or(self.default_rate)
    }

    /// Sets the selectivity of the equi-join predicate `a = b`.
    pub fn set_selectivity(&mut self, a: AttrRef, b: AttrRef, selectivity: f64) -> &mut Self {
        self.selectivities
            .insert(normalize(a, b), selectivity.clamp(0.0, 1.0));
        self
    }

    /// Selectivity of the predicate `a = b` (default if never set).
    pub fn selectivity(&self, a: AttrRef, b: AttrRef) -> f64 {
        self.selectivities
            .get(&normalize(a, b))
            .copied()
            .unwrap_or(self.default_selectivity)
    }

    /// `true` if an explicit selectivity was recorded for the pair.
    pub fn has_selectivity(&self, a: AttrRef, b: AttrRef) -> bool {
        self.selectivities.contains_key(&normalize(a, b))
    }

    /// Number of explicit rate entries (used by tests and debug output).
    pub fn rate_entries(&self) -> usize {
        self.rates.len()
    }

    /// Number of explicit selectivity entries.
    pub fn selectivity_entries(&self) -> usize {
        self.selectivities.len()
    }

    /// Merges another snapshot into this one, preferring `other`'s entries.
    /// Used when combining sampled statistics with configured priors.
    pub fn merge_from(&mut self, other: &Statistics) {
        for (r, v) in &other.rates {
            self.rates.insert(*r, *v);
        }
        for (k, v) in &other.selectivities {
            self.selectivities.insert(*k, *v);
        }
        self.epoch = self.epoch.max(other.epoch);
    }

    /// Iterates over explicit rate entries.
    pub fn iter_rates(&self) -> impl Iterator<Item = (RelationId, f64)> + '_ {
        self.rates.iter().map(|(r, v)| (*r, *v))
    }

    /// Iterates over explicit selectivity entries.
    pub fn iter_selectivities(&self) -> impl Iterator<Item = ((AttrRef, AttrRef), f64)> + '_ {
        self.selectivities.iter().map(|(k, v)| (*k, *v))
    }
}

/// Thread-safe, swappable statistics handle.
///
/// The statistics collector publishes a fresh [`Statistics`] snapshot at
/// every epoch boundary; the adaptive controller and the optimizer read the
/// latest snapshot without blocking ingestion.
#[derive(Debug, Clone, Default)]
pub struct SharedStatistics {
    inner: Arc<RwLock<Statistics>>,
}

impl SharedStatistics {
    /// Creates a handle around an initial snapshot.
    pub fn new(initial: Statistics) -> Self {
        SharedStatistics {
            inner: Arc::new(RwLock::new(initial)),
        }
    }

    /// Returns a clone of the current snapshot.
    pub fn snapshot(&self) -> Statistics {
        self.inner.read().clone()
    }

    /// Atomically replaces the current snapshot.
    pub fn publish(&self, stats: Statistics) {
        *self.inner.write() = stats;
    }

    /// Applies a mutation to the current snapshot in place (e.g. updating a
    /// single rate without republishing everything).
    pub fn update<F: FnOnce(&mut Statistics)>(&self, f: F) {
        f(&mut self.inner.write());
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> Epoch {
        self.inner.read().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::AttrId;

    fn attr(rel: u32, attr: u32) -> AttrRef {
        AttrRef::new(RelationId::new(rel), AttrId::new(attr))
    }

    #[test]
    fn rates_fall_back_to_default() {
        let mut s = Statistics::new();
        assert_eq!(s.rate(RelationId::new(0)), 100.0);
        s.set_rate(RelationId::new(0), 5000.0);
        assert_eq!(s.rate(RelationId::new(0)), 5000.0);
        assert_eq!(s.rate(RelationId::new(1)), 100.0);
        s.set_rate(RelationId::new(1), -3.0);
        assert_eq!(
            s.rate(RelationId::new(1)),
            0.0,
            "negative rates clamp to zero"
        );
    }

    #[test]
    fn selectivity_is_symmetric_and_clamped() {
        let mut s = Statistics::new();
        s.set_selectivity(attr(0, 0), attr(1, 1), 0.5);
        assert_eq!(s.selectivity(attr(1, 1), attr(0, 0)), 0.5);
        assert!(s.has_selectivity(attr(1, 1), attr(0, 0)));
        assert!(!s.has_selectivity(attr(0, 0), attr(2, 0)));
        assert_eq!(s.selectivity(attr(0, 0), attr(2, 0)), 0.01);
        s.set_selectivity(attr(0, 0), attr(2, 0), 7.0);
        assert_eq!(
            s.selectivity(attr(0, 0), attr(2, 0)),
            1.0,
            "clamped to [0,1]"
        );
    }

    #[test]
    fn merge_prefers_other() {
        let mut base = Statistics::new();
        base.set_rate(RelationId::new(0), 10.0);
        base.set_rate(RelationId::new(1), 20.0);
        let mut newer = Statistics::for_epoch(Epoch(3));
        newer.set_rate(RelationId::new(1), 99.0);
        newer.set_selectivity(attr(0, 0), attr(1, 0), 0.25);
        base.merge_from(&newer);
        assert_eq!(base.rate(RelationId::new(0)), 10.0);
        assert_eq!(base.rate(RelationId::new(1)), 99.0);
        assert_eq!(base.selectivity(attr(0, 0), attr(1, 0)), 0.25);
        assert_eq!(base.epoch, Epoch(3));
        assert_eq!(base.rate_entries(), 2);
        assert_eq!(base.selectivity_entries(), 1);
    }

    #[test]
    fn shared_statistics_publish_and_update() {
        let shared = SharedStatistics::new(Statistics::new());
        assert_eq!(shared.epoch(), Epoch(0));
        shared.update(|s| {
            s.set_rate(RelationId::new(2), 42.0);
        });
        assert_eq!(shared.snapshot().rate(RelationId::new(2)), 42.0);
        let mut replacement = Statistics::for_epoch(Epoch(7));
        replacement.set_rate(RelationId::new(2), 1.0);
        shared.publish(replacement);
        assert_eq!(shared.epoch(), Epoch(7));
        assert_eq!(shared.snapshot().rate(RelationId::new(2)), 1.0);
    }

    #[test]
    fn shared_statistics_clones_share_state() {
        let a = SharedStatistics::default();
        let b = a.clone();
        a.update(|s| {
            s.set_rate(RelationId::new(0), 7.0);
        });
        assert_eq!(b.snapshot().rate(RelationId::new(0)), 7.0);
    }
}
