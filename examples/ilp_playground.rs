//! ILP playground: reproduces the worked example of Section V of the paper
//! (queries q1 = R(b),S(b,c),T(c) and q2 = S(c),T(c,d),U(d)), prints the
//! generated candidate probe orders, the ILP and the optimal selection —
//! showing how the globally optimal plan shares the S→T step between the
//! two queries.
//!
//! Run with: `cargo run --example ilp_playground`

use clash_catalog::{Catalog, Statistics};
use clash_common::{QueryId, Window};
use clash_ilp::{solve, SolverConfig};
use clash_optimizer::{build_ilp, enumerate_candidates, extract_selection, PlanSpaceConfig};
use clash_query::parse_query;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    catalog.register("R", ["b"], Window::unbounded(), 1)?;
    catalog.register("S", ["b", "c"], Window::unbounded(), 1)?;
    catalog.register("T", ["c", "d"], Window::unbounded(), 1)?;
    catalog.register("U", ["d"], Window::unbounded(), 1)?;

    // Rates 100 t/s everywhere; S ⋈ T is the expensive join (150 results),
    // every other join produces 100 (the Section V-2 calibration).
    let mut stats = Statistics::new();
    for meta in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
        stats.set_rate(meta, 100.0);
    }
    stats.default_selectivity = 0.01;
    stats.set_selectivity(catalog.attr("S", "c")?, catalog.attr("T", "c")?, 0.015);

    let q1 = parse_query(&catalog, QueryId::new(0), "q1", "R(b), S(b,c), T(c)")?;
    let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(c), T(c,d), U(d)")?;
    println!("q1: {q1}");
    println!("q2: {q2}\n");

    let config = PlanSpaceConfig {
        materialize_intermediates: false,
        ..PlanSpaceConfig::default()
    };
    let candidates = enumerate_candidates(&catalog, &stats, &[q1.clone(), q2.clone()], &config);
    println!("candidate probe orders:");
    for ((query, start), cands) in &candidates.per_start {
        for c in cands {
            println!(
                "  {query} start {start}: {} (PCost = {:.1})",
                c.order, c.cost
            );
        }
    }

    let artifacts = build_ilp(&candidates);
    println!(
        "\nILP: {} variables, {} constraints",
        artifacts.stats.variables, artifacts.stats.constraints
    );
    println!("{}", artifacts.model);

    let solution = solve(&artifacts.model, SolverConfig::default());
    println!(
        "solver status: {:?}, objective = {:.1}",
        solution.status, solution.objective
    );
    let selection = extract_selection(
        &candidates,
        &artifacts,
        solution.assignment.as_ref().expect("feasible"),
    )?;
    println!(
        "\nchosen probe orders (shared probe cost {:.1}):",
        selection.shared_cost
    );
    for order in &selection.query_orders {
        println!(
            "  {} starts {}: {}",
            order.query, order.order.start, order.order
        );
    }
    let individual: f64 = [&q1, &q2]
        .iter()
        .map(|q| candidates.individual_cost(q.id))
        .sum();
    println!("\nindividually optimal plans would cost {individual:.1} tuples/s in total");
    Ok(())
}
