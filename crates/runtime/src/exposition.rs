//! Shared rendering of the engines' `telemetry_snapshot` pages.
//!
//! Both runtimes expose the same Prometheus-style text surface; the
//! sections they have in common (engine counters, per-query results and
//! latency quantiles, micro-batch flush age, per-store gauges, arena
//! counters) are rendered here so the two pages cannot drift apart.
//! Engine-specific sections (per-worker gauges, in-flight roots, plan
//! installs) are appended by the respective engine.

use crate::metrics::EngineMetrics;
use crate::parallel::shard::StoreDetail;
use clash_common::{ArenaStats, Exposition};

/// Engine counters, per-query result counts and per-query latency
/// quantiles plus the merged latency histogram — the page's core.
pub(crate) fn engine_sections(page: &mut Exposition, metrics: &EngineMetrics) {
    page.declare(
        "clash_tuples_ingested_total",
        "Input tuples ingested.",
        "counter",
    );
    page.sample(
        "clash_tuples_ingested_total",
        &[],
        metrics.tuples_ingested as f64,
    );
    page.declare(
        "clash_tuples_sent_total",
        "Tuple copies sent between stores (probe cost, Eq. 1).",
        "counter",
    );
    page.sample("clash_tuples_sent_total", &[], metrics.tuples_sent as f64);
    page.declare(
        "clash_broadcasts_total",
        "Deliveries broadcast to every partition of a store.",
        "counter",
    );
    page.sample("clash_broadcasts_total", &[], metrics.broadcasts as f64);
    page.declare("clash_probes_total", "Probe lookups performed.", "counter");
    page.sample("clash_probes_total", &[], metrics.probes as f64);
    page.declare(
        "clash_busy_seconds",
        "Wall-clock time spent processing ingested tuples.",
        "gauge",
    );
    page.sample("clash_busy_seconds", &[], metrics.busy.as_secs_f64());

    page.declare(
        "clash_results_total",
        "Join results emitted per query.",
        "counter",
    );
    let mut results: Vec<(u32, u64)> = metrics.results.iter().map(|(q, n)| (q.0, *n)).collect();
    results.sort_unstable();
    for (query, n) in results {
        page.sample(
            "clash_results_total",
            &[("query", &query.to_string())],
            n as f64,
        );
    }

    page.declare(
        "clash_result_latency_us",
        "Ingest-to-emit latency per emitted result, per query (µs).",
        "summary",
    );
    let mut per_query: Vec<_> = metrics.latency_histograms().collect();
    per_query.sort_unstable_by_key(|(q, _)| q.0);
    for (query, hist) in per_query {
        page.quantiles(
            "clash_result_latency_us",
            &[("query", &query.0.to_string())],
            hist,
        );
    }
    page.declare(
        "clash_result_latency_all_us",
        "Ingest-to-emit latency over all queries (µs).",
        "histogram",
    );
    page.histogram(
        "clash_result_latency_all_us",
        &[],
        &metrics.combined_latency(),
    );

    page.declare(
        "clash_flush_age_us",
        "Age of micro-batch buffers when flushed (µs).",
        "summary",
    );
    page.quantiles("clash_flush_age_us", &[], &metrics.flush_age);

    page.declare(
        "clash_plan_rejections_total",
        "Candidate plans rejected by the static analyzer at install time.",
        "counter",
    );
    page.sample(
        "clash_plan_rejections_total",
        &[],
        metrics.plan_rejections as f64,
    );
}

/// Per-store gauges: size and index shape, one sample set per store.
pub(crate) fn store_sections(page: &mut Exposition, details: &[StoreDetail]) {
    page.declare("clash_store_tuples", "Tuples held per store.", "gauge");
    page.declare(
        "clash_store_bytes",
        "Approximate bytes held per store.",
        "gauge",
    );
    page.declare(
        "clash_store_posting_lists",
        "Distinct (attribute, value) posting lists per store.",
        "gauge",
    );
    page.declare(
        "clash_store_spilled_postings",
        "Posting lists spilled past the inline capacity per store.",
        "gauge",
    );
    page.declare(
        "clash_segments_total",
        "Frozen columnar segments currently held per store (cold tier).",
        "gauge",
    );
    page.declare(
        "clash_segment_bytes",
        "Live flattened bytes held by the frozen segments per store.",
        "gauge",
    );
    page.declare(
        "clash_compactions_total",
        "Frozen segments built per store since startup.",
        "counter",
    );
    for d in details {
        let store = d.store.0.to_string();
        let labels: &[(&str, &str)] = &[("store", &store)];
        page.sample("clash_store_tuples", labels, d.tuples as f64);
        page.sample("clash_store_bytes", labels, d.bytes as f64);
        page.sample("clash_store_posting_lists", labels, d.posting_lists as f64);
        page.sample(
            "clash_store_spilled_postings",
            labels,
            d.spilled_postings as f64,
        );
        page.sample("clash_segments_total", labels, d.segments as f64);
        page.sample("clash_segment_bytes", labels, d.segment_bytes as f64);
        page.sample("clash_compactions_total", labels, d.compactions as f64);
    }
}

/// Leaf-arena counters, one sample set per thread lane (`coordinator`,
/// `worker-<i>`, or `engine` for the sequential runtime).
pub(crate) fn arena_sections<'a>(
    page: &mut Exposition,
    lanes: impl Iterator<Item = (String, &'a ArenaStats)>,
) {
    page.declare(
        "clash_arena_reused_total",
        "Leaf-arena blocks reused from the thread-local pool.",
        "counter",
    );
    page.declare(
        "clash_arena_allocated_total",
        "Leaf-arena blocks freshly allocated.",
        "counter",
    );
    page.declare(
        "clash_arena_recycled_total",
        "Leaf-arena blocks returned to the pool.",
        "counter",
    );
    page.declare(
        "clash_arena_discarded_total",
        "Leaf-arena blocks dropped because the pool was full.",
        "counter",
    );
    for (lane, stats) in lanes {
        let labels: &[(&str, &str)] = &[("thread", &lane)];
        page.sample("clash_arena_reused_total", labels, stats.reused as f64);
        page.sample(
            "clash_arena_allocated_total",
            labels,
            stats.allocated as f64,
        );
        page.sample("clash_arena_recycled_total", labels, stats.recycled as f64);
        page.sample(
            "clash_arena_discarded_total",
            labels,
            stats.discarded as f64,
        );
    }
}
