//! Offline stub of `serde_derive`.
//!
//! The container this repository builds in has no access to a crates
//! registry, so the real serde derive macros are replaced by no-ops: the
//! sibling `serde` stub blanket-implements its marker traits for every
//! type, so the derives only need to exist (and swallow `#[serde(...)]`
//! attributes) for `#[derive(Serialize, Deserialize)]` to compile.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
