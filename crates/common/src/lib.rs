//! # clash-common
//!
//! Foundational data model shared by every crate of the CLASH multi-way
//! stream-join reproduction: values, tuples, schemas, identifiers, time
//! (timestamps, windows, epochs) and relation sets.
//!
//! The paper ("Optimizing Multiple Multi-Way Stream Joins", ICDE 2021)
//! operates on *streamed relations* `S1, ..., Sm`: unbounded sequences of
//! tuples, each carrying a timestamp attribute `τ`. Join queries relate
//! attributes of different relations through equality predicates and bound
//! the joinable partners through per-relation time windows. This crate
//! provides exactly those primitives and nothing query- or plan-specific.

pub mod arena;
pub mod bloom;
pub mod diagnostic;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod postings;
pub mod relation_set;
pub mod schema;
pub mod segment;
pub mod telemetry;
pub mod time;
pub mod tuple;
pub mod value;

pub use arena::{arena_stats, ArenaStats};
pub use bloom::BloomFilter;
pub use diagnostic::{Diagnostic, Severity};
pub use error::{ClashError, Result};
pub use fxhash::{fx_hash, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{AttrId, EdgeId, QueryId, RelationId, StoreId, WorkerId};
pub use postings::{PostingList, INLINE_POSTINGS};
pub use relation_set::RelationSet;
pub use schema::{AttrRef, Attribute, Schema, SchemaRef};
pub use segment::FrozenSegment;
pub use telemetry::{
    chrome_trace_json, trace_clock_us, Exposition, LatencyHistogram, TraceEvent, TraceEventKind,
    TraceRing,
};
pub use time::{Duration, Epoch, EpochConfig, Timestamp, Window};
pub use tuple::{LeafLayout, SlotAccessor, Tuple, TupleBuilder, TupleIter, MAX_ATTRS_PER_RELATION};
pub use value::Value;
