//! Adaptive rewiring demo (Section VI / Fig. 8): a four-way linear join is
//! deployed twice — once with the epoch-based adaptive controller and once
//! with a frozen plan. Halfway through, the data characteristics flip; the
//! adaptive deployment re-optimizes after one epoch while the static one
//! keeps paying for exploded intermediate results.
//!
//! Run with: `cargo run --release --example adaptive_rewiring`

use clash_bench::fig8::run_fig8;

fn main() {
    let duration_s = 16;
    let rounds_per_s = 100;
    let shift_s = duration_s / 2;
    println!(
        "4-way linear join R ⋈ S ⋈ T ⋈ U, {rounds_per_s} tuples/relation/s, characteristics shift at {shift_s}s\n"
    );
    let points = run_fig8(duration_s, rounds_per_s, shift_s, 7);
    println!(
        "{:>5} {:>18} {:>18} {:>14} {:>14} {:>8}",
        "t[s]", "adaptive lat[µs]", "static lat[µs]", "adaptive sent", "static sent", "reconf"
    );
    for p in &points {
        println!(
            "{:>5} {:>18.1} {:>18.1} {:>14} {:>14} {:>8}",
            p.time_s,
            p.adaptive_latency_us,
            p.static_latency_us,
            p.adaptive_tuples_sent,
            p.static_tuples_sent,
            p.reconfigurations
        );
    }
    let last = points.last().expect("points");
    println!(
        "\nafter the shift the adaptive deployment installed {} reconfiguration(s) and sends {}x fewer tuple copies",
        last.reconfigurations,
        if last.adaptive_tuples_sent > 0 {
            last.static_tuples_sent as f64 / last.adaptive_tuples_sent as f64
        } else {
            f64::NAN
        }
    );
}
