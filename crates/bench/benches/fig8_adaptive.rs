//! Criterion bench behind Fig. 8: adaptive vs. static execution of the
//! 4-way linear join under a mid-run selectivity shift.

use clash_bench::fig8::run_fig8;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_adaptive");
    group.sample_size(10);
    group.bench_function("adaptive_vs_static_8s", |b| {
        b.iter(|| run_fig8(8, 40, 4, 7));
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
