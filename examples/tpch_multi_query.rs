//! Multi-query optimization over the TPC-H-shaped workload of Fig. 7a:
//! plans the five 4-way join queries with all three strategies, streams the
//! same generated tuple mix through each deployment and compares
//! throughput, memory and latency (a small-scale version of Fig. 7).
//!
//! Run with: `cargo run --release --example tpch_multi_query`

use clash_common::Window;
use clash_datagen::{TpchGenerator, TpchWorkload};
use clash_optimizer::{Planner, Strategy};
use clash_runtime::{EngineConfig, LocalEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = TpchWorkload::new(2, Window::secs(3600))?;
    let queries = workload.five_queries()?;
    println!(
        "workload: {} queries over {} relations",
        queries.len(),
        workload.catalog.len()
    );
    for q in &queries {
        println!("  {q}");
    }

    let planner = Planner::with_defaults(&workload.catalog, &workload.stats);
    let num_tuples = 20_000;
    println!("\nstreaming {num_tuples} tuples through each deployment...\n");
    println!(
        "{:<12} {:>10} {:>16} {:>12} {:>12} {:>10}",
        "strategy", "stores", "throughput[t/s]", "memory[KB]", "latency[µs]", "results"
    );
    for strategy in [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp] {
        let report = planner.plan(&queries, strategy)?;
        let mut engine = LocalEngine::new(
            workload.catalog.clone(),
            report.plan.clone(),
            EngineConfig::default(),
        );
        let mut generator = TpchGenerator::new(0.002, 42);
        for (relation, tuple) in generator.mixed_stream(&workload, num_tuples)? {
            engine.ingest(relation, tuple)?;
        }
        let snap = engine.snapshot();
        println!(
            "{:<12} {:>10} {:>16.0} {:>12.1} {:>12.1} {:>10}",
            strategy.label(),
            report.plan.num_stores(),
            snap.throughput_tps,
            snap.store_bytes as f64 / 1024.0,
            snap.latency.mean_us,
            snap.total_results()
        );
    }
    Ok(())
}
