//! Zipfian key sampling for skew experiments.
//!
//! The paper's workloads are generated with uniform key draws, which
//! makes every posting list the same length and hides the behavior the
//! state layer actually faces in practice: a handful of hot keys owning
//! most of the stream. This module provides a small, seeded Zipf sampler
//! (rank `k` drawn with probability proportional to `1 / k^s`) used by
//! the skewed store benchmarks and available to workload generators.
//!
//! Sampling inverts the cumulative harmonic weights with a binary
//! search: `O(n)` setup, `O(log n)` per draw, exact probabilities for
//! any exponent (no rejection loops, no approximation cutoffs), which
//! is plenty for benchmark-sized domains.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded sampler over ranks `0..n` with Zipf exponent `s`.
///
/// Rank 0 is the hottest key. `s = 0` degenerates to the uniform
/// distribution; `s = 1` is the classic harmonic skew where the top
/// rank draws roughly `1 / ln(n)` of all samples.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative normalized weights; `cdf[k]` is `P(rank <= k)`.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`, deterministic
    /// for a given `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `s` is negative/non-finite — both
    /// indicate a misconfigured experiment rather than a data condition.
    pub fn new(n: usize, s: f64, seed: u64) -> ZipfSampler {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the tail so a draw of
        // u ~ 1.0 can never fall past the last rank.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of ranks in the domain.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Draws the next rank in `0..domain()`.
    pub fn next_rank(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_stay_in_domain_and_are_deterministic() {
        let mut a = ZipfSampler::new(100, 1.0, 42);
        let mut b = ZipfSampler::new(100, 1.0, 42);
        for _ in 0..1_000 {
            let rank = a.next_rank();
            assert!(rank < 100);
            assert_eq!(rank, b.next_rank());
        }
    }

    #[test]
    fn exponent_one_concentrates_mass_on_head_ranks() {
        let mut sampler = ZipfSampler::new(1_000, 1.0, 7);
        let draws = 20_000;
        let head = (0..draws).filter(|_| sampler.next_rank() < 10).count() as f64;
        // Harmonic CDF puts ~39% of mass on the top 10 of 1000 ranks;
        // allow generous slack for sampling noise.
        let frac = head / draws as f64;
        assert!(frac > 0.3, "head fraction {frac} too low for s=1");
        let mut uniform = ZipfSampler::new(1_000, 0.0, 7);
        let uniform_head = (0..draws).filter(|_| uniform.next_rank() < 10).count() as f64;
        assert!(uniform_head / (draws as f64) < 0.05);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let mut sampler = ZipfSampler::new(4, 0.0, 11);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[sampler.next_rank()] += 1;
        }
        for &c in &counts {
            assert!((1_600..2_400).contains(&c), "counts {counts:?} not uniform");
        }
    }
}
