//! Join graphs.
//!
//! The join graph of a query has one node per streamed relation and one
//! edge per equi-join predicate. It is the structure that every
//! enumeration step of Section V walks: materializable intermediate
//! results are *connected* subgraphs, and a probe order may only extend its
//! head with a store that is *joinable* with it (cross-product avoidance of
//! Algorithm 1).

use crate::predicate::EquiPredicate;
use clash_common::{RelationId, RelationSet};
use serde::{Deserialize, Serialize};

/// The join graph induced by a set of equi-join predicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryGraph {
    /// All relations of the query (nodes).
    pub relations: RelationSet,
    /// All predicates (edges).
    pub predicates: Vec<EquiPredicate>,
}

impl QueryGraph {
    /// Builds a graph from a node set and predicate list.
    pub fn new(relations: RelationSet, predicates: &[EquiPredicate]) -> Self {
        QueryGraph {
            relations,
            predicates: predicates.to_vec(),
        }
    }

    /// Neighbors of a relation: every relation connected to it by at least
    /// one predicate.
    pub fn neighbors(&self, relation: RelationId) -> RelationSet {
        let mut out = RelationSet::new();
        for p in &self.predicates {
            if let Some(other) = p.other_side(relation) {
                out.insert(other.relation);
            }
        }
        out
    }

    /// Neighbors of a relation *set*: every relation outside the set that is
    /// connected to some member by a predicate.
    pub fn neighbors_of_set(&self, set: &RelationSet) -> RelationSet {
        let mut out = RelationSet::new();
        for p in &self.predicates {
            let l_in = set.contains(p.left.relation);
            let r_in = set.contains(p.right.relation);
            if l_in && !r_in {
                out.insert(p.right.relation);
            } else if r_in && !l_in {
                out.insert(p.left.relation);
            }
        }
        out
    }

    /// `true` when at least one predicate connects the two disjoint sets —
    /// joining them does not introduce a cross product.
    pub fn joinable(&self, a: &RelationSet, b: &RelationSet) -> bool {
        if !a.is_disjoint(b) || a.is_empty() || b.is_empty() {
            return false;
        }
        self.predicates.iter().any(|p| p.connects(a, b))
    }

    /// All predicates connecting the two disjoint sets (the join condition
    /// evaluated when probing a `b`-store with an `a`-tuple).
    pub fn connecting_predicates(&self, a: &RelationSet, b: &RelationSet) -> Vec<EquiPredicate> {
        self.predicates
            .iter()
            .filter(|p| p.connects(a, b))
            .copied()
            .collect()
    }

    /// `true` when the induced subgraph on `subset` is connected (and the
    /// subset is non-empty). Singletons are connected by definition.
    pub fn is_connected(&self, subset: &RelationSet) -> bool {
        if subset.is_empty() {
            return false;
        }
        let start = subset.iter().next().expect("non-empty subset");
        let mut reached = RelationSet::singleton(start);
        loop {
            let mut grew = false;
            for p in &self.predicates {
                if !p.within(subset) {
                    continue;
                }
                let l_in = reached.contains(p.left.relation);
                let r_in = reached.contains(p.right.relation);
                if l_in && !r_in {
                    reached.insert(p.right.relation);
                    grew = true;
                } else if r_in && !l_in {
                    reached.insert(p.left.relation);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        subset.is_subset(&reached)
    }

    /// Number of predicate edges whose both endpoints lie in `subset`.
    pub fn edge_count_within(&self, subset: &RelationSet) -> usize {
        self.predicates.iter().filter(|p| p.within(subset)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::{AttrId, AttrRef};

    fn attr(rel: u32, a: u32) -> AttrRef {
        AttrRef::new(RelationId::new(rel), AttrId::new(a))
    }

    fn rs(ids: &[u32]) -> RelationSet {
        ids.iter().map(|i| RelationId::new(*i)).collect()
    }

    /// Linear graph 0 - 1 - 2 - 3.
    fn linear4() -> QueryGraph {
        QueryGraph::new(
            rs(&[0, 1, 2, 3]),
            &[
                EquiPredicate::new(attr(0, 0), attr(1, 0)),
                EquiPredicate::new(attr(1, 1), attr(2, 0)),
                EquiPredicate::new(attr(2, 1), attr(3, 0)),
            ],
        )
    }

    /// Star graph with center 0 and leaves 1, 2, 3.
    fn star4() -> QueryGraph {
        QueryGraph::new(
            rs(&[0, 1, 2, 3]),
            &[
                EquiPredicate::new(attr(0, 0), attr(1, 0)),
                EquiPredicate::new(attr(0, 1), attr(2, 0)),
                EquiPredicate::new(attr(0, 2), attr(3, 0)),
            ],
        )
    }

    #[test]
    fn neighbors_follow_predicates() {
        let g = linear4();
        assert_eq!(g.neighbors(RelationId::new(0)), rs(&[1]));
        assert_eq!(g.neighbors(RelationId::new(1)), rs(&[0, 2]));
        assert_eq!(g.neighbors(RelationId::new(3)), rs(&[2]));
        let star = star4();
        assert_eq!(star.neighbors(RelationId::new(0)), rs(&[1, 2, 3]));
        assert_eq!(star.neighbors(RelationId::new(2)), rs(&[0]));
    }

    #[test]
    fn neighbors_of_set_excludes_members() {
        let g = linear4();
        assert_eq!(g.neighbors_of_set(&rs(&[1, 2])), rs(&[0, 3]));
        assert_eq!(g.neighbors_of_set(&rs(&[0])), rs(&[1]));
        assert_eq!(g.neighbors_of_set(&rs(&[0, 1, 2, 3])), RelationSet::EMPTY);
    }

    #[test]
    fn joinable_requires_connecting_predicate_and_disjointness() {
        let g = linear4();
        assert!(g.joinable(&rs(&[0]), &rs(&[1])));
        assert!(g.joinable(&rs(&[0, 1]), &rs(&[2, 3])));
        assert!(!g.joinable(&rs(&[0]), &rs(&[2])), "no predicate 0-2");
        assert!(!g.joinable(&rs(&[0, 1]), &rs(&[1, 2])), "not disjoint");
        assert!(!g.joinable(&rs(&[0]), &RelationSet::EMPTY));
    }

    #[test]
    fn connecting_predicates_returns_join_condition() {
        let g = linear4();
        let preds = g.connecting_predicates(&rs(&[0, 1]), &rs(&[2, 3]));
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0], EquiPredicate::new(attr(1, 1), attr(2, 0)));
        assert!(g.connecting_predicates(&rs(&[0]), &rs(&[3])).is_empty());
    }

    #[test]
    fn connectivity_of_subsets() {
        let g = linear4();
        assert!(g.is_connected(&rs(&[0, 1, 2, 3])));
        assert!(g.is_connected(&rs(&[1, 2])));
        assert!(g.is_connected(&rs(&[2])));
        assert!(!g.is_connected(&rs(&[0, 2])), "0 and 2 are not adjacent");
        assert!(!g.is_connected(&rs(&[0, 3])));
        assert!(!g.is_connected(&RelationSet::EMPTY));
        let star = star4();
        assert!(star.is_connected(&rs(&[0, 1, 3])));
        assert!(
            !star.is_connected(&rs(&[1, 2, 3])),
            "leaves only connect via center"
        );
    }

    #[test]
    fn edge_count_within_subsets() {
        let g = linear4();
        assert_eq!(g.edge_count_within(&g.relations), 3);
        assert_eq!(g.edge_count_within(&rs(&[0, 1])), 1);
        assert_eq!(g.edge_count_within(&rs(&[0, 2])), 0);
    }
}
